"""Request-level discrete-event simulation of one cloud region.

The control loop in :mod:`repro.core.control_loop` advances in fluid eras
(batched request counts) for speed.  This module provides the *request
granular* counterpart used to validate the fluid model and to run
small-scale experiments exactly the way the paper's testbed operated:
emulated browsers issue individual requests, each request queues at a VM,
is served at the VM's (degrading) rate, and triggers anomaly injection on
completion.

The two models must agree where their assumptions overlap -- the
cross-validation test drives the same deployment through both and compares
mean response times and anomaly-accumulation rates.  (That test is the
reproduction's answer to "is the fluid shortcut trustworthy?")

Implementation notes
--------------------
* each VM is an M/M/1-PS-like station: we track in-flight request count
  and approximate processor sharing by re-scheduling the completion of
  the *oldest* request when service speed changes era-to-era would be
  overkill; instead each request samples its full service time at entry
  with the VM's *current* effective rate -- accurate while degradation is
  slow relative to service times (milliseconds vs minutes), which holds
  by construction in this system;
* browsers are closed-loop: completion schedules the next request after
  an exponential think time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pcam.state_table import CODE_ACTIVE, CODE_FAILED, VmStateTable
from repro.pcam.vm import VirtualMachine, VmState
from repro.sim.engine import Simulator
from repro.workload.browsers import BrowserPopulation
from repro.workload.sessions import STATES, SessionChain, _INDEX
from repro.workload.tpcw import TPCW_INTERACTIONS


@dataclass
class DesStats:
    """Aggregated outcome of a DES run."""

    completed: int = 0
    response_times: list[float] = field(default_factory=list)
    dropped: int = 0

    def mean_response_time(self) -> float:
        """Mean response time over completed requests (nan if none)."""
        if not self.response_times:
            return float("nan")
        return float(np.mean(self.response_times))

    def p95_response_time(self) -> float:
        """95th-percentile response time (nan if no completions)."""
        if not self.response_times:
            return float("nan")
        return float(np.percentile(self.response_times, 95))


class DesRegion:
    """Request-granular simulation of one region's VM pool.

    Parameters
    ----------
    sim:
        The discrete-event simulator to schedule on.
    vms:
        The pool; only ACTIVE VMs receive requests.
    population:
        Closed-loop browser population driving the load.
    rng:
        Stream for think times, service times, and VM choice.
    mean_demand:
        Demand-units per request when no session chain is given.
    session_chain:
        Optional TPC-W navigation chain: each browser then walks the
        chain, and every request's service demand is its interaction's
        catalog cost (heavy Buy Confirms, cheap Home hits) instead of a
        single mean -- the demand mix the real benchmark produces.
    columnar:
        Keep the pool's VM state in a
        :class:`~repro.pcam.state_table.VmStateTable` (row index == slot)
        so the JSQ scan and the per-completion bookkeeping read columns
        instead of objects.  Bit-identical to the object mode.
    """

    def __init__(
        self,
        sim: Simulator,
        vms: list[VirtualMachine],
        population: BrowserPopulation,
        rng: np.random.Generator,
        mean_demand: float = 1.5,
        session_chain: SessionChain | None = None,
        columnar: bool = True,
    ) -> None:
        if not vms:
            raise ValueError("need at least one VM")
        if mean_demand <= 0:
            raise ValueError("mean_demand must be positive")
        self.sim = sim
        self.vms = vms
        self.population = population
        self.rng = rng
        self.mean_demand = float(mean_demand)
        self.session_chain = session_chain
        self.stats = DesStats()
        #: Outstanding requests per VM, indexed by slot (position in vms).
        self._in_flight = np.zeros(len(vms), dtype=np.int64)
        self.table: VmStateTable | None = None
        if columnar:
            self.table = VmStateTable(len(vms))
            self.table.adopt_all(vms)  # adoption order: row == slot
        # per-browser navigation state (index into the chain's STATES)
        self._browser_page: dict[int, int] = {}
        self.interaction_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Schedule the first request of every emulated browser."""
        for browser in range(self.population.n_clients):
            if self.session_chain is not None:
                self._browser_page[browser] = _INDEX[
                    self.session_chain.entry
                ]
            delay = float(
                self.rng.exponential(self.population.think_time_s)
            )
            self.sim.schedule_after(
                delay, lambda b=browser: self._issue_request(b)
            )

    def _next_demand(self, browser: int) -> float:
        """Service demand of the browser's next click.

        Walks the session chain when one is configured; otherwise the
        fixed mean demand.
        """
        if self.session_chain is None:
            return self.mean_demand
        page = self._browser_page[browser]
        nxt = int(
            self.rng.choice(
                len(STATES), p=self.session_chain.matrix[page]
            )
        )
        self._browser_page[browser] = nxt
        interaction = STATES[nxt]
        key = interaction.value
        self.interaction_counts[key] = self.interaction_counts.get(key, 0) + 1
        return TPCW_INTERACTIONS[interaction]

    def _pick_slot(self) -> int | None:
        """Slot of the least-loaded ACTIVE VM (join-the-shortest-queue).

        Ties are broken uniformly at random -- under light load every
        queue is empty, and deterministic tie-breaking would funnel the
        whole stream to the first VM in the list.
        """
        if self.table is not None:
            active = np.flatnonzero(self.table.state_code == CODE_ACTIVE)
        else:
            active = np.array(
                [
                    slot
                    for slot, vm in enumerate(self.vms)
                    if vm.state is VmState.ACTIVE
                ],
                dtype=np.intp,
            )
        if active.size == 0:
            return None
        loads = self._in_flight[active]
        candidates = np.flatnonzero(loads == loads.min())
        return int(active[int(self.rng.choice(candidates))])

    def _issue_request(self, browser: int) -> None:
        slot = self._pick_slot()
        if slot is None:
            # outage: request dropped; browser retries after thinking
            self.stats.dropped += 1
            self._schedule_next_request(browser)
            return
        self._in_flight[slot] += 1
        t_start = self.sim.now
        demand = self._next_demand(browser)
        # processor sharing approximation: service rate divided by the
        # number of requests now in flight at this VM
        share = max(int(self._in_flight[slot]), 1)
        capacity = (
            self.table.capacity_at(slot)
            if self.table is not None
            else self.vms[slot].effective_capacity
        )
        mu = capacity / demand / share
        service = float(self.rng.exponential(1.0 / mu)) if mu > 0 else 1.0

        def complete(slot=slot, t_start=t_start, browser=browser) -> None:
            self._in_flight[slot] -= 1
            rt = self.sim.now - t_start
            self.stats.completed += 1
            self.stats.response_times.append(rt)
            # anomaly injection on completion (one request's worth)
            table = self.table
            if table is not None:
                if table.state_code[slot] == CODE_ACTIVE:
                    effect = self.vms[slot].injector.inject(1)
                    table.leaked_mb[slot] += effect.leaked_mb
                    table.stuck_threads[slot] += effect.stuck_threads
                    table.total_requests[slot] += 1
                    table.last_response_time_s[slot] = rt
                    if table.failure_point_at(slot):
                        table.state_code[slot] = CODE_FAILED
                        table.failure_count[slot] += 1
            else:
                vm = self.vms[slot]
                if vm.state is VmState.ACTIVE:
                    effect = vm.injector.inject(1)
                    vm.leaked_mb += effect.leaked_mb
                    vm.stuck_threads += effect.stuck_threads
                    vm.total_requests += 1
                    vm.last_response_time_s = rt
                    if vm.failure_point_reached():
                        vm.fail()
            self._schedule_next_request(browser)

        self.sim.schedule_after(service, complete)

    def _schedule_next_request(self, browser: int) -> None:
        think = float(self.rng.exponential(self.population.think_time_s))
        self.sim.schedule_after(
            think, lambda: self._issue_request(browser)
        )

    # ------------------------------------------------------------------ #

    def run(self, duration_s: float) -> DesStats:
        """Start the browsers and run for ``duration_s`` simulated seconds.

        VM uptime accounting is synchronised at the end so that feature
        samples taken afterwards see the right ``uptime_s``.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        t_end = self.sim.now + duration_s
        # Rate accounting snapshots taken at run start: the per-VM rate
        # must use only *this* run's completions (``self.stats`` is
        # cumulative across repeated run() calls) and divide by the
        # active count that started the run -- VMs that fail mid-run
        # served part of it, and dividing by the survivors would inflate
        # the rate downstream predictors see (same fix as the DES loop's
        # ``era_active_start``).
        completed_at_start = self.stats.completed
        if self.table is not None:
            n_active_start = int(
                np.count_nonzero(self.table.state_code == CODE_ACTIVE)
            )
        else:
            n_active_start = len(
                [v for v in self.vms if v.state is VmState.ACTIVE]
            )
        self.start()
        self.sim.run_until(t_end)
        rate = (
            (self.stats.completed - completed_at_start)
            / max(n_active_start, 1)
            / duration_s
        )
        if self.table is not None:
            active = self.table.state_code == CODE_ACTIVE
            self.table.uptime_s[active] += duration_s
            # refresh last_request_rate for downstream predictors
            self.table.last_request_rate[active] = rate
        else:
            for vm in self.vms:
                if vm.state is VmState.ACTIVE:
                    vm.uptime_s += duration_s
                    vm.last_request_rate = rate
        return self.stats

    def offered_rate_estimate(self) -> float:
        """Closed-loop rate implied by the measured response times."""
        return self.population.offered_rate(
            self.stats.mean_response_time()
            if self.stats.response_times
            else 0.0
        )
