"""Reward-collapse guard: the drift-fallback idea applied to the head.

The online ML lifecycle watches a rolling drift MAPE and falls back to a
conservative margin when the deployed model stops matching reality
(:mod:`repro.ml.online.drift`).  :class:`RewardGuard` is the same shape
for a learned policy head: a rolling window of per-era rewards against a
baseline formed during warm-up.  When the rolling mean collapses below
``collapse_factor x baseline``, the guard engages -- *sticky*, like a
circuit breaker -- and the control loop reverts to its configured static
policy (Policy 1 by default in the eval harness) for the rest of the
run.  A learned head can therefore never do worse than "static policy
plus a bounded bad prefix", which is the property that makes deploying
one palatable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class RewardGuardConfig:
    """Tuning of the collapse detector.

    ``warmup_eras`` rewards form the baseline (their mean); after that
    the rolling mean of the last ``window`` rewards is compared against
    ``collapse_factor x baseline``.  Guarding only makes sense for
    positive baselines (the reward's availability term dominates in
    healthy runs); a baseline at or below ``min_baseline`` disables the
    check rather than dividing by noise.
    """

    window: int = 12
    warmup_eras: int = 24
    collapse_factor: float = 0.5
    min_baseline: float = 1e-6

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.warmup_eras < 1:
            raise ValueError("warmup_eras must be >= 1")
        if not 0.0 < self.collapse_factor < 1.0:
            raise ValueError("collapse_factor must be in (0, 1)")


class RewardGuard:
    """Sticky reward-collapse detector (see module docstring)."""

    def __init__(self, config: RewardGuardConfig | None = None) -> None:
        self.config = config or RewardGuardConfig()
        self.engaged = False
        self.baseline: float | None = None
        self._warmup: list[float] = []
        self._window: deque[float] = deque(maxlen=self.config.window)
        self.observations = 0

    def observe(self, reward: float) -> bool:
        """Fold one era's reward; returns the (possibly new) engaged state."""
        if self.engaged:
            return True
        self.observations += 1
        cfg = self.config
        if self.baseline is None:
            self._warmup.append(float(reward))
            if len(self._warmup) >= cfg.warmup_eras:
                self.baseline = sum(self._warmup) / len(self._warmup)
                self._warmup.clear()
            return False
        self._window.append(float(reward))
        if (
            self.baseline > cfg.min_baseline
            and len(self._window) == cfg.window
        ):
            rolling = sum(self._window) / len(self._window)
            if rolling < cfg.collapse_factor * self.baseline:
                self.engaged = True
        return self.engaged
