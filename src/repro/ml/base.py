"""Common regressor interface for the F2PM model suite."""

from __future__ import annotations

import abc

import numpy as np


class FittedError(RuntimeError):
    """Raised when :meth:`Regressor.predict` is called before ``fit``."""


def as_2d_float(X: np.ndarray, name: str = "X") -> np.ndarray:
    """Validate and coerce a design matrix to a 2-D float64 array."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains non-finite values")
    return X


def as_1d_float(y: np.ndarray, name: str = "y") -> np.ndarray:
    """Validate and coerce a target vector to a 1-D float64 array."""
    y = np.asarray(y, dtype=float).ravel()
    if not np.all(np.isfinite(y)):
        raise ValueError(f"{name} contains non-finite values")
    return y


def check_consistent(X: np.ndarray, y: np.ndarray) -> None:
    """Ensure X rows match y length."""
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]}"
        )


class Regressor(abc.ABC):
    """Abstract base for all F2PM regression models.

    Subclasses implement :meth:`_fit` and :meth:`_predict`; the base class
    handles input validation, the fitted flag, and shape bookkeeping.
    """

    def __init__(self) -> None:
        self._fitted = False
        self._n_features: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has completed successfully."""
        return self._fitted

    @property
    def n_features(self) -> int:
        """Number of input features seen at fit time."""
        if self._n_features is None:
            raise FittedError(f"{type(self).__name__} is not fitted")
        return self._n_features

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        """Fit the model to ``(X, y)``; returns ``self`` for chaining."""
        X = as_2d_float(X)
        y = as_1d_float(y)
        check_consistent(X, y)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_features = X.shape[1]
        self._fit(X, y)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for the rows of ``X``."""
        if not self._fitted:
            raise FittedError(
                f"{type(self).__name__}.predict called before fit"
            )
        X = as_2d_float(X)
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        return self._predict(X)

    @abc.abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Model-specific fitting (inputs already validated)."""

    @abc.abstractmethod
    def _predict(self, X: np.ndarray) -> np.ndarray:
        """Model-specific prediction (inputs already validated)."""
