"""ACM -- the Autonomic Cloud Manager core (the paper's contribution).

The pieces map one-to-one onto the paper's sections:

* :mod:`repro.core.rmttf` -- the leader's EWMA aggregation of region MTTF
  reports, Eq. (1);
* :mod:`repro.core.policy` -- the ``POLICY()`` interface of Algorithm 2 and
  the policy registry;
* :mod:`repro.core.sensible` -- Policy 1, sensible routing, Eq. (2);
* :mod:`repro.core.resources` -- Policy 2, available-resources estimation,
  Eqs. (3)-(4);
* :mod:`repro.core.exploration` -- Policy 3, hill-climbing exploration,
  Eqs. (5)-(9);
* :mod:`repro.core.baselines` -- non-paper reference policies (uniform,
  capacity-weighted static);
* :mod:`repro.core.forward_plan` -- the global forward plan (Sec. V);
* :mod:`repro.core.autoscale` -- reactive VM-pool resizing (Sec. V);
* :mod:`repro.core.control_loop` -- the Monitor/Analyze/Plan/Execute loop,
  Algorithms 1-3 and Fig. 2;
* :mod:`repro.core.manager` -- :class:`AcmManager`, the top-level façade
  that wires regions, overlay, election, policies and the loop together;
* :mod:`repro.core.metrics` -- convergence/stability metrics used to
  assess the policies as the paper does qualitatively.
"""

from repro.core.autoscale import Autoscaler, AutoscaleConfig
from repro.core.cost import CostTracker
from repro.core.baselines import StaticWeightsPolicy, UniformPolicy
from repro.core.control_loop import AcmControlLoop, ControlLoopConfig
from repro.core.degradation import DegradationConfig, DegradationTracker
from repro.core.des_loop import DesControlLoop
from repro.core.distributed import (
    DistributedControlPlane,
    PlaneEraReport,
    ReliableTransport,
)
from repro.core.exploration import ExplorationPolicy
from repro.core.forward_plan import ForwardPlan, build_forward_plan
from repro.core.manager import AcmManager, RegionSpec
from repro.core.metrics import PolicyAssessment, assess_policy_run
from repro.core.planner import PoolPlan, plan_deployment, recommend_pool
from repro.core.policy import Policy, get_policy, normalize_fractions, POLICY_REGISTRY
from repro.core.resources import AvailableResourcesPolicy
from repro.core.rmttf import RmttfAggregator
from repro.core.rt_predictor import ResponseTimePredictor
from repro.core.sensible import SensibleRoutingPolicy

__all__ = [
    "RmttfAggregator",
    "Policy",
    "POLICY_REGISTRY",
    "get_policy",
    "normalize_fractions",
    "SensibleRoutingPolicy",
    "AvailableResourcesPolicy",
    "ExplorationPolicy",
    "UniformPolicy",
    "StaticWeightsPolicy",
    "ForwardPlan",
    "build_forward_plan",
    "Autoscaler",
    "AutoscaleConfig",
    "CostTracker",
    "ResponseTimePredictor",
    "PoolPlan",
    "recommend_pool",
    "plan_deployment",
    "AcmControlLoop",
    "ControlLoopConfig",
    "DistributedControlPlane",
    "PlaneEraReport",
    "ReliableTransport",
    "DegradationConfig",
    "DegradationTracker",
    "DesControlLoop",
    "AcmManager",
    "RegionSpec",
    "PolicyAssessment",
    "assess_policy_run",
]
