"""Tests for bagged tree ensembles."""

import numpy as np
import pytest

from repro.ml import LinearRegression, REPTree
from repro.ml.ensemble import BaggedRegressor


def noisy_step_data(seed, n=400):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = np.where(X[:, 0] > 0, 5.0, -5.0) + rng.normal(0, 2.0, n)
    return X, y


class TestBagging:
    def test_fits_and_predicts(self):
        X, y = noisy_step_data(0)
        m = BaggedRegressor(n_estimators=8, seed=1).fit(X, y)
        assert len(m.estimators_) == 8
        assert np.isfinite(m.predict(X)).all()

    def test_reduces_test_error_vs_single_tree(self):
        """On a smooth nonlinear target (Friedman #1 style) single trees
        carry high variance; bagging roughly halves the test error.  (A
        simple step function is *not* a good showcase -- one pruned tree
        already nails it.)"""

        def friedman(seed, n=300, noise=1.0):
            rng = np.random.default_rng(seed)
            X = rng.uniform(0, 1, size=(n, 5))
            y = (
                10 * np.sin(np.pi * X[:, 0] * X[:, 1])
                + 20 * (X[:, 2] - 0.5) ** 2
                + 10 * X[:, 3]
                + 5 * X[:, 4]
            )
            return X, y + rng.normal(0, noise, n), y

        X, y, _ = friedman(1)
        X_test, _, y_true = friedman(101, noise=0.0)
        single = REPTree(seed=3).fit(X, y)
        bagged = BaggedRegressor(n_estimators=15, seed=3).fit(X, y)
        err_single = np.mean((y_true - single.predict(X_test)) ** 2)
        err_bagged = np.mean((y_true - bagged.predict(X_test)) ** 2)
        assert err_bagged < err_single * 0.8

    def test_deterministic(self):
        X, y = noisy_step_data(4)
        p1 = BaggedRegressor(seed=7).fit(X, y).predict(X[:20])
        p2 = BaggedRegressor(seed=7).fit(X, y).predict(X[:20])
        assert np.array_equal(p1, p2)

    def test_prediction_std_reflects_disagreement(self):
        X, y = noisy_step_data(5)
        m = BaggedRegressor(n_estimators=10, seed=5).fit(X, y)
        # near the decision boundary members disagree most
        near = np.zeros((1, 5))
        far = np.zeros((1, 5))
        far[0, 0] = 3.0
        assert m.prediction_std(near)[0] > m.prediction_std(far)[0]

    def test_prediction_std_before_fit(self):
        with pytest.raises(RuntimeError):
            BaggedRegressor().prediction_std(np.zeros((1, 2)))

    def test_custom_base_factory(self):
        X, y = noisy_step_data(6)
        m = BaggedRegressor(
            base_factory=lambda seed: LinearRegression(),
            n_estimators=5,
        ).fit(X, y)
        assert len(m.estimators_) == 5

    def test_subsample(self):
        X, y = noisy_step_data(7)
        m = BaggedRegressor(n_estimators=4, subsample=0.5, seed=2).fit(X, y)
        assert np.isfinite(m.predict(X[:5])).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            BaggedRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            BaggedRegressor(subsample=0.0)
        with pytest.raises(ValueError):
            BaggedRegressor(subsample=1.5)
