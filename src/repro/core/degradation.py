"""Graceful degradation of the global Plan step under report loss.

The leader's ``POLICY()`` (Algorithm 2) is only as good as the lastRMTTF
reports feeding Eq. (1).  When partitions, message loss, or predictor
faults starve the leader of fresh reports, re-planning from a mostly-stale
RMTTF vector is worse than not re-planning at all: the policy would chase
ghosts and thrash the forward plan.  The hardened loop instead walks a
three-state ladder, decided once per era by :class:`DegradationTracker`:

``normal``
    A quorum of regions reported recently; run ``POLICY()`` as usual.
``hold``
    Quorum lost: freeze the last-known-good fractions (the forward plan
    the whole fleet already agreed on).  A slave that is itself cut off
    behaves the same way -- this just lifts that local rule to the leader.
``fallback``
    Quorum has been lost for ``fallback_after_eras`` consecutive eras:
    the held plan is now too old to trust either, so fall back to the
    static split proportional to each region's healthy capacity -- the
    information-free prior of the available-resources policy, computable
    entirely from local deployment knowledge.

Reports carrying non-finite values (a corrupted predictor emitting NaN)
are treated as *missing*, so numerical faults degrade gracefully instead
of crashing :func:`repro.core.policy.normalize_fractions`.

Recovery is automatic and immediate: the era a quorum of fresh reports
reappears (e.g. rejoined regions re-syncing through the gossip store),
the tracker returns to ``normal`` and ``POLICY()`` resumes from the
currently installed fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry

#: Trace encoding of the degradation mode (series ``degradation``).
MODE_CODES = {"normal": 0, "hold": 1, "fallback": 2}


@dataclass(frozen=True, slots=True)
class DegradationConfig:
    """Tuning of the degradation ladder.

    Parameters
    ----------
    quorum_fraction:
        The leader needs *strictly more* than this fraction of all regions
        reporting fresh to stay in ``normal`` (0.5 = majority).
    stale_after_eras:
        A region's last report stays "fresh" for this many eras; a brief
        one-era hiccup therefore does not degrade the plane.
    fallback_after_eras:
        Consecutive degraded eras before ``hold`` escalates to
        ``fallback``.
    """

    quorum_fraction: float = 0.5
    stale_after_eras: int = 2
    fallback_after_eras: int = 6

    def __post_init__(self) -> None:
        if not 0.0 <= self.quorum_fraction < 1.0:
            raise ValueError("quorum_fraction must be in [0, 1)")
        if self.stale_after_eras < 0:
            raise ValueError("stale_after_eras must be >= 0")
        if self.fallback_after_eras < 1:
            raise ValueError("fallback_after_eras must be >= 1")


class DegradationTracker:
    """Per-era degradation state machine (see module docstring)."""

    def __init__(
        self,
        regions: list[str],
        config: DegradationConfig | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if not regions:
            raise ValueError("need at least one region")
        self.regions = list(regions)
        self.config = config or DegradationConfig()
        self.mode = "normal"
        self.consecutive_degraded = 0
        #: era index of each region's most recent (finite) report
        self._last_report_era: dict[str, int] = {}
        self._tel = telemetry if telemetry is not None and telemetry.enabled else None

    def observe(self, era: int, reported: Iterable[str]) -> str:
        """Fold one era's received-report set; returns the new mode."""
        for region in reported:
            self._last_report_era[region] = era
        horizon = era - self.config.stale_after_eras
        fresh = sum(
            1
            for region in self.regions
            if self._last_report_era.get(region, -1) >= horizon
        )
        previous = self.mode
        if fresh > self.config.quorum_fraction * len(self.regions):
            self.mode = "normal"
            self.consecutive_degraded = 0
        else:
            self.consecutive_degraded += 1
            self.mode = (
                "fallback"
                if self.consecutive_degraded >= self.config.fallback_after_eras
                else "hold"
            )
        if self._tel is not None:
            self._tel.gauge("degradation_mode").set(MODE_CODES[self.mode])
            if self.mode != previous:
                self._tel.counter(
                    "degradation_transitions_total", to=self.mode
                ).inc()
                self._tel.event(
                    "degradation.transition",
                    era=era,
                    previous=previous,
                    mode=self.mode,
                    fresh=fresh,
                )
        return self.mode

    def fresh_regions(self, era: int) -> list[str]:
        """Regions whose last report is within the staleness horizon."""
        horizon = era - self.config.stale_after_eras
        return [
            region
            for region in self.regions
            if self._last_report_era.get(region, -1) >= horizon
        ]
