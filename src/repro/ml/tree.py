"""CART-style regression tree (variance-reduction splitting).

Shared machinery for the two tree models in F2PM's suite: REP-Tree
(:mod:`repro.ml.reptree`) prunes instances of this tree with a hold-out set,
and the M5P model tree (:mod:`repro.ml.m5p`) reuses the split search with
linear models in the leaves.

Split search is vectorised per the HPC guides: for every feature we sort
once and evaluate *all* candidate thresholds with prefix sums, so the cost
per node is ``O(n_features * n log n)`` with no Python-level loop over
samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import Regressor


@dataclass(slots=True)
class TreeNode:
    """One node of a regression tree.

    Internal nodes carry ``(feature, threshold)`` and two children; leaves
    carry a constant ``value``.  ``n_samples`` and ``sse`` (sum of squared
    errors of the node's constant prediction over its training samples) are
    kept for pruning.
    """

    value: float
    n_samples: int
    sse: float
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    # Populated by M5P: indices of training samples that reached this node.
    sample_idx: np.ndarray | None = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def make_leaf(self) -> None:
        """Collapse the subtree into a leaf (pruning primitive)."""
        self.left = None
        self.right = None
        self.feature = -1

    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.count_leaves() + self.right.count_leaves()

    def count_nodes(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.count_nodes() + self.right.count_nodes()


def best_split(
    X: np.ndarray,
    y: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Find the (feature, threshold) minimising children SSE.

    Returns ``(feature, threshold, sse_decrease)`` or ``None`` when no split
    satisfies ``min_samples_leaf`` on both sides (e.g. all feature values
    constant).

    The SSE of a group with sum ``s`` and count ``m`` is
    ``sum(y^2) - s^2/m``; since ``sum(y^2)`` is common to any partition of
    the node, minimising children SSE equals maximising
    ``s_l^2/m_l + s_r^2/m_r``, which we evaluate for every prefix of the
    per-feature sort order with cumulative sums.
    """
    n = y.size
    if n < 2 * min_samples_leaf:
        return None
    total_sum = float(y.sum())
    total_sq = float((y**2).sum())
    parent_sse = total_sq - total_sum**2 / n

    best: tuple[int, float, float] | None = None
    best_children_sse = np.inf
    for j in range(X.shape[1]):
        col = X[:, j]
        order = np.argsort(col, kind="stable")
        xs = col[order]
        ys = y[order]
        # Candidate split after position i (1-based prefix length i+1..):
        # valid where both sides respect min_samples_leaf and xs strictly
        # increases across the boundary.
        csum = np.cumsum(ys)
        k = np.arange(1, n)  # left-group sizes
        left_sum = csum[:-1]
        right_sum = total_sum - left_sum
        children_sse = total_sq - left_sum**2 / k - right_sum**2 / (n - k)
        valid = (
            (k >= min_samples_leaf)
            & (k <= n - min_samples_leaf)
            & (xs[1:] > xs[:-1])
        )
        if not valid.any():
            continue
        children_sse = np.where(valid, children_sse, np.inf)
        i = int(np.argmin(children_sse))
        if children_sse[i] < best_children_sse:
            best_children_sse = float(children_sse[i])
            threshold = 0.5 * (xs[i] + xs[i + 1])
            best = (j, float(threshold), parent_sse - float(children_sse[i]))
    return best


def build_tree(
    X: np.ndarray,
    y: np.ndarray,
    *,
    max_depth: int,
    min_samples_split: int,
    min_samples_leaf: int,
    min_sse_decrease: float,
    keep_sample_idx: bool = False,
    _idx: np.ndarray | None = None,
    _depth: int = 0,
) -> TreeNode:
    """Recursively grow a variance-reduction tree."""
    idx = np.arange(y.size) if _idx is None else _idx
    mean = float(y.mean())
    sse = float(((y - mean) ** 2).sum())
    node = TreeNode(
        value=mean,
        n_samples=int(y.size),
        sse=sse,
        sample_idx=idx if keep_sample_idx else None,
    )
    if _depth >= max_depth or y.size < min_samples_split:
        return node
    found = best_split(X, y, min_samples_leaf)
    if found is None:
        return node
    feature, threshold, decrease = found
    if decrease < min_sse_decrease:
        return node
    mask = X[:, feature] <= threshold
    node.feature = feature
    node.threshold = threshold
    node.left = build_tree(
        X[mask],
        y[mask],
        max_depth=max_depth,
        min_samples_split=min_samples_split,
        min_samples_leaf=min_samples_leaf,
        min_sse_decrease=min_sse_decrease,
        keep_sample_idx=keep_sample_idx,
        _idx=idx[mask],
        _depth=_depth + 1,
    )
    node.right = build_tree(
        X[~mask],
        y[~mask],
        max_depth=max_depth,
        min_samples_split=min_samples_split,
        min_samples_leaf=min_samples_leaf,
        min_sse_decrease=min_sse_decrease,
        keep_sample_idx=keep_sample_idx,
        _idx=idx[~mask],
        _depth=_depth + 1,
    )
    return node


def tree_predict(root: TreeNode, X: np.ndarray) -> np.ndarray:
    """Vectorised prediction: route all rows through the tree level-wise."""
    out = np.empty(X.shape[0], dtype=float)
    stack: list[tuple[TreeNode, np.ndarray]] = [(root, np.arange(X.shape[0]))]
    while stack:
        node, rows = stack.pop()
        if rows.size == 0:
            continue
        if node.is_leaf:
            out[rows] = node.value
            continue
        assert node.left is not None and node.right is not None
        mask = X[rows, node.feature] <= node.threshold
        stack.append((node.left, rows[mask]))
        stack.append((node.right, rows[~mask]))
    return out


class RegressionTree(Regressor):
    """Plain CART regression tree (no pruning).

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Minimum samples a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum samples each child must retain.
    min_sse_decrease:
        Minimum absolute SSE reduction required to accept a split.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        min_sse_decrease: float = 0.0,
    ) -> None:
        super().__init__()
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_sse_decrease = float(min_sse_decrease)
        self.root_: TreeNode | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.root_ = build_tree(
            X,
            y,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_sse_decrease=self.min_sse_decrease,
        )

    def _predict(self, X: np.ndarray) -> np.ndarray:
        assert self.root_ is not None
        return tree_predict(self.root_, X)

    def depth(self) -> int:
        """Fitted tree depth."""
        if self.root_ is None:
            raise RuntimeError("tree not fitted")
        return self.root_.depth()

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        if self.root_ is None:
            raise RuntimeError("tree not fitted")
        return self.root_.count_leaves()
