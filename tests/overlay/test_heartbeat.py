"""Tests for the heartbeat failure detector."""

import pytest

from repro.overlay import MessageBus, OverlayNetwork, Router
from repro.overlay.heartbeat import HeartbeatDetector, build_detector_mesh
from repro.sim import Simulator


def make_mesh(n=3, period=5.0, timeout=15.0):
    names = [f"r{i}" for i in range(1, n + 1)]
    net = OverlayNetwork.full_mesh(
        {(a, b): 10.0 for i, a in enumerate(names) for b in names[i + 1 :]}
    )
    sim = Simulator()
    bus = MessageBus(sim=sim, router=Router(net))
    detectors = build_detector_mesh(names, sim, bus, period, timeout)
    return names, net, sim, bus, detectors


class TestHealthyOperation:
    def test_no_suspicion_on_healthy_mesh(self):
        _, _, sim, _, detectors = make_mesh()
        sim.run_until(200.0)
        for det in detectors.values():
            assert det.suspected_peers() == []

    def test_alive_view_complete(self):
        names, _, sim, _, detectors = make_mesh()
        sim.run_until(100.0)
        for det in detectors.values():
            assert det.alive_view() == sorted(names)

    def test_local_leader_agreement(self):
        _, _, sim, _, detectors = make_mesh()
        sim.run_until(100.0)
        leaders = {det.local_leader() for det in detectors.values()}
        assert leaders == {"r1"}


class TestCrashDetection:
    def test_crashed_node_gets_suspected_within_bound(self):
        _, net, sim, _, detectors = make_mesh(period=5.0, timeout=15.0)
        sim.run_until(50.0)
        net.fail_node("r2")
        detectors["r2"].stop()
        # suspicion must land within timeout + a couple of periods
        sim.run_until(50.0 + 15.0 + 2 * 5.0 + 1.0)
        assert "r2" in detectors["r1"].suspected_peers()
        assert "r2" in detectors["r3"].suspected_peers()

    def test_leader_crash_switches_local_leader(self):
        _, net, sim, _, detectors = make_mesh()
        sim.run_until(50.0)
        net.fail_node("r1")
        detectors["r1"].stop()
        sim.run_until(100.0)
        assert detectors["r2"].local_leader() == "r2"
        assert detectors["r3"].local_leader() == "r2"

    def test_recovery_rehabilitates(self):
        _, net, sim, _, detectors = make_mesh()
        sim.run_until(50.0)
        net.fail_node("r2")
        sim.run_until(100.0)
        assert "r2" in detectors["r1"].suspected_peers()
        net.restore_node("r2")
        sim.run_until(150.0)
        assert detectors["r1"].suspected_peers() == []
        assert detectors["r1"].local_leader() == "r1"

    def test_suspect_count_tracks_incidents(self):
        _, net, sim, _, detectors = make_mesh()
        sim.run_until(30.0)
        net.fail_node("r2")
        sim.run_until(80.0)
        net.restore_node("r2")
        sim.run_until(120.0)
        net.fail_node("r2")
        sim.run_until(170.0)
        assert detectors["r1"].peers["r2"].suspect_count == 2


class TestPartitionDetection:
    def test_partition_splits_views(self):
        # r1-r2 and r3 separated: no link r1-r3, r2-r3 after failures
        names, net, sim, _, detectors = make_mesh()
        sim.run_until(30.0)
        net.fail_link("r1", "r3")
        net.fail_link("r2", "r3")
        detectors["r1"].bus.router.invalidate()
        sim.run_until(100.0)
        assert detectors["r1"].alive_view() == ["r1", "r2"]
        assert detectors["r3"].alive_view() == ["r3"]
        # each side elects its own local leader
        assert detectors["r1"].local_leader() == "r1"
        assert detectors["r3"].local_leader() == "r3"


class TestValidation:
    def test_parameter_validation(self):
        sim = Simulator()
        net = OverlayNetwork.full_mesh({("a", "b"): 1.0})
        bus = MessageBus(sim=sim, router=Router(net))
        with pytest.raises(ValueError):
            HeartbeatDetector("a", ["b"], sim, bus, period_s=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetector("a", ["b"], sim, bus, period_s=5.0, timeout_s=5.0)
        with pytest.raises(ValueError):
            HeartbeatDetector("a", ["a", "b"], sim, bus)

    def test_mesh_rejects_duplicates(self):
        sim = Simulator()
        net = OverlayNetwork.full_mesh({("a", "b"): 1.0})
        bus = MessageBus(sim=sim, router=Router(net))
        with pytest.raises(ValueError):
            build_detector_mesh(["a", "a"], sim, bus)

    def test_non_heartbeat_messages_ignored(self):
        _, _, sim, bus, detectors = make_mesh()
        sim.run_until(20.0)
        before = detectors["r1"].peers["r2"].last_heard
        sim.run_until(21.0)
        bus.send("r2", "r1", "rmttf-report", 42.0)
        sim.run_until(22.0)
        # last_heard only moves via heartbeats... (it moved by heartbeat
        # schedule, so instead verify unknown peers are ignored)
        msg_like = type("M", (), {"kind": "heartbeat", "src": "ghost"})
        detectors["r1"].on_message(msg_like)  # no KeyError
        assert "ghost" not in detectors["r1"].peers
        assert before <= detectors["r1"].peers["r2"].last_heard
