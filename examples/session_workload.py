"""TPC-W session workload: navigation chains driving a request-level region.

Shows the full workload fidelity chain:

1. calibrate the TPC-W navigation Markov chain to each standard mix's
   browse/order split;
2. inspect the stationary interaction frequencies and the conversion
   (buy) rate;
3. drive a request-level DES region with session-following browsers and
   compare the measured interaction mix and response times across the
   browsing / shopping / ordering mixes.

Run with::

    python examples/session_workload.py
"""

from repro.pcam import DesRegion, VirtualMachine
from repro.sim import M3_MEDIUM, RngRegistry, Simulator
from repro.workload import AnomalyInjector, BrowserPopulation, SessionChain
from repro.workload.tpcw import BROWSE_CLASS, RequestType


def run_mix(name: str, browse_fraction: float, seed: int = 5):
    chain = SessionChain.for_mix(name, browse_fraction)
    rngs = RngRegistry(seed=seed)
    vms = []
    for i in range(6):
        vm = VirtualMachine(
            f"{name}/vm{i}",
            M3_MEDIUM,
            AnomalyInjector(rngs.child(f"vm{i}").stream("a")),
        )
        vm.activate()
        vms.append(vm)
    region = DesRegion(
        Simulator(),
        vms,
        BrowserPopulation(n_clients=48),
        rngs.stream("des"),
        session_chain=chain,
    )
    stats = region.run(1800.0)
    return chain, region, stats


def main() -> None:
    print("TPC-W session chains calibrated to the three standard mixes:\n")
    rows = []
    for name, bf in (("browsing", 0.95), ("shopping", 0.80), ("ordering", 0.50)):
        chain, region, stats = run_mix(name, bf)
        counts = region.interaction_counts
        total = sum(counts.values())
        browse = sum(
            c for k, c in counts.items() if RequestType(k) in BROWSE_CLASS
        )
        buys = counts.get(RequestType.BUY_CONFIRM.value, 0)
        rows.append(
            (
                name,
                bf,
                browse / total,
                chain.buy_rate(),
                buys / total,
                stats.mean_response_time() * 1000,
                stats.p95_response_time() * 1000,
            )
        )
    print(
        f"{'mix':<10} {'target':>7} {'measured':>9} {'buy(chain)':>11} "
        f"{'buy(DES)':>9} {'mean rt':>9} {'p95 rt':>9}"
    )
    for name, bf, measured, buy_c, buy_d, rt, p95 in rows:
        print(
            f"{name:<10} {bf:>7.2f} {measured:>9.3f} {buy_c:>11.4f} "
            f"{buy_d:>9.4f} {rt:>7.1f}ms {p95:>7.1f}ms"
        )
    print(
        "\nheavier order paths (Buy Confirm x4 demand) push the ordering "
        "mix's\nresponse times above the browsing mix's -- the demand "
        "structure the\nfluid model summarises with one mean."
    )


if __name__ == "__main__":
    main()
