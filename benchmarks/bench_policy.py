"""Policy-head inference micro-benchmark: per-era decision overhead.

A learned head sits on the control loop's Plan step, so its ``act`` (+
reward fold) must stay negligible next to the era's DES work.  This
bench times one Plan-step decision -- feature matrix in, action out --
for each head shape:

* ``static`` -- :class:`StaticPolicyHead` over Policy 1 (the control
  arm: one ``compute_fractions`` call);
* ``bandit-frozen`` / ``bandit-train`` -- LinUCB greedy inference vs
  the full UCB + ridge-update path;
* ``reinforce-frozen`` / ``reinforce-train`` -- softmax argmax vs
  sample + gradient step.

It also records the end-to-end era rate of a short experiment with and
without a frozen static head, which is the honest number for "what does
the head subsystem cost a run".  Results go to ``BENCH_policy.json`` at
the repository root.

The datapoint is **informational**: ``scripts/bench_gate.py`` prints it
next to the hot-path gate but never fails on it -- microsecond-scale
decisions jitter hard on shared machines, and the golden-trace tests
already pin the only property that must not regress (bit-identity with
the head absent).

Run::

    PYTHONPATH=src python benchmarks/bench_policy.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_policy.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import run_policy_experiment  # noqa: E402
from repro.fleet.jobs import build_scenario  # noqa: E402
from repro.policy.features import N_FEATURES, PolicyObservation  # noqa: E402
from repro.policy.heads import (  # noqa: E402
    BanditHead,
    ReinforceHead,
    StaticPolicyHead,
)

BENCH_SEED = 11

#: Timing repetitions; best-of to suppress shared-machine jitter.
REPEATS = 5

#: Plan-step decisions inside one timed repetition.
INNER_DECISIONS = 200

N_REGIONS = 3


def build_observations(n: int = INNER_DECISIONS) -> list[PolicyObservation]:
    """A fixed bag of plausible Plan-step observations."""
    rng = np.random.default_rng(BENCH_SEED)
    observations = []
    for _ in range(n):
        features = rng.uniform(0.0, 1.0, size=(N_REGIONS, N_FEATURES))
        features[:, 0] = 1.0
        observations.append(
            PolicyObservation(
                regions=tuple(f"r{i}" for i in range(N_REGIONS)),
                features=features,
                prev_fractions=rng.dirichlet(np.ones(N_REGIONS)),
                rmttf=rng.uniform(30.0, 600.0, size=N_REGIONS),
                global_rate=float(rng.uniform(5.0, 100.0)),
            )
        )
    return observations


def _head_variants() -> dict:
    return {
        "static": StaticPolicyHead("sensible-routing"),
        "bandit-frozen": BanditHead(frozen=True),
        "bandit-train": BanditHead(),
        "reinforce-frozen": ReinforceHead(frozen=True),
        "reinforce-train": ReinforceHead(),
    }


def time_decisions(head, observations) -> float:
    """Best-of-``REPEATS`` microseconds per act + reward fold."""
    head.reseed(BENCH_SEED)
    best = float("inf")
    for _ in range(REPEATS):
        head.transitions.clear()
        start = time.perf_counter()
        for obs in observations:
            head.act(obs)
            head.observe_reward(0.9)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / len(observations) * 1e6


def time_experiment(policy_head, eras: int = 30) -> float:
    """Wall seconds of one short two-region experiment."""
    start = time.perf_counter()
    run_policy_experiment(
        build_scenario("two-region", 1.0),
        "sensible-routing",
        eras=eras,
        seed=BENCH_SEED,
        policy_head=policy_head,
    )
    return time.perf_counter() - start


def run_benchmark() -> dict:
    observations = build_observations()
    heads = {}
    for name, head in _head_variants().items():
        us = time_decisions(head, observations)
        heads[name] = {"act_us": round(us, 3)}
        print(f"  {name:<16} {us:9.2f} us/decision")

    plain_s = min(time_experiment(None) for _ in range(3))
    headed_s = min(
        time_experiment("static:sensible-routing") for _ in range(3)
    )
    overhead = (headed_s - plain_s) / plain_s
    print(
        f"  era loop: plain {plain_s:.3f} s, headed {headed_s:.3f} s "
        f"({overhead:+.1%})"
    )
    return {
        "bench": "policy",
        "seed": BENCH_SEED,
        "n_regions": N_REGIONS,
        "decisions": INNER_DECISIONS,
        "heads": heads,
        "era_loop": {
            "eras": 30,
            "plain_s": round(plain_s, 4),
            "headed_s": round(headed_s, 4),
            "overhead_frac": round(overhead, 4),
        },
    }


def main() -> int:
    payload = run_benchmark()
    BASELINE_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
