"""Columnar (struct-of-arrays) VM state for fleet-scale simulation.

The per-VM object model in :mod:`repro.pcam.vm` is the *reference*
implementation: every quantity lives as a Python attribute on a
:class:`~repro.pcam.vm.VirtualMachine` and every era touches every VM from
the interpreter.  That is exactly the right shape for the control plane
and for tests, and exactly the wrong shape for 10k--100k-VM fleets, where
anomaly decay, failure checks, rejuvenation-threshold scans and feature
extraction must be array operations.

:class:`VmStateTable` stores the mutable per-VM state of one region pool
as parallel NumPy columns (one row per VM) plus per-VM static columns
derived from the instance type and failure policy at adoption time.  The
table *adopts* existing ``VirtualMachine`` objects in place: their state
is copied into a table row and the object itself is re-classed into
:class:`TableBackedVM`, a thin view whose attributes are properties over
the row.  Every reference the control plane, the chaos engine, or a test
already holds keeps working -- ``vm.fail()``, ``vm.leaked_mb``,
``vm.state is VmState.ACTIVE`` all read and write the columns -- while
the hot paths batch whole pools per NumPy call.

Bit-parity contract
-------------------
Every vectorised kernel in this module replicates the scalar arithmetic
of :class:`~repro.pcam.vm.VirtualMachine` expression-for-expression in
float64, so a columnar era is *bit-identical* to the per-VM object era
(pinned by ``tests/pcam/test_columnar_parity.py``).  Anything stochastic
(anomaly injection) stays per-VM in the caller, consuming each VM's own
RNG stream in the same order the scalar loop would.

Slot lifecycle invariants
-------------------------
* a freed row is scrubbed to poison values (``state_code == FREED``) so a
  stale index read fails loudly instead of resurrecting the dead VM;
* :meth:`VmStateTable.adopt` overwrites **every** column of a reused
  slot -- the new tenant can never observe its predecessor's anomaly
  level, counters, or rejuvenation clock;
* :meth:`VmStateTable.compact` repacks live rows (updating each view's
  row index) so a churn-heavy pool does not fragment forever.
"""

from __future__ import annotations

import numpy as np

from repro.ml.features import FEATURE_NAMES
from repro.pcam.vm import (
    BASELINE_MEMORY_MB,
    BASELINE_THREADS,
    SWAP_CAPACITY_PENALTY,
    FailurePolicy,
    VirtualMachine,
    VmState,
)
from repro.sim.instances import InstanceType

#: Row state codes.  ``FREED`` poisons released slots.
CODE_ACTIVE = 0
CODE_STANDBY = 1
CODE_REJUVENATING = 2
CODE_FAILED = 3
FREED = -1

#: Code -> enum member (index by code).
CODE_TO_STATE: tuple[VmState, ...] = (
    VmState.ACTIVE,
    VmState.STANDBY,
    VmState.REJUVENATING,
    VmState.FAILED,
)

#: Enum member -> code.
STATE_TO_CODE: dict[VmState, int] = {
    state: code for code, state in enumerate(CODE_TO_STATE)
}

#: (column name, dtype) of every mutable column, in copy order.  Names
#: match the ``VirtualMachine`` attribute they mirror (the rejuvenation
#: clock drops the leading underscore).
MUTABLE_COLUMNS: tuple[tuple[str, type], ...] = (
    ("leaked_mb", np.float64),
    ("stuck_threads", np.int64),
    ("uptime_s", np.float64),
    ("rejuvenation_remaining_s", np.float64),
    ("last_request_rate", np.float64),
    ("last_response_time_s", np.float64),
    ("total_requests", np.int64),
    ("rejuvenation_count", np.int64),
    ("failure_count", np.int64),
    ("rack_id", np.int64),
)

#: Static per-VM columns frozen from ``itype``/``failure_policy`` at
#: adoption (re-synced if a view reassigns either object).
STATIC_COLUMNS: tuple[tuple[str, type], ...] = (
    ("cpu_power", np.float64),
    ("memory_mb", np.float64),
    ("swap_mb", np.float64),
    ("usable_memory_mb", np.float64),
    ("anomaly_budget_mb", np.float64),
    ("thread_free_slots", np.int64),
    ("rejuvenation_time_s", np.float64),
    ("sla_response_time_s", np.float64),
    ("swap_exhaustion", np.bool_),
    ("thread_exhaustion", np.bool_),
)

_ALL_COLUMNS = (("state_code", np.int8),) + MUTABLE_COLUMNS + STATIC_COLUMNS


class VmStateTable:
    """Struct-of-arrays store of one VM pool's state.

    Parameters
    ----------
    capacity:
        Initial row capacity (grows by doubling; 0 is fine).
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self._capacity = int(capacity)
        self._n_rows = 0  # high-water mark (rows ever allocated)
        self._free: list[int] = []  # released rows available for reuse
        self._vms: list[TableBackedVM | None] = [None] * self._capacity
        for name, dtype in _ALL_COLUMNS:
            setattr(self, name, np.zeros(self._capacity, dtype=dtype))
        self.state_code[:] = FREED

    # ------------------------------------------------------------------ #
    # capacity management
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of live (adopted, not released) rows."""
        return self._n_rows - len(self._free)

    @property
    def capacity(self) -> int:
        """Allocated row capacity (live rows + free + never-used)."""
        return self._capacity

    @property
    def n_free(self) -> int:
        """Released rows awaiting reuse (fragmentation measure)."""
        return len(self._free)

    def live_rows(self) -> np.ndarray:
        """Indices of live rows, ascending."""
        return np.flatnonzero(self.state_code[: self._n_rows] != FREED)

    def _grow(self, minimum: int) -> None:
        new_cap = max(self._capacity * 2, minimum, 4)
        for name, dtype in _ALL_COLUMNS:
            old = getattr(self, name)
            fresh = np.zeros(new_cap, dtype=dtype)
            fresh[: self._capacity] = old
            if name == "state_code":
                fresh[self._capacity :] = FREED
            setattr(self, name, fresh)
        self._vms.extend([None] * (new_cap - self._capacity))
        self._capacity = new_cap

    def _alloc_row(self) -> int:
        if self._free:
            return self._free.pop()
        if self._n_rows >= self._capacity:
            self._grow(self._n_rows + 1)
        row = self._n_rows
        self._n_rows += 1
        return row

    # ------------------------------------------------------------------ #
    # adoption / release / compaction
    # ------------------------------------------------------------------ #

    def adopt(self, vm: VirtualMachine) -> int:
        """Move ``vm``'s state into the table; re-class it as a view.

        The object identity is preserved: every existing reference to
        ``vm`` now reads and writes the table row.  Returns the row
        index.  A reused (previously released) slot is overwritten in
        **every** column, so no state of the previous tenant survives.
        """
        if isinstance(vm, TableBackedVM):
            raise ValueError(f"{vm.name!r} is already table-backed")
        row = self._alloc_row()
        # mutable state, straight from the scalar attributes
        self.state_code[row] = STATE_TO_CODE[vm.state]
        self.leaked_mb[row] = vm.leaked_mb
        self.stuck_threads[row] = vm.stuck_threads
        self.uptime_s[row] = vm.uptime_s
        self.rejuvenation_remaining_s[row] = vm._rejuvenation_remaining_s
        self.last_request_rate[row] = vm.last_request_rate
        self.last_response_time_s[row] = vm.last_response_time_s
        self.total_requests[row] = vm.total_requests
        self.rejuvenation_count[row] = vm.rejuvenation_count
        self.failure_count[row] = vm.failure_count
        self.rack_id[row] = vm.rack_id
        # rebind: drop the scalar attribute storage, install the view
        d = vm.__dict__
        d["_itype"] = d.pop("itype")
        d["_failure_policy"] = d.pop("failure_policy")
        rejuvenation_time_s = float(d.pop("rejuvenation_time_s"))
        for name, _ in MUTABLE_COLUMNS:
            d.pop(name, None)
        d.pop("state", None)
        d.pop("_rejuvenation_remaining_s", None)
        d["_table"] = self
        d["_row"] = row
        vm.__class__ = TableBackedVM
        self._vms[row] = vm
        self._sync_static(
            row, vm._itype, vm._failure_policy, rejuvenation_time_s
        )
        return row

    def _sync_static(
        self,
        row: int,
        itype: InstanceType,
        policy: FailurePolicy,
        rejuvenation_time_s: float | None = None,
    ) -> None:
        """Freeze the derived static columns for ``row``."""
        self.cpu_power[row] = itype.cpu_power
        self.memory_mb[row] = itype.memory_mb
        self.swap_mb[row] = itype.swap_mb
        usable = max(itype.memory_mb - BASELINE_MEMORY_MB, 1.0)
        self.usable_memory_mb[row] = usable
        self.anomaly_budget_mb[row] = usable + itype.swap_mb
        self.thread_free_slots[row] = max(
            itype.thread_slots - BASELINE_THREADS, 1
        )
        if rejuvenation_time_s is not None:
            self.rejuvenation_time_s[row] = rejuvenation_time_s
        self.sla_response_time_s[row] = policy.sla_response_time_s
        self.swap_exhaustion[row] = policy.swap_exhaustion
        self.thread_exhaustion[row] = policy.thread_exhaustion

    def adopt_all(self, vms: list[VirtualMachine]) -> np.ndarray:
        """Adopt a whole pool; returns the row indices in ``vms`` order."""
        return np.array([self.adopt(vm) for vm in vms], dtype=np.intp)

    def release(self, vm: "TableBackedVM") -> None:
        """Detach a view: state moves back to scalar attributes.

        The freed row is scrubbed to poison values and queued for reuse;
        the object reverts to a plain :class:`VirtualMachine` carrying
        its final state (callers of ``remove_vm`` may still inspect it).
        """
        if not isinstance(vm, TableBackedVM) or vm._table is not self:
            raise ValueError(f"{vm.name!r} is not backed by this table")
        row = vm._row
        d = vm.__dict__
        # materialise the final state back into the instance dict
        state = vm.state
        snapshot = {
            name: getattr(self, name)[row].item()
            for name, _ in MUTABLE_COLUMNS
        }
        d["itype"] = d.pop("_itype")
        d["failure_policy"] = d.pop("_failure_policy")
        d["rejuvenation_time_s"] = float(self.rejuvenation_time_s[row])
        d.pop("_table", None)
        d.pop("_row", None)
        vm.__class__ = VirtualMachine
        vm.state = state
        vm._rejuvenation_remaining_s = snapshot.pop(
            "rejuvenation_remaining_s"
        )
        for name, value in snapshot.items():
            setattr(vm, name, value)
        # scrub the row so stale indices cannot resurrect this VM
        self._scrub(row)
        self._vms[row] = None
        self._free.append(row)

    def _scrub(self, row: int) -> None:
        self.state_code[row] = FREED
        for name, dtype in MUTABLE_COLUMNS + STATIC_COLUMNS:
            getattr(self, name)[row] = 0

    def compact(self) -> dict[int, int]:
        """Repack live rows to the front; returns {old_row: new_row}.

        Views are updated in place, so holders of ``TableBackedVM``
        objects are unaffected.  Callers holding *raw row indices*
        (e.g. a controller's row map) must remap them with the returned
        mapping.
        """
        live = self.live_rows()
        mapping: dict[int, int] = {}
        for new, old in enumerate(live.tolist()):
            mapping[old] = new
            if new == old:
                continue
            for name, _ in _ALL_COLUMNS:
                col = getattr(self, name)
                col[new] = col[old]
            vm = self._vms[old]
            assert vm is not None
            vm.__dict__["_row"] = new
            self._vms[new] = vm
            self._vms[old] = None
        n_live = int(live.size)
        for row in range(n_live, self._n_rows):
            self._scrub(row)
            self._vms[row] = None
        self._n_rows = n_live
        self._free = []
        return mapping

    def view(self, row: int) -> "TableBackedVM":
        """The adopted VM object at ``row``.

        Raises
        ------
        LookupError
            If the row was never adopted or has been released.
        """
        vm = self._vms[row] if 0 <= row < self._capacity else None
        if vm is None:
            raise LookupError(f"row {row} holds no live VM")
        return vm

    # ------------------------------------------------------------------ #
    # vectorised kernels (bit-identical to the scalar VirtualMachine)
    # ------------------------------------------------------------------ #

    def swap_used_mb_of(self, idx: np.ndarray) -> np.ndarray:
        """Vectorised :attr:`VirtualMachine.swap_used_mb`."""
        spilled = self.leaked_mb[idx] - self.usable_memory_mb[idx]
        return np.clip(spilled, 0.0, self.swap_mb[idx])

    def swap_pressure_of(self, idx: np.ndarray) -> np.ndarray:
        """Vectorised :attr:`VirtualMachine.swap_pressure`."""
        swap = self.swap_mb[idx]
        zero = swap == 0.0
        out = np.empty(len(idx), dtype=np.float64)
        np.divide(self.swap_used_mb_of(idx), swap, out=out, where=~zero)
        if zero.any():
            out[zero] = np.where(
                self.leaked_mb[idx][zero] >= self.usable_memory_mb[idx][zero],
                1.0,
                0.0,
            )
        return out

    def thread_pressure_of(self, idx: np.ndarray) -> np.ndarray:
        """Vectorised :attr:`VirtualMachine.thread_pressure`."""
        ratio = self.stuck_threads[idx] / self.thread_free_slots[idx]
        return np.minimum(ratio, 1.0)

    def effective_capacity_of(self, idx: np.ndarray) -> np.ndarray:
        """Vectorised :attr:`VirtualMachine.effective_capacity`."""
        factor = (
            1.0 - SWAP_CAPACITY_PENALTY * self.swap_pressure_of(idx)
        ) * (1.0 - self.thread_pressure_of(idx))
        return self.cpu_power[idx] * np.maximum(factor, 0.02)

    def capacity_at(self, row: int) -> float:
        """Scalar effective capacity of one row (the per-request path).

        Pure-Python float arithmetic replicating the property chain of
        the scalar VM, so a single lookup stays cheap inside the DES
        request loop (no NumPy call overhead).
        """
        leaked = float(self.leaked_mb[row])
        usable = float(self.usable_memory_mb[row])
        swap = float(self.swap_mb[row])
        spilled = leaked - usable
        if spilled <= 0.0:
            swap_used = 0.0
        elif spilled >= swap:
            swap_used = swap
        else:
            swap_used = spilled
        if swap == 0.0:
            swap_pressure = 1.0 if leaked >= usable else 0.0
        else:
            swap_pressure = swap_used / swap
        ratio = int(self.stuck_threads[row]) / int(
            self.thread_free_slots[row]
        )
        thread_pressure = 1.0 if ratio >= 1.0 else ratio
        factor = (1.0 - SWAP_CAPACITY_PENALTY * swap_pressure) * (
            1.0 - thread_pressure
        )
        return float(self.cpu_power[row]) * max(factor, 0.02)

    def response_time_of(
        self, idx: np.ndarray, request_rate: np.ndarray, mean_demand: float
    ) -> np.ndarray:
        """Vectorised :meth:`VirtualMachine.response_time_s`."""
        mu = self.effective_capacity_of(idx) / mean_demand
        service_time = 1.0 / mu
        rho = np.minimum(request_rate / mu, 0.99)
        return service_time / (1.0 - rho)

    def failure_point_of(self, idx: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`VirtualMachine.failure_point_reached`."""
        return (
            (
                self.swap_exhaustion[idx]
                & (self.leaked_mb[idx] >= self.anomaly_budget_mb[idx])
            )
            | (
                self.thread_exhaustion[idx]
                & (self.thread_pressure_of(idx) >= 1.0)
            )
            | (self.last_response_time_s[idx] > self.sla_response_time_s[idx])
        )

    def failure_point_at(self, row: int) -> bool:
        """Scalar failure predicate for one row (DES request path)."""
        if bool(self.swap_exhaustion[row]) and float(
            self.leaked_mb[row]
        ) >= float(self.anomaly_budget_mb[row]):
            return True
        if bool(self.thread_exhaustion[row]):
            ratio = int(self.stuck_threads[row]) / int(
                self.thread_free_slots[row]
            )
            if ratio >= 1.0:
                return True
        return float(self.last_response_time_s[row]) > float(
            self.sla_response_time_s[row]
        )

    def feature_matrix(self, idx: np.ndarray) -> np.ndarray:
        """One F2PM monitoring row per VM in ``idx`` order, as a matrix.

        Bit-identical to stacking
        ``vm.sample_features().to_array()`` per VM, without constructing
        a single :class:`~repro.ml.features.FeatureVector`.
        """
        n = len(idx)
        out = np.empty((n, len(FEATURE_NAMES)), dtype=np.float64)
        leaked = self.leaked_mb[idx]
        usable = self.usable_memory_mb[idx]
        swap_pressure = self.swap_pressure_of(idx)
        rate = self.last_request_rate[idx]
        mem_used = BASELINE_MEMORY_MB + np.minimum(leaked, usable)
        mu = self.effective_capacity_of(idx) / 1.5
        rho = np.where(mu > 0, np.minimum(rate / mu, 0.99), 0.99)
        cpu_user = 70.0 * rho
        cpu_system = 10.0 * rho + 20.0 * swap_pressure
        out[:, 0] = mem_used
        out[:, 1] = np.maximum(self.memory_mb[idx] - mem_used, 0.0)
        out[:, 2] = self.swap_used_mb_of(idx)
        out[:, 3] = cpu_user
        out[:, 4] = cpu_system
        out[:, 5] = np.maximum(100.0 - cpu_user - cpu_system, 0.0)
        out[:, 6] = BASELINE_THREADS + self.stuck_threads[idx]
        out[:, 7] = 60.0
        out[:, 8] = 0.5 + 4.0 * swap_pressure
        out[:, 9] = 0.3 + 6.0 * swap_pressure
        out[:, 10] = 0.02 * rate
        out[:, 11] = 0.12 * rate
        out[:, 12] = rate
        out[:, 13] = self.last_response_time_s[idx] * 1000.0
        out[:, 14] = self.uptime_s[idx]
        return out

    # ------------------------------------------------------------------ #
    # vectorised lifecycle transitions
    # ------------------------------------------------------------------ #

    def activate(self, idx: np.ndarray) -> None:
        """STANDBY -> ACTIVE for every row in ``idx`` (uptime resets)."""
        self.state_code[idx] = CODE_ACTIVE
        self.uptime_s[idx] = 0.0

    def fail(self, idx: np.ndarray) -> None:
        """-> FAILED for rows not already failed (counter increments)."""
        fresh = idx[self.state_code[idx] != CODE_FAILED]
        self.state_code[fresh] = CODE_FAILED
        self.failure_count[fresh] += 1

    def start_rejuvenation(self, idx: np.ndarray) -> None:
        """ACTIVE/FAILED -> REJUVENATING; zero-delay ones finish at once."""
        self.state_code[idx] = CODE_REJUVENATING
        delay = self.rejuvenation_time_s[idx]
        self.rejuvenation_remaining_s[idx] = delay
        self.rejuvenation_count[idx] += 1
        instant = idx[delay == 0.0]
        if instant.size:
            self._finish_rejuvenation(instant)

    def _finish_rejuvenation(self, idx: np.ndarray) -> None:
        self.state_code[idx] = CODE_STANDBY
        self.leaked_mb[idx] = 0.0
        self.stuck_threads[idx] = 0
        self.uptime_s[idx] = 0.0
        self.last_response_time_s[idx] = 0.0
        self.last_request_rate[idx] = 0.0
        self.rejuvenation_remaining_s[idx] = 0.0

    def idle_tick(self, idx: np.ndarray, dt: float) -> None:
        """Advance rejuvenation clocks; finish the ones that ran out.

        Mirrors per-VM ``idle(dt)`` on REJUVENATING rows.  (STANDBY rows
        need no work, exactly like the scalar method.)
        """
        rejuv = idx[self.state_code[idx] == CODE_REJUVENATING]
        if not rejuv.size:
            return
        self.rejuvenation_remaining_s[rejuv] -= dt
        done = rejuv[self.rejuvenation_remaining_s[rejuv] <= 0.0]
        if done.size:
            self._finish_rejuvenation(done)

    def era_load_update(
        self,
        idx: np.ndarray,
        n_requests: np.ndarray,
        dt: float,
        mean_demand: float,
        leaked_delta: np.ndarray,
        threads_delta: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The deterministic tail of :meth:`VirtualMachine.apply_load`.

        The caller has already drawn each VM's anomaly effect from its
        own stream (in ``idx`` order); this applies the accumulation,
        uptime, telemetry, response-time and failure-point arithmetic in
        one vectorised pass.  Returns ``(response_times, failed_mask)``.
        """
        self.leaked_mb[idx] += leaked_delta
        self.stuck_threads[idx] += threads_delta
        self.uptime_s[idx] += dt
        self.total_requests[idx] += n_requests
        rate = n_requests / dt
        self.last_request_rate[idx] = rate
        rt = self.response_time_of(idx, rate, mean_demand)
        self.last_response_time_s[idx] = rt
        failed = self.failure_point_of(idx)
        if failed.any():
            self.fail(idx[failed])
        return rt, failed

    def counts_by_state(self, idx: np.ndarray) -> tuple[int, int, int, int]:
        """(n_active, n_standby, n_rejuvenating, n_failed) over ``idx``."""
        codes = self.state_code[idx]
        counts = np.bincount(codes[codes >= 0], minlength=4)
        return (
            int(counts[CODE_ACTIVE]),
            int(counts[CODE_STANDBY]),
            int(counts[CODE_REJUVENATING]),
            int(counts[CODE_FAILED]),
        )


# ---------------------------------------------------------------------- #
# the thin object view
# ---------------------------------------------------------------------- #


def _column_property(col: str, cast) -> property:
    def _get(self):
        return cast(getattr(self._table, col)[self._row])

    def _set(self, value):
        getattr(self._table, col)[self._row] = value

    return property(_get, _set)


class TableBackedVM(VirtualMachine):
    """A :class:`VirtualMachine` whose state lives in a `VmStateTable` row.

    Never constructed directly -- :meth:`VmStateTable.adopt` re-classes an
    existing ``VirtualMachine`` into this type in place (and
    :meth:`VmStateTable.release` reverses it).  All behaviour is
    inherited; only attribute storage is redirected, so the scalar
    methods (``apply_load``, ``idle``, ``activate`` ...) stay the single
    source of truth for one-VM semantics.
    """

    leaked_mb = _column_property("leaked_mb", float)
    uptime_s = _column_property("uptime_s", float)
    stuck_threads = _column_property("stuck_threads", int)
    _rejuvenation_remaining_s = _column_property(
        "rejuvenation_remaining_s", float
    )
    last_request_rate = _column_property("last_request_rate", float)
    last_response_time_s = _column_property("last_response_time_s", float)
    total_requests = _column_property("total_requests", int)
    rejuvenation_count = _column_property("rejuvenation_count", int)
    failure_count = _column_property("failure_count", int)
    rack_id = _column_property("rack_id", int)
    rejuvenation_time_s = _column_property("rejuvenation_time_s", float)

    @property
    def table(self) -> VmStateTable:
        """The owning state table."""
        return self._table

    @property
    def row(self) -> int:
        """This VM's current row index (changes under compaction)."""
        return self._row

    @property
    def state(self) -> VmState:
        return CODE_TO_STATE[self._table.state_code[self._row]]

    @state.setter
    def state(self, value: VmState) -> None:
        self._table.state_code[self._row] = STATE_TO_CODE[value]

    @property
    def itype(self) -> InstanceType:
        return self._itype

    @itype.setter
    def itype(self, value: InstanceType) -> None:
        self.__dict__["_itype"] = value
        self._table._sync_static(self._row, value, self._failure_policy)

    @property
    def failure_policy(self) -> FailurePolicy:
        return self._failure_policy

    @failure_policy.setter
    def failure_policy(self, value: FailurePolicy) -> None:
        self.__dict__["_failure_policy"] = value
        self._table._sync_static(self._row, self._itype, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TableBackedVM({self.name!r}, row={self._row}, "
            f"{self.state.value}, leaked={self.leaked_mb:.0f}MB)"
        )
