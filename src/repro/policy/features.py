"""Per-region observation vectors for learned policy heads.

Each control era, the Plan phase summarises every region into a small,
normalised feature vector; the concatenated ``(n_regions, N_FEATURES)``
matrix plus the raw Algorithm-2 inputs form a
:class:`PolicyObservation`.  The raw inputs ride along so a
``StaticPolicyHead`` can feed the wrapped Policy the *exact* floats the
plain control loop would have used -- that is what makes the frozen-head
bit-identity test possible.

Feature scaling is deliberately crude (fixed clips, no running
statistics): a contextual bandit only needs the features bounded and
roughly unit-scale, and anything adaptive would break the determinism
discipline (the same era must produce the same vector regardless of
what ran before the checkpoint was written).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Feature order of one region's row (see :func:`region_features`).
FEATURE_NAMES: tuple[str, ...] = (
    "bias",
    "rmttf",
    "fraction",
    "load_share",
    "failure_rate",
    "rejuvenation_rate",
    "slo_pressure",
    "health",
    "cost_per_kreq",
)

#: Dimensionality of one region's feature vector.
N_FEATURES = len(FEATURE_NAMES)

#: RMTTF normaliser (seconds): ~2.5x the paper's 240 s rejuvenation
#: threshold, so the feature saturates only for a comfortably healthy VM.
RMTTF_SCALE_S = 600.0

#: SLO-pressure clip: response times beyond 3x the SLA all look equally
#: terrible to the head.
SLO_CLIP = 3.0


@dataclass(frozen=True)
class PolicyObservation:
    """What a policy head sees at one Plan step.

    ``features`` is the normalised ``(n_regions, N_FEATURES)`` matrix;
    ``prev_fractions`` / ``rmttf`` / ``global_rate`` are the raw
    Algorithm-2 inputs, bit-identical to what ``POLICY()`` would get.
    """

    regions: tuple[str, ...]
    features: np.ndarray
    prev_fractions: np.ndarray
    rmttf: np.ndarray
    global_rate: float

    def __post_init__(self) -> None:
        n = len(self.regions)
        if self.features.shape != (n, N_FEATURES):
            raise ValueError(
                f"features must be ({n}, {N_FEATURES}), "
                f"got {self.features.shape}"
            )


def region_features(
    *,
    rmttf_s: float,
    fraction: float,
    load_share: float,
    failures: int,
    rejuvenations: int,
    n_vms: int,
    response_time_s: float,
    sla_s: float,
    total_capacity: float,
    healthy_capacity: float,
    cost_per_kreq: float,
) -> np.ndarray:
    """One region's normalised feature row (order = ``FEATURE_NAMES``)."""
    pool = max(n_vms, 1)
    health = (
        total_capacity / healthy_capacity if healthy_capacity > 0 else 0.0
    )
    slo = min(response_time_s / sla_s, SLO_CLIP) / SLO_CLIP if sla_s > 0 else 0.0
    return np.array(
        [
            1.0,
            min(rmttf_s / RMTTF_SCALE_S, 2.0),
            fraction,
            load_share,
            failures / pool,
            rejuvenations / pool,
            slo,
            min(max(health, 0.0), 1.0),
            min(max(cost_per_kreq, 0.0), 1.0),
        ]
    )
