"""The sweep's SLO axis: digest stability, cell naming, aggregation."""

from __future__ import annotations

import pytest

from repro.fleet.aggregate import CellStats, aggregate, cell_key, frontier_report
from repro.fleet.jobs import JobSpec
from repro.fleet.spec import SweepSpec


def _spec(**kw) -> SweepSpec:
    defaults = dict(
        scenarios=("two-region",),
        policies=("sensible-routing",),
        replicates=1,
        eras=10,
    )
    defaults.update(kw)
    return SweepSpec(**defaults)


def _job(**kw) -> JobSpec:
    defaults = dict(
        kind="policy",
        scenario="two-region",
        policy="sensible-routing",
        load=1.0,
        seed=1,
        replicate=0,
        eras=10,
    )
    defaults.update(kw)
    return JobSpec(**defaults)


class TestSpecAxis:
    def test_default_axis_preserves_digests_and_seeds(self):
        base = {j.label: (j.seed, j.digest) for j in _spec().expand()}
        widened = _spec(slo=("", "p95:0.5")).expand()
        new = {j.label: (j.seed, j.digest) for j in widened}
        for label, identity in base.items():
            assert new[label] == identity

    def test_slo_cells_get_suffix_and_distinct_seeds(self):
        jobs = _spec(slo=("", "p95:0.5")).expand()
        labels = [j.label for j in jobs]
        assert "policy/two-region/sensible-routing/load1/rep0" in labels
        assert (
            "policy/two-region/sensible-routing/load1/slo:p95:0.5/rep0"
            in labels
        )
        assert len({j.seed for j in jobs}) == len(jobs)

    def test_config_keyed_only_when_axis_used(self):
        assert "slo" not in _spec().config()
        assert _spec(slo=("", "p95:0.5")).config()["slo"] == ["", "p95:0.5"]

    def test_cell_count_multiplies(self):
        assert _spec(slo=("", "p95:0.5")).cell_count == 2 * _spec().cell_count

    def test_garbage_spec_rejected(self):
        with pytest.raises(ValueError):
            _spec(slo=("p95:abc",))
        with pytest.raises(ValueError):
            _spec(slo=())


class TestJobSpec:
    def test_config_round_trip(self):
        job = _job(slo="p95:0.5+dwell:120")
        assert JobSpec.from_config(job.config()) == job
        assert job.config()["slo"] == "p95:0.5+dwell:120"

    def test_no_slo_keeps_historical_config(self):
        assert "slo" not in _job().config()

    def test_garbage_slo_rejected(self):
        with pytest.raises(ValueError):
            _job(slo="nonsense")


class TestAggregation:
    def test_cell_key_separates_slo(self):
        plain = _job()
        gated = _job(seed=2, slo="p95:0.5")
        assert cell_key(plain) != cell_key(gated)
        assert cell_key(gated)[-1] == "p95:0.5"

    def test_cell_label_carries_slo(self):
        cells = aggregate(
            [_job(slo="p95:0.5")], [{"mean_rmttf_s": 1.0}]
        )
        assert cells[0].label.endswith("slo:p95:0.5")


class TestFrontierReport:
    def _cell(self, policy, cost, avail, p95=0.1, n=3):
        cell = CellStats(
            kind="policy",
            scenario="two-region",
            policy=policy,
            load=1.0,
            n=n,
        )
        rows = [
            {
                "cost_per_mreq": cost,
                "availability": avail,
                "response_p95_s": p95,
            }
        ] * n
        return aggregate([_job(policy=policy, seed=i) for i in range(n)], rows)[0]

    def test_dominated_cell_not_marked(self):
        cheap = self._cell("cost-aware", cost=2.0, avail=0.95)
        pricey = self._cell("sensible-routing", cost=3.0, avail=0.95)
        report = frontier_report([cheap, pricey])
        lines = {
            line.split("|")[1].strip(): line
            for line in report.splitlines()[2:]
        }
        assert lines[cheap.label].rstrip("|").rstrip().endswith("*")
        assert not lines[pricey.label].rstrip("|").rstrip().endswith("*")

    def test_frontier_keeps_tradeoff_points(self):
        cheap_low = self._cell("cost-aware", cost=2.0, avail=0.90)
        pricey_high = self._cell("sensible-routing", cost=3.0, avail=0.99)
        report = frontier_report([cheap_low, pricey_high])
        # neither dominates: both are on the frontier
        assert report.count("*") == 2

    def test_empty_without_cost_metrics(self):
        cells = aggregate([_job()], [{"mean_rmttf_s": 1.0}])
        assert frontier_report(cells) == ""
