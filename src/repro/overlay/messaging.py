"""Latency-accurate message delivery between controllers.

Slave VMCs send their ``lastRMTTF`` to the leader; the leader pushes the
new workload fractions back (Algorithms 1-2).  :class:`MessageBus` carries
those messages over the overlay: delivery is scheduled on the simulator
after the best-path latency, and messages are dropped (with a callback) if
the endpoints are partitioned at *send* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.overlay.routing import NoRouteError, Router
from repro.sim.engine import Simulator


@dataclass(frozen=True, slots=True)
class Message:
    """One controller-to-controller message."""

    src: str
    dst: str
    kind: str
    payload: Any
    sent_at: float


@dataclass
class MessageBus:
    """Delivers messages over the overlay with path latency.

    Parameters
    ----------
    sim:
        The simulator used to schedule deliveries.
    router:
        Path/latency source.
    on_drop:
        Optional callback invoked with the message when no route exists.
    """

    sim: Simulator
    router: Router
    on_drop: Callable[[Message], None] | None = None
    delivered_count: int = 0
    dropped_count: int = 0
    _handlers: dict[str, Callable[[Message], None]] = field(
        default_factory=dict
    )

    def register(
        self, node: str, handler: Callable[[Message], None]
    ) -> None:
        """Register the receive handler of a controller node."""
        self._handlers[node] = handler

    def send(self, src: str, dst: str, kind: str, payload: Any) -> bool:
        """Send a message; returns False if dropped (no route / no handler).

        Delivery happens ``latency_ms / 1000`` simulated seconds later; a
        destination that dies in flight still receives the message only if
        it is alive at delivery time.
        """
        msg = Message(
            src=src, dst=dst, kind=kind, payload=payload, sent_at=self.sim.now
        )
        try:
            _, latency_ms = self.router.route(src, dst)
        except NoRouteError:
            self._drop(msg)
            return False
        if dst not in self._handlers:
            self._drop(msg)
            return False

        def deliver() -> None:
            if not self.router.network.is_alive(dst):
                self._drop(msg)
                return
            self.delivered_count += 1
            self._handlers[dst](msg)

        self.sim.schedule_after(latency_ms / 1000.0, deliver, label=f"msg:{kind}")
        return True

    def broadcast(
        self, src: str, kind: str, payload: Any
    ) -> int:
        """Send to every other registered node; returns count accepted."""
        sent = 0
        for node in sorted(self._handlers):
            if node != src:
                if self.send(src, node, kind, payload):
                    sent += 1
        return sent

    def _drop(self, msg: Message) -> None:
        self.dropped_count += 1
        if self.on_drop is not None:
            self.on_drop(msg)
