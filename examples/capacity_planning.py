"""Capacity planning: size heterogeneous pools for a common RMTTF target.

Inverts the reproduction's mean-field failure model to answer the
deployment question the paper's policies solve at runtime: *how many VMs
of each shape does each region need so that, at its expected load, the
region sustains a target RMTTF?*  Then validates the plan by actually
running the deployment.

Run with::

    python examples/capacity_planning.py
"""

from repro.core import AcmManager, RegionSpec, plan_deployment
from repro.core.planner import mean_field_ttf
from repro.sim import INSTANCE_CATALOG


def main() -> None:
    target = 600.0  # every region should sustain >= 10 min RMTTF
    shapes = {
        "eu-public": "m3.medium",
        "eu-budget": "m3.small",
        "on-prem": "private.small",
    }
    loads = {"eu-public": 30.0, "eu-budget": 22.0, "on-prem": 10.0}

    print(f"target RMTTF: {target:.0f}s\n")
    print("per-VM time-to-failure at representative rates:")
    for shape in sorted(set(shapes.values())):
        itype = INSTANCE_CATALOG[shape]
        row = "  ".join(
            f"{r:4.0f}req/s->{mean_field_ttf(itype, r):6.0f}s"
            for r in (2.0, 5.0, 10.0)
        )
        print(f"  {shape:<14} {row}")

    plans = plan_deployment(shapes, loads, target_rmttf_s=target)
    print(f"\n{'region':<12} {'shape':<14} {'load':>7} {'active':>7} "
          f"{'standby':>8} {'RMTTF':>8} {'util':>6} {'$/h':>7}")
    total_cost = 0.0
    for region, plan in plans.items():
        itype = INSTANCE_CATALOG[plan.instance_type]
        cost = plan.total_vms * itype.hourly_cost
        total_cost += cost
        print(
            f"{region:<12} {plan.instance_type:<14} "
            f"{plan.request_rate:>5.0f}/s {plan.active_vms:>7} "
            f"{plan.standby_vms:>8} {plan.expected_rmttf_s:>7.0f}s "
            f"{plan.expected_utilisation:>6.2f} {cost:>7.3f}"
        )
    print(f"{'':>12} {'':>14} {'':>7} {'':>7} {'':>8} {'':>8} {'':>6} "
          f"{total_cost:>7.3f} total")

    # validate one region's plan in simulation
    region = "eu-public"
    plan = plans[region]
    clients = int(loads[region] * 7.0)  # closed loop: N = rate * Z
    print(f"\nvalidating {region} ({plan.active_vms} active "
          f"+ {plan.standby_vms} standby, {clients} clients)...")
    mgr = AcmManager(
        regions=[
            RegionSpec(
                region,
                plan.instance_type,
                n_vms=plan.total_vms,
                target_active=plan.active_vms,
                clients=clients,
            ),
        ],
        policy="uniform",
        seed=17,
    )
    mgr.run(120)
    steady = mgr.traces.series(f"rmttf/{region}").tail_fraction(0.4).mean()
    failures = mgr.traces.series("failures").values.sum()
    print(
        f"measured steady RMTTF: {steady:.0f}s (target {target:.0f}s), "
        f"failures: {failures:.0f}"
    )


if __name__ == "__main__":
    main()
