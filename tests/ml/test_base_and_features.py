"""Tests for the regressor base class and the feature schema."""

import numpy as np
import pytest

from repro.ml import FEATURE_NAMES, FeatureVector, feature_index
from repro.ml.base import FittedError, Regressor, as_1d_float, as_2d_float


class _ConstModel(Regressor):
    """Trivial regressor used to exercise the base-class plumbing."""

    def _fit(self, X, y):
        self.mean_ = float(y.mean())

    def _predict(self, X):
        return np.full(X.shape[0], self.mean_)


class TestRegressorBase:
    def test_predict_before_fit_raises(self):
        with pytest.raises(FittedError):
            _ConstModel().predict(np.zeros((1, 2)))

    def test_fit_returns_self_and_sets_flags(self):
        m = _ConstModel()
        out = m.fit(np.zeros((3, 2)), np.ones(3))
        assert out is m
        assert m.is_fitted
        assert m.n_features == 2

    def test_n_features_before_fit_raises(self):
        with pytest.raises(FittedError):
            _ = _ConstModel().n_features

    def test_feature_count_mismatch_at_predict(self):
        m = _ConstModel().fit(np.zeros((3, 2)), np.ones(3))
        with pytest.raises(ValueError, match="features"):
            m.predict(np.zeros((1, 5)))

    def test_sample_mismatch_rejected(self):
        with pytest.raises(ValueError, match="samples"):
            _ConstModel().fit(np.zeros((3, 2)), np.ones(4))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            _ConstModel().fit(np.zeros((0, 2)), np.zeros(0))

    def test_nan_rejected(self):
        X = np.zeros((3, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            _ConstModel().fit(X, np.ones(3))

    def test_1d_X_promoted_to_column(self):
        m = _ConstModel().fit(np.arange(4.0), np.ones(4))
        assert m.n_features == 1


class TestValidators:
    def test_as_2d_promotes_1d(self):
        assert as_2d_float(np.arange(3.0)).shape == (3, 1)

    def test_as_2d_rejects_3d(self):
        with pytest.raises(ValueError):
            as_2d_float(np.zeros((2, 2, 2)))

    def test_as_1d_ravels(self):
        assert as_1d_float(np.zeros((3, 1))).shape == (3,)

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_1d_float(np.array([1.0, np.inf]))


class TestFeatureSchema:
    def test_index_round_trip(self):
        for i, name in enumerate(FEATURE_NAMES):
            assert feature_index(name) == i

    def test_unknown_feature_raises(self):
        with pytest.raises(KeyError, match="mem_used_mb"):
            feature_index("bogus")

    def test_vector_round_trip(self):
        fv = FeatureVector(mem_used_mb=100.0, num_threads=42.0, uptime_s=3.0)
        row = fv.to_array()
        assert row.shape == (len(FEATURE_NAMES),)
        back = FeatureVector.from_array(row)
        assert back == fv

    def test_from_array_wrong_length(self):
        with pytest.raises(ValueError):
            FeatureVector.from_array(np.zeros(3))

    def test_schema_has_the_papers_headline_features(self):
        # Sec. III names memory usage, CPU time, swap space explicitly.
        assert "mem_used_mb" in FEATURE_NAMES
        assert "swap_used_mb" in FEATURE_NAMES
        assert "cpu_user_pct" in FEATURE_NAMES
        assert "response_time_ms" in FEATURE_NAMES
