"""Latency-accurate message delivery between controllers.

Slave VMCs send their ``lastRMTTF`` to the leader; the leader pushes the
new workload fractions back (Algorithms 1-2).  :class:`MessageBus` carries
those messages over the overlay: delivery is scheduled on the simulator
after the best-path latency, and messages are dropped (with a callback) if
the endpoints are partitioned at *send* time.

Every drop is tagged with a reason so operators (and the chaos campaigns)
can tell failure modes apart:

* ``no_route`` -- the endpoints were partitioned at send time;
* ``no_handler`` -- the destination never registered a receive handler;
* ``dead_dst`` -- the destination died while the message was in flight.

:class:`repro.chaos.lossy.LossyBus` extends the vocabulary with
``chaos_loss`` for injected message loss.  The bus itself is *unreliable
by design* (it models a datagram overlay); callers that need delivery
guarantees layer :class:`repro.overlay.reliable.ReliableChannel` on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.overlay.routing import NoRouteError, Router
from repro.sim.engine import Simulator

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry


@dataclass(frozen=True, slots=True)
class Message:
    """One controller-to-controller message."""

    src: str
    dst: str
    kind: str
    payload: Any
    sent_at: float


class BroadcastReceipt(int):
    """Outcome of a :meth:`MessageBus.broadcast`.

    Compares as the number of sends *accepted* at call time (so existing
    ``receipt == n`` checks keep working), while :attr:`delivered` and
    :attr:`died_in_flight` resolve as the simulator runs the delivery
    events -- a send that is accepted but whose destination dies in
    flight is **not** counted as delivered.
    """

    def __new__(cls, accepted: int) -> "BroadcastReceipt":
        obj = super().__new__(cls, accepted)
        obj._outcomes = {"delivered": 0, "dead_dst": 0, "chaos_loss": 0}
        return obj

    def _resolve(self, outcome: str) -> None:
        if outcome in self._outcomes:
            self._outcomes[outcome] += 1

    @property
    def accepted(self) -> int:
        """Sends accepted at call time (the integer value)."""
        return int(self)

    @property
    def delivered(self) -> int:
        """Sends actually handed to their destination handler so far."""
        return self._outcomes["delivered"]

    @property
    def died_in_flight(self) -> int:
        """Accepted sends whose destination died (or whose message was
        lost by chaos injection) before delivery."""
        return self._outcomes["dead_dst"] + self._outcomes["chaos_loss"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BroadcastReceipt(accepted={int(self)}, "
            f"delivered={self.delivered}, "
            f"died_in_flight={self.died_in_flight})"
        )


@dataclass
class MessageBus:
    """Delivers messages over the overlay with path latency.

    Parameters
    ----------
    sim:
        The simulator used to schedule deliveries.
    router:
        Path/latency source.
    on_drop:
        Optional callback invoked with the message when it is dropped
        (for any reason; consult :attr:`drop_counts` for the breakdown).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade mirroring
        ``delivered_count``/``drop_counts`` into the metrics registry and
        recording a flight event per drop.  The integer attributes remain
        authoritative and are maintained regardless.
    """

    sim: Simulator
    router: Router
    on_drop: Callable[[Message], None] | None = None
    delivered_count: int = 0
    dropped_count: int = 0
    drop_counts: dict[str, int] = field(default_factory=dict)
    telemetry: "Telemetry | None" = None
    _handlers: dict[str, Callable[[Message], None]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        tel = self.telemetry
        self._obs = tel if tel is not None and tel.enabled else None
        self._obs_delivered = (
            self._obs.counter("bus_delivered_total")
            if self._obs is not None
            else None
        )

    def register(
        self, node: str, handler: Callable[[Message], None]
    ) -> None:
        """Register the receive handler of a controller node."""
        self._handlers[node] = handler

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Any,
        on_outcome: Callable[[Message, str], None] | None = None,
    ) -> bool:
        """Send a message; returns False if dropped (no route / no handler).

        Delivery happens ``latency_ms / 1000`` simulated seconds later; a
        destination that dies in flight still receives the message only if
        it is alive at delivery time.  ``on_outcome`` (if given) is called
        exactly once with the message and its final outcome: one of
        ``"delivered"``, ``"no_route"``, ``"no_handler"``, ``"dead_dst"``.
        """
        msg = Message(
            src=src, dst=dst, kind=kind, payload=payload, sent_at=self.sim.now
        )
        try:
            _, latency_ms = self.router.route(src, dst)
        except NoRouteError:
            self._drop(msg, "no_route", on_outcome)
            return False
        if dst not in self._handlers:
            self._drop(msg, "no_handler", on_outcome)
            return False

        def deliver() -> None:
            if not self.router.network.is_alive(dst):
                self._drop(msg, "dead_dst", on_outcome)
                return
            self.delivered_count += 1
            if self._obs_delivered is not None:
                self._obs_delivered.inc()
            self._handlers[dst](msg)
            if on_outcome is not None:
                on_outcome(msg, "delivered")

        self.sim.schedule_after(latency_ms / 1000.0, deliver, label=f"msg:{kind}")
        return True

    def broadcast(
        self, src: str, kind: str, payload: Any
    ) -> BroadcastReceipt:
        """Send to every other registered node.

        Returns a :class:`BroadcastReceipt`: it *is* the accepted count
        (an ``int``), and additionally tracks how many accepted sends were
        actually delivered vs died in flight once the simulator has run
        the delivery events.
        """
        # Outcomes can resolve synchronously (no_route/no_handler) before
        # the receipt exists, or later when delivery events fire; buffer
        # the early ones and route the late ones straight to the receipt.
        early: list[str] = []
        box: dict[str, BroadcastReceipt | None] = {"receipt": None}

        def on_outcome(_msg: Message, outcome: str) -> None:
            receipt = box["receipt"]
            if receipt is None:
                early.append(outcome)
            else:
                receipt._resolve(outcome)

        accepted = 0
        for node in sorted(self._handlers):
            if node != src:
                if self.send(src, node, kind, payload, on_outcome=on_outcome):
                    accepted += 1
        receipt = BroadcastReceipt(accepted)
        box["receipt"] = receipt
        for outcome in early:
            receipt._resolve(outcome)
        return receipt

    def _drop(
        self,
        msg: Message,
        reason: str,
        on_outcome: Callable[[Message, str], None] | None = None,
    ) -> None:
        self.dropped_count += 1
        self.drop_counts[reason] = self.drop_counts.get(reason, 0) + 1
        if self._obs is not None:
            self._obs.counter("bus_dropped_total", reason=reason).inc()
            self._obs.event(
                "bus.drop",
                reason=reason,
                src=msg.src,
                dst=msg.dst,
                msg_kind=msg.kind,
            )
        if self.on_drop is not None:
            self.on_drop(msg)
        if on_outcome is not None:
            on_outcome(msg, reason)
