"""Generic experiment driver: policy x scenario -> traces + assessment.

Two predictor configurations are supported, mirroring how the paper can be
read:

* ``predictor="oracle"`` -- mean-field ground-truth RTTF, isolating the
  *policy* dynamics (the paper's object of study) from ML error;
* ``predictor="rep-tree"`` (or any F2PM suite name) -- the full
  ML-in-the-loop path: profile every instance shape to failure, train the
  model with the F2PM toolchain, deploy it in every VMC.  This is the
  configuration the paper actually ran ("we selected REP Tree as a ML model
  for predicting the MTTF", Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributed import DistributedControlPlane
from repro.core.manager import AcmManager
from repro.core.metrics import PolicyAssessment, assess_policy_run
from repro.ml.online.lifecycle import OnlineLifecycleConfig
from repro.experiments.scenarios import PAPER_POLICIES, Scenario
from repro.obs.manifest import RunManifest
from repro.obs.telemetry import Telemetry
from repro.ml.derived import augment_runs_with_slopes
from repro.ml.features import FEATURE_NAMES
from repro.ml.toolchain import F2PMToolchain
from repro.ml.dataset import Dataset
from repro.pcam.monitor import ProfilingHarness
from repro.pcam.predictor import (
    OracleRttfPredictor,
    RttfPredictor,
    TrainedRttfPredictor,
    TrendAwareRttfPredictor,
)
from repro.pcam.vm import VirtualMachine
from repro.sim.instances import get_instance_type
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder
from repro.workload.anomalies import (
    DEFAULT_LEAK_PROBABILITY,
    AnomalyInjector,
)
from repro.workload.tpcw import MIX_SHOPPING


@dataclass
class ExperimentResult:
    """Everything one policy run produces."""

    scenario: str
    policy: str
    traces: TraceRecorder
    assessment: PolicyAssessment
    eras: int
    era_s: float
    #: how to regenerate this result (seed, config digest, code version)
    manifest: RunManifest | None = None
    #: online-lifecycle summary (retrains, drift, margins); ``None``
    #: when the run had no lifecycle
    online_stats: dict | None = None
    #: policy-head summary (mean reward, availability, cost, fallback);
    #: ``None`` when the run had no learned head
    head_stats: dict | None = None
    #: deployment bill (total/egress $, $/M requests) -- always present
    #: for :func:`run_policy_experiment` runs (pure accounting)
    cost_stats: dict | None = None
    #: SLO controller summary (degraded eras, violation rate,
    #: transitions); ``None`` when the run had no SLO config
    slo_stats: dict | None = None


def make_trained_predictor(
    instance_types: list[str],
    seed: int = 0,
    model_name: str = "rep-tree",
    profile_rates: tuple[float, ...] = (3.0, 5.0, 8.0, 12.0, 18.0, 26.0),
    runs_per_rate: int = 3,
    sample_period_s: float = 10.0,
    use_trend_features: bool = False,
    trend_window: int = 4,
) -> RttfPredictor:
    """Run the F2PM profiling phase and train an online RTTF predictor.

    Each instance shape is driven to failure ``runs_per_rate`` times at each
    profiling rate; the combined RTTF dataset trains the requested model
    (REP-Tree by default, per Sec. VI-A).  One model serves all shapes --
    the feature schema carries the capacity signals (free memory, thread
    counts) that let a single tree specialise per shape.

    With ``use_trend_features`` the training runs are augmented with
    per-feature slopes (F2PM's derived features) and the returned
    predictor computes the same trends online from a per-VM window.
    """
    if not instance_types:
        raise ValueError("need at least one instance type")
    rngs = RngRegistry(seed=seed)
    all_runs: list[tuple] = []
    for type_name in instance_types:
        itype = get_instance_type(type_name)
        counter = {"n": 0}

        def factory(itype=itype, counter=counter, type_name=type_name):
            counter["n"] += 1
            name = f"profile/{type_name}/{counter['n']}"
            return VirtualMachine(
                name,
                itype,
                AnomalyInjector(rngs.child(name).stream("anomalies")),
            )

        harness = ProfilingHarness(factory, sample_period_s=sample_period_s)
        all_runs.extend(
            harness.collect_runs(
                list(profile_rates),
                runs_per_rate,
                rngs.stream(f"profiling/{type_name}"),
            )
        )
    if use_trend_features:
        dataset = augment_runs_with_slopes(
            all_runs, FEATURE_NAMES, window=trend_window
        )
    else:
        dataset = Dataset.from_run_traces(all_runs, FEATURE_NAMES)
    toolchain = F2PMToolchain(max_features=8, cv_folds=3)
    trained = toolchain.train_best(
        dataset, rngs.stream("toolchain"), model_name=model_name
    )
    if use_trend_features:
        return TrendAwareRttfPredictor(trained, window=trend_window)
    return TrainedRttfPredictor(trained)


def _resolve_predictor(
    predictor: str | RttfPredictor, scenario: Scenario, seed: int
) -> RttfPredictor:
    if isinstance(predictor, RttfPredictor):
        return predictor
    if predictor == "oracle":
        return OracleRttfPredictor(
            mean_demand=MIX_SHOPPING.mean_service_demand()
        )
    return make_trained_predictor(
        scenario.instance_types(), seed=seed, model_name=predictor
    )


def _resolve_online(
    online: OnlineLifecycleConfig | None, online_retrain: int
) -> OnlineLifecycleConfig | None:
    """``online`` config wins; a bare interval builds the default config."""
    if online is not None:
        return online
    if online_retrain > 0:
        return OnlineLifecycleConfig(retrain_interval_eras=online_retrain)
    return None


def _experiment_manifest(
    scenario: Scenario,
    policy: str,
    eras: int,
    seed: int,
    era_s: float,
    beta: float,
    predictor: str | RttfPredictor,
    autoscale: bool,
    online: OnlineLifecycleConfig | None = None,
    policy_head: str | None = None,
    slo: str | None = None,
) -> RunManifest:
    config = {
        "scenario": scenario.name,
        "policy": policy,
        "eras": eras,
        "era_s": era_s,
        "beta": beta,
        "predictor": (
            predictor
            if isinstance(predictor, str)
            else type(predictor).__name__
        ),
        "autoscale": autoscale,
    }
    if online is not None:
        # only stamped when the lifecycle is on, so pre-lifecycle
        # manifest digests are unchanged
        config["online_retrain_eras"] = online.retrain_interval_eras
    if policy_head:
        # same only-when-set rule for the learned-head identity
        config["policy_head"] = policy_head
    if slo:
        # only-when-set: SLO-less manifests keep their historical digest
        config["slo"] = slo
    if scenario.leak_multiplier != 1.0:
        config["leak_multiplier"] = scenario.leak_multiplier
    return RunManifest.build(
        seed=seed,
        config=config,
        scenario=scenario.name,
        policy=policy,
        eras=eras,
    )


def run_policy_experiment(
    scenario: Scenario,
    policy: str,
    eras: int = 240,
    seed: int = 7,
    era_s: float = 30.0,
    beta: float = 0.5,
    predictor: str | RttfPredictor = "oracle",
    autoscale: bool = False,
    telemetry: Telemetry | None = None,
    online: OnlineLifecycleConfig | None = None,
    online_retrain: int = 0,
    policy_head: str | object | None = None,
    slo: str | object | None = None,
) -> ExperimentResult:
    """Run one policy on one scenario and assess it.

    Returns the traces (the series Figures 3-4 plot) plus the quantified
    policy verdict.  An enabled ``telemetry`` facade gets threaded through
    the whole deployment (loop, VMCs) and stamped with the run manifest;
    disabled or absent telemetry leaves the run bit-identical.

    ``online`` (a full :class:`OnlineLifecycleConfig`) or
    ``online_retrain`` (a bare retrain interval in eras; 0 = off)
    enables the online model lifecycle.

    ``policy_head`` plugs a learned head into the Plan phase: a head
    spec string (``"static:<policy>"``, ``"frozen:<path>"``, or a
    checkpoint path -- resolved *frozen*, eval semantics), or an already
    built :class:`~repro.policy.heads.PolicyHead` /
    :class:`~repro.policy.runtime.PolicyHeadRuntime`.  ``policy`` stays
    the hold/fallback/guard-engaged base.  The run-level head summary is
    exposed as ``result.head_stats``.

    ``slo`` (a spec string like ``"p95:0.5+dwell:120"``, or an
    :class:`~repro.slo.SloConfig`) arms the sim-side SLO controller:
    per-region ladders fed by era response times, shaping the Plan
    phase away from degraded regions.  ``None`` (the default) takes no
    SLO code path and keeps golden traces bit-identical.  The run-level
    SLO summary is exposed as ``result.slo_stats``; the deployment bill
    (always accounted) as ``result.cost_stats``.
    """
    if eras < 10:
        raise ValueError("eras must be >= 10 for a meaningful assessment")
    online_cfg = _resolve_online(online, online_retrain)
    head = policy_head
    head_label = None
    if isinstance(policy_head, str):
        from repro.policy.checkpoint import load_head

        head = load_head(policy_head, frozen=True)
        head_label = policy_head
    elif policy_head is not None:
        head_label = getattr(
            getattr(policy_head, "head", policy_head), "name", "head"
        )
    slo_label = (
        slo if isinstance(slo, str) else ("custom" if slo is not None else None)
    )
    manifest = _experiment_manifest(
        scenario, policy, eras, seed, era_s, beta, predictor, autoscale,
        online=online_cfg, policy_head=head_label, slo=slo_label,
    )
    if telemetry is not None and telemetry.enabled:
        telemetry.set_manifest(manifest)
    manager = AcmManager(
        regions=list(scenario.regions),
        policy=policy,
        seed=seed,
        era_s=era_s,
        beta=beta,
        predictor=_resolve_predictor(predictor, scenario, seed),
        overlay=scenario.build_overlay(),
        autoscale=autoscale,
        telemetry=telemetry,
        online=online_cfg,
        leak_probability=(
            DEFAULT_LEAK_PROBABILITY * scenario.leak_multiplier
        ),
        policy_head=head,
        slo=slo,
        egress_usd_per_req=scenario.egress_usd_per_req,
    )
    manager.run(eras)
    cost = manager.cost
    return ExperimentResult(
        scenario=scenario.name,
        policy=policy,
        traces=manager.traces,
        assessment=assess_policy_run(policy, manager.traces),
        eras=eras,
        era_s=era_s,
        manifest=manifest,
        online_stats=(
            manager.online_lifecycle.stats()
            if manager.online_lifecycle is not None
            else None
        ),
        head_stats=(
            manager.policy_runtime.stats()
            if manager.policy_runtime is not None
            else None
        ),
        cost_stats={
            "total_usd": cost.total_usd,
            "egress_usd": cost.egress_usd,
            "requests_served": cost.requests_served,
            # 0.0 (not inf) before any request: payloads stay JSON-clean
            "cost_per_mreq": (
                cost.cost_per_million_requests()
                if cost.requests_served
                else 0.0
            ),
        },
        slo_stats=(
            manager.slo_controller.stats()
            if manager.slo_controller is not None
            else None
        ),
    )


def run_instrumented_experiment(
    scenario: Scenario,
    policy: str,
    eras: int = 240,
    seed: int = 7,
    era_s: float = 30.0,
    beta: float = 0.5,
    predictor: str | RttfPredictor = "oracle",
    autoscale: bool = False,
    flight_capacity: int = 512,
    online: OnlineLifecycleConfig | None = None,
    online_retrain: int = 0,
) -> tuple[ExperimentResult, Telemetry]:
    """A fully observable policy run: telemetry on, control traffic real.

    Builds an enabled :class:`Telemetry`, threads it through the
    deployment, and puts the loop's report/fraction exchange on a
    :class:`~repro.overlay.reliable.ReliableChannel` via a
    :class:`~repro.core.distributed.DistributedControlPlane` -- so the
    resulting dump carries channel-send spans and plane events alongside
    the MAPE/era/rejuvenation spans.  Returns the experiment result and
    the telemetry facade (snapshot/export it for the ``repro obs`` CLI).
    """
    if eras < 10:
        raise ValueError("eras must be >= 10 for a meaningful assessment")
    telemetry = Telemetry(enabled=True, flight_capacity=flight_capacity)
    online_cfg = _resolve_online(online, online_retrain)
    manifest = _experiment_manifest(
        scenario, policy, eras, seed, era_s, beta, predictor, autoscale,
        online=online_cfg,
    )
    telemetry.set_manifest(manifest)
    manager = AcmManager(
        regions=list(scenario.regions),
        policy=policy,
        seed=seed,
        era_s=era_s,
        beta=beta,
        predictor=_resolve_predictor(predictor, scenario, seed),
        overlay=scenario.build_overlay(),
        autoscale=autoscale,
        telemetry=telemetry,
        online=online_cfg,
    )
    plane = DistributedControlPlane(
        manager.loop, reliable_control=True, telemetry=telemetry
    )
    plane.run(eras)
    result = ExperimentResult(
        scenario=scenario.name,
        policy=policy,
        traces=manager.traces,
        assessment=assess_policy_run(policy, manager.traces),
        eras=eras,
        era_s=era_s,
        manifest=manifest,
        online_stats=(
            manager.online_lifecycle.stats()
            if manager.online_lifecycle is not None
            else None
        ),
    )
    return result, telemetry


def compare_policies(
    scenario: Scenario,
    policies: tuple[str, ...] = PAPER_POLICIES,
    eras: int = 240,
    seed: int = 7,
    **kwargs,
) -> dict[str, ExperimentResult]:
    """Run several policies on the same scenario (same seed -> same load)."""
    return {
        policy: run_policy_experiment(
            scenario, policy, eras=eras, seed=seed, **kwargs
        )
        for policy in policies
    }


def paper_shape_holds(results: dict[str, ExperimentResult]) -> dict[str, bool]:
    """Check the paper's qualitative claims on a comparison run.

    Returns named booleans so benchmarks can assert and report each claim
    separately.
    """
    required = set(PAPER_POLICIES)
    if not required <= set(results):
        missing = required - set(results)
        raise ValueError(f"comparison is missing policies: {sorted(missing)}")
    a1 = results["sensible-routing"].assessment
    a2 = results["available-resources"].assessment
    a3 = results["exploration"].assessment
    return {
        # Policy 1: RMTTFs stabilise apart / do not converge.
        "policy1_diverges": a1.rmttf_spread > max(a2.rmttf_spread, 0.15),
        # Policy 2: converges, and at least as fast as Policy 3.
        "policy2_converges": a2.converged,
        "policy2_fastest": (
            a2.converged
            and (
                not a3.converged
                or a2.convergence_time_s <= a3.convergence_time_s * 1.25
            )
        ),
        # Policy 3: converges too.
        "policy3_converges": a3.converged,
        # "the quickest convergence and the most stable results are
        # provided by Policy 2" -- stability of the *RMTTF* outcome; the
        # paper itself notes P2's fractions can be slightly more
        # oscillating than P3's in the 3-region case (Sec. VI-B).
        "policy2_most_stable": a2.rmttf_spread <= a3.rmttf_spread * 1.05,
        # All policies keep the response time under the 1 s SLA.
        "sla_met_all": all(
            r.assessment.sla_met for r in results.values()
        ),
    }
