"""The paper's testbed scenarios (Sec. VI-A).

"We used three cloud regions: Region 1, hosted in the Ireland Region of
Amazon EC2, Region 2, hosted in the Frankfurt Region of Amazon EC2, and
Region 3, privately hosted in a 32-cores HP ProLiant server ... located in
Munich.  We used 6 m3.medium Amazon EC2 instances in Region 1, 12 m3.small
Amazon EC2 instances in Region 2, and 4 VMs equipped with 2 virtual CPU
cores, 1 GB of RAM, and 4 GB of virtual disk space in Region 3."

Client counts are "in the interval [16, 512], ensuring that the clients
connected to each cloud region ... were significantly different in number";
the concrete values below honour that constraint (the paper does not
publish its exact counts).

Overlay latencies approximate 2015-era inter-site RTTs: Ireland-Frankfurt
about 25 ms, Ireland-Munich about 35 ms, Frankfurt-Munich about 15 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.manager import RegionSpec
from repro.overlay.network import OverlayNetwork
from repro.topology.domains import FailureDomainTree, parse_domain_shape

#: The three policies the paper compares, in paper order.
PAPER_POLICIES: tuple[str, ...] = (
    "sensible-routing",
    "available-resources",
    "exploration",
)


@dataclass(frozen=True)
class Scenario:
    """A named deployment: region specs + overlay latencies + client load."""

    name: str
    regions: tuple[RegionSpec, ...]
    latencies_ms: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Anomaly-rate drift: multiplies the deployment's memory-leak
    #: probability (1.0 = the paper's stationary regime).  The drifted
    #: scenarios the online lifecycle and the learned policy heads are
    #: evaluated on raise this (e.g. 2.5x), aging VMs faster than the
    #: static policies and thresholds were tuned for.
    leak_multiplier: float = 1.0
    #: Inter-region egress price ($/forwarded request): cloud providers
    #: bill cross-region transfer, local traffic is free.  The default
    #: approximates $0.02/GB at ~12 KB per response.  Pure accounting
    #: (feeds the run's CostTracker), so it carries no config-digest or
    #: trace footprint.
    egress_usd_per_req: float = 2.5e-7

    def build_overlay(self) -> OverlayNetwork:
        """Instantiate the overlay for this scenario (fresh each run)."""
        net = OverlayNetwork()
        for spec in self.regions:
            net.add_node(spec.name)
        names = [s.name for s in self.regions]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                lat = self.latencies_ms.get(
                    (a, b), self.latencies_ms.get((b, a), 20.0)
                )
                net.add_link(a, b, lat)
        return net

    def instance_types(self) -> list[str]:
        """Distinct instance types in deployment order."""
        seen: list[str] = []
        for spec in self.regions:
            if spec.instance_type not in seen:
                seen.append(spec.instance_type)
        return seen

    def domain_tree(self) -> FailureDomainTree:
        """The failure-domain hierarchy the region specs describe."""
        return FailureDomainTree.from_specs(self.regions)

    def with_domains(self, descriptor: str) -> "Scenario":
        """Same deployment under a different failure-domain shape.

        ``descriptor`` is ``"flat"`` or ``"NxM"`` (N AZs with M racks
        each, applied to every region) -- the value the fleet sweep's
        ``domains`` axis carries.  ``"flat"`` returns the scenario
        unchanged, so default sweeps build identical deployments.
        """
        n_azs, racks_per_az = parse_domain_shape(descriptor)
        if (n_azs, racks_per_az) == (1, 1):
            return self
        return replace(
            self,
            regions=tuple(
                replace(spec, n_azs=n_azs, racks_per_az=racks_per_az)
                for spec in self.regions
            ),
        )

    def with_drift(self, factor: float) -> "Scenario":
        """Same deployment with the anomaly rate drifted by ``factor``.

        ``factor == 1.0`` returns the scenario unchanged, so default
        sweeps build byte-identical deployments.
        """
        if factor <= 0:
            raise ValueError(f"drift factor must be positive, got {factor}")
        if factor == 1.0:
            return self
        return replace(
            self,
            name=f"{self.name}+drift{factor:g}",
            leak_multiplier=self.leak_multiplier * factor,
        )


#: Region 1 -- Amazon EC2 Ireland, 6 x m3.medium (4 active + 2 standby).
REGION_1 = RegionSpec(
    name="region1-ireland",
    instance_type="m3.medium",
    n_vms=6,
    target_active=4,
    clients=160,
    rttf_threshold_s=240.0,
    rejuvenation_time_s=120.0,
)

#: Region 2 -- Amazon EC2 Frankfurt, 12 x m3.small (10 active + 2 standby).
REGION_2 = RegionSpec(
    name="region2-frankfurt",
    instance_type="m3.small",
    n_vms=12,
    target_active=10,
    clients=320,
    rttf_threshold_s=240.0,
    rejuvenation_time_s=120.0,
)

#: Region 3 -- private HP ProLiant in Munich, 4 VMs (3 active + 1 standby).
REGION_3 = RegionSpec(
    name="region3-munich",
    instance_type="private.small",
    n_vms=4,
    target_active=3,
    clients=64,
    rttf_threshold_s=240.0,
    rejuvenation_time_s=120.0,
)

_LATENCIES = {
    ("region1-ireland", "region2-frankfurt"): 25.0,
    ("region1-ireland", "region3-munich"): 35.0,
    ("region2-frankfurt", "region3-munich"): 15.0,
}


def two_region_scenario() -> Scenario:
    """Figure 3's deployment: Regions 1 (Ireland) and 3 (Munich)."""
    return Scenario(
        name="fig3-two-regions",
        regions=(REGION_1, REGION_3),
        latencies_ms={
            k: v
            for k, v in _LATENCIES.items()
            if "region2-frankfurt" not in k
        },
    )


def three_region_scenario() -> Scenario:
    """Figure 4's deployment: all three regions."""
    return Scenario(
        name="fig4-three-regions",
        regions=(REGION_1, REGION_2, REGION_3),
        latencies_ms=dict(_LATENCIES),
    )
