"""Convergence and stability metrics for policy assessment.

The paper's evaluation is qualitative ("the values of the RMTTF ... do not
converge", "fi shows less-oscillating values", "Policy 2 converges more
quickly").  To *assert* those claims in benchmarks we quantify them:

* **RMTTF spread** -- relative gap between regions' steady-state RMTTF
  levels; convergence means spread near zero.
* **Convergence time** -- first era after which all region RMTTFs stay
  within a tolerance band of their common mean forever.
* **Oscillation index** -- mean absolute step of the fraction series,
  normalised (from :meth:`repro.sim.tracing.TraceSeries.oscillation_index`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.tracing import TraceRecorder, TraceSeries


def rmttf_spread(series: dict[str, TraceSeries], tail: float = 0.3) -> float:
    """Relative spread of steady-state RMTTF levels across regions.

    ``(max_i m_i - min_i m_i) / mean_i m_i`` where ``m_i`` is region i's
    mean over the last ``tail`` of the run.  0 = perfectly converged.
    """
    if not series:
        raise ValueError("no series given")
    means = np.array([s.tail_fraction(tail).mean() for s in series.values()])
    center = float(means.mean())
    if center <= 0:
        raise ValueError("non-positive steady-state RMTTF")
    return float((means.max() - means.min()) / center)


def convergence_time(
    series: dict[str, TraceSeries],
    tolerance: float = 0.15,
    allowed_violation_rate: float = 0.05,
    min_window: int = 10,
) -> float:
    """First time after which all regions stay within the tolerance band.

    At each sample instant the band is
    ``|rmttf_i(t) - mean(t)| <= tolerance * mean(t)``; the convergence time
    is the earliest ``t`` such that at most ``allowed_violation_rate`` of
    the *subsequent* samples leave the band (a single stochastic excursion
    must not undo convergence), with at least ``min_window`` samples left
    to judge on.  Returns ``inf`` when the run never converges (the paper's
    Policy-1 outcome).
    """
    if not series:
        raise ValueError("no series given")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if not 0.0 <= allowed_violation_rate < 1.0:
        raise ValueError("allowed_violation_rate must be in [0, 1)")
    its = list(series.values())
    n = min(len(s) for s in its)
    if n < min_window:
        return float("inf")
    # align on the first n samples (all series share the era grid)
    values = np.vstack([s.values[:n] for s in its])
    times = its[0].times[:n]
    mean = values.mean(axis=0)
    mean_safe = np.maximum(mean, 1e-12)
    within = np.all(
        np.abs(values - mean) <= tolerance * mean_safe, axis=0
    )
    # suffix violation counts: viol[i] = violations among samples i..n-1
    viol_suffix = np.cumsum((~within)[::-1])[::-1]
    remaining = n - np.arange(n)
    ok = (viol_suffix <= allowed_violation_rate * remaining) & (
        remaining >= min_window
    )
    candidates = np.flatnonzero(ok)
    if candidates.size == 0:
        return float("inf")
    return float(times[candidates[0]])


def mean_oscillation(series: dict[str, TraceSeries], tail: float = 0.5) -> float:
    """Average oscillation index of the given series over their tail."""
    if not series:
        raise ValueError("no series given")
    return float(
        np.mean([s.tail_fraction(tail).oscillation_index() for s in series.values()])
    )


@dataclass(frozen=True, slots=True)
class PolicyAssessment:
    """Quantified version of the paper's qualitative policy verdicts."""

    policy: str
    rmttf_spread: float
    convergence_time_s: float
    fraction_oscillation: float
    rmttf_oscillation: float
    mean_response_time_s: float
    max_response_time_s: float
    sla_threshold_s: float
    total_rejuvenations: float
    total_failures: float

    @property
    def converged(self) -> bool:
        """Whether the RMTTF band was ever permanently entered."""
        return np.isfinite(self.convergence_time_s)

    @property
    def sla_met(self) -> bool:
        """Paper's Sec. VI-B check: response time below the 1 s threshold."""
        return self.mean_response_time_s < self.sla_threshold_s

    def row(self) -> str:
        """One formatted table row (benchmark reporting)."""
        conv = (
            f"{self.convergence_time_s:9.0f}s"
            if self.converged
            else "    never"
        )
        return (
            f"{self.policy:<22} spread={self.rmttf_spread:6.3f} "
            f"conv={conv} f-osc={self.fraction_oscillation:6.4f} "
            f"rt={self.mean_response_time_s * 1000:6.1f}ms "
            f"rejuv={self.total_rejuvenations:5.0f}"
        )


def assess_policy_run(
    policy_name: str,
    traces: TraceRecorder,
    tail: float = 0.3,
    convergence_tolerance: float = 0.15,
    sla_threshold_s: float = 1.0,
    settle_fraction: float = 0.2,
) -> PolicyAssessment:
    """Build a :class:`PolicyAssessment` from a control-loop trace set.

    ``settle_fraction`` of the initial samples is discarded before the
    convergence analysis (the EWMA warm-up would otherwise dominate).
    """
    rmttf = {
        name: s.tail_fraction(1.0 - settle_fraction)
        for name, s in traces.matching("rmttf/").items()
    }
    fractions = {
        name: s.tail_fraction(1.0 - settle_fraction)
        for name, s in traces.matching("fraction/").items()
    }
    if not rmttf:
        raise ValueError("traces contain no rmttf/* series")
    response = traces.series("response_time")
    rejuv = traces.series("rejuvenations")
    failures = traces.series("failures")
    return PolicyAssessment(
        policy=policy_name,
        rmttf_spread=rmttf_spread(rmttf, tail),
        convergence_time_s=convergence_time(rmttf, convergence_tolerance),
        fraction_oscillation=mean_oscillation(fractions, tail=0.5),
        rmttf_oscillation=mean_oscillation(rmttf, tail=0.5),
        mean_response_time_s=response.mean(),
        max_response_time_s=response.max(),
        sla_threshold_s=sla_threshold_s,
        total_rejuvenations=float(rejuv.values.sum()),
        total_failures=float(failures.values.sum()),
    )
