"""Autoscaling demo: ACM grows the VM pool when the workload surges.

Sec. V: "when the global workload increases, the failure rate of VMs in one
or multiple cloud regions may increase, so that excessive performance loss
and low availability may be experienced by clients.  As a countermeasure
..., ACM can proactively change the number of active VMs in each cloud
region."

The demo starts a single region with 2 ACTIVE VMs and a modest client
population, then triples the clients mid-run.  The autoscaler reacts to the
falling RMTTF by activating standby VMs.

Run with::

    python examples/autoscaling_demo.py
"""

from repro.core import AcmManager, AutoscaleConfig, RegionSpec


def main() -> None:
    manager = AcmManager(
        regions=[
            RegionSpec(
                "elastic",
                "private.small",
                n_vms=10,
                target_active=2,
                clients=80,
                rttf_threshold_s=60.0,
                rejuvenation_time_s=60.0,
            ),
        ],
        policy="uniform",  # single region: the fraction is trivially 1.0
        seed=11,
        autoscale=True,
        autoscale_config=AutoscaleConfig(
            response_time_threshold_s=0.8,
            rmttf_low_s=300.0,
            rmttf_high_s=2500.0,
            cooldown_eras=3,
        ),
    )
    loop = manager.loop
    pop = loop.populations["elastic"]

    print("phase 1: 80 clients, 2 active VMs")
    print(f"  {'era':>4} {'clients':>8} {'active':>7} {'RMTTF':>8} {'resp':>8}")

    def report(s):
        print(
            f"  {s.era:4d} {pop.n_clients:8d} "
            f"{s.active_vms['elastic']:7d} {s.rmttf['elastic']:7.0f}s "
            f"{s.response_time_s * 1000:6.1f}ms"
        )

    for _ in range(30):
        s = loop.run_era()
        if s.era % 5 == 0:
            report(s)

    print("\nphase 2: workload surge to 240 clients")
    loop.populations["elastic"] = pop.scaled(240)
    pop = loop.populations["elastic"]
    for _ in range(60):
        s = loop.run_era()
        if s.era % 5 == 0:
            report(s)

    scaler = loop.autoscaler
    print(
        f"\nautoscaler actions: +{scaler.scale_up_count} VMs, "
        f"-{scaler.scale_down_count} VMs"
    )
    print(f"final ACTIVE pool: {s.active_vms['elastic']} VMs")


if __name__ == "__main__":
    main()
