"""Figure 3 reproduction: the two-region experiment.

"The first experiment evaluates all the three policies on a
geographically-distributed hybrid cloud environment composed of Region 1
and Region 3, namely using Amazon VMs in Ireland and privately-hosted VMs
in Munich.  For each policy, Figure 3 shows the variation over time of:
a) the RMTTF of each region, b) the calculated fraction f_i for each
region, and c) the average response time measured by all clients."
(Sec. VI-B)
"""

from __future__ import annotations

from repro.experiments.reporting import assessment_table, render_series
from repro.experiments.runner import (
    ExperimentResult,
    compare_policies,
    paper_shape_holds,
)
from repro.experiments.scenarios import PAPER_POLICIES, two_region_scenario


def run_figure3(
    eras: int = 240,
    seed: int = 7,
    predictor: str = "oracle",
    online_retrain: int = 0,
) -> dict[str, ExperimentResult]:
    """Run all three policies on the Fig. 3 deployment.

    Returns policy name -> result; each result's traces contain the three
    rows the figure plots (``rmttf/*``, ``fraction/*``,
    ``response_time``).  ``online_retrain`` (eras between retrains; 0 =
    off) enables the online model lifecycle in every run.
    """
    return compare_policies(
        two_region_scenario(),
        policies=PAPER_POLICIES,
        eras=eras,
        seed=seed,
        predictor=predictor,
        online_retrain=online_retrain,
    )


def report_figure3(results: dict[str, ExperimentResult]) -> str:
    """Render the full Fig. 3 reproduction as text."""
    blocks = ["=== Figure 3: two regions (Ireland m3.medium / Munich private) ==="]
    for policy, result in results.items():
        blocks.append(f"\n--- {policy} ---")
        blocks.append(
            render_series(result.traces, "rmttf/", "row 1: RMTTF (s)")
        )
        blocks.append(
            render_series(
                result.traces, "fraction/", "row 2: workload fraction f_i"
            )
        )
        blocks.append(
            render_series(
                result.traces,
                "response_time",
                "row 3: client response time (ms)",
                scale=1000.0,
                unit="ms",
            )
        )
    blocks.append("\n" + assessment_table([r.assessment for r in results.values()]))
    checks = paper_shape_holds(results)
    blocks.append(
        "paper-shape checks: "
        + ", ".join(f"{k}={'PASS' if v else 'FAIL'}" for k, v in checks.items())
    )
    return "\n".join(blocks)


if __name__ == "__main__":
    print(report_figure3(run_figure3()))
