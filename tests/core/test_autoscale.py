"""Tests for reactive VM-pool resizing (Sec. V)."""

import pytest

from repro.core import Autoscaler, AutoscaleConfig
from repro.pcam import OracleRttfPredictor, VirtualMachineController, VmcConfig, VmState
from repro.pcam.vmc import EraReport

from ..pcam.conftest import build_vm
from repro.sim import RngRegistry


@pytest.fixture
def rngs():
    return RngRegistry(seed=3)


def make_vmc(rngs, n_vms=6, target=2):
    vms = [build_vm(rngs, name=f"as/vm{i}") for i in range(n_vms)]
    return VirtualMachineController(
        "as", vms, OracleRttfPredictor(), VmcConfig(target_active=target)
    )


def report(n_active=2, n_standby=3, response_time_s=0.1):
    return EraReport(
        region="as",
        time=0.0,
        last_rmttf=500.0,
        response_time_s=response_time_s,
        n_active=n_active,
        n_standby=n_standby,
        n_rejuvenating=0,
        n_failed=0,
        requests_served=100,
        rejuvenations_triggered=0,
        failures=0,
    )


class TestConfig:
    def test_defaults_valid(self):
        AutoscaleConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(response_time_threshold_s=0.0),
            dict(rmttf_low_s=-1.0),
            dict(rmttf_low_s=100.0, rmttf_high_s=100.0),
            dict(cooldown_eras=-1),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            AutoscaleConfig(**kw)


class TestExpectedRmttf:
    def test_mean_field_projection(self):
        a = Autoscaler()
        assert a.expected_rmttf_after(400.0, 4, +1) == pytest.approx(500.0)
        assert a.expected_rmttf_after(400.0, 4, -1) == pytest.approx(300.0)

    def test_validation(self):
        a = Autoscaler()
        with pytest.raises(ValueError):
            a.expected_rmttf_after(1.0, 0, 1)
        with pytest.raises(ValueError):
            a.expected_rmttf_after(1.0, 1, -1)


class TestDecisions:
    def test_grows_on_response_time_breach(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(AutoscaleConfig(response_time_threshold_s=0.5))
        delta = a.decide(vmc, report(response_time_s=0.9), rmttf=1000.0)
        assert delta == +1
        assert a.scale_up_count == 1

    def test_grows_on_low_rmttf(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(AutoscaleConfig(rmttf_low_s=300.0))
        assert a.decide(vmc, report(), rmttf=100.0) == +1

    def test_no_growth_without_standby(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler()
        assert a.decide(vmc, report(n_standby=0, response_time_s=2.0), 100.0) == 0

    def test_shrinks_on_high_rmttf_with_headroom(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(
            AutoscaleConfig(rmttf_high_s=1000.0, response_time_threshold_s=0.8)
        )
        delta = a.decide(vmc, report(n_active=4, response_time_s=0.1), 5000.0)
        assert delta == -1
        assert a.scale_down_count == 1

    def test_never_shrinks_when_response_time_tight(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(
            AutoscaleConfig(rmttf_high_s=1000.0, response_time_threshold_s=0.8)
        )
        # 0.5 > threshold/2 -> no headroom
        assert a.decide(vmc, report(n_active=4, response_time_s=0.5), 5000.0) == 0

    def test_never_shrinks_below_one(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(AutoscaleConfig(rmttf_high_s=1000.0))
        assert a.decide(vmc, report(n_active=1, response_time_s=0.01), 5000.0) == 0

    def test_shrink_rejected_if_projection_violates_floor(self, rngs):
        vmc = make_vmc(rngs)
        cfg = AutoscaleConfig(rmttf_low_s=900.0, rmttf_high_s=1000.0)
        a = Autoscaler(cfg)
        # projected 1100 * 1/2 = 550 < low threshold: refuse
        assert a.decide(vmc, report(n_active=2, response_time_s=0.01), 1100.0) == 0

    def test_cooldown_blocks_consecutive_actions(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(AutoscaleConfig(cooldown_eras=2, rmttf_low_s=300.0))
        assert a.decide(vmc, report(), rmttf=100.0) == +1
        assert a.decide(vmc, report(), rmttf=100.0) == 0
        assert a.decide(vmc, report(), rmttf=100.0) == 0
        assert a.decide(vmc, report(), rmttf=100.0) == +1

    def test_apply_mutates_pool(self, rngs):
        vmc = make_vmc(rngs, target=2)
        a = Autoscaler(AutoscaleConfig(rmttf_low_s=300.0, cooldown_eras=0))
        delta = a.apply(vmc, report(), rmttf=100.0)
        assert delta == +1
        assert vmc.target_active == 3
        assert len(vmc.vms_in(VmState.ACTIVE)) == 3


class TestPredictedResponseTimeTrigger:
    """The Sec. V 'predicted response time over threshold' path."""

    def test_attach_validation(self, rngs):
        a = Autoscaler()
        with pytest.raises(ValueError):
            a.attach_rt_prediction({"as": 25.0}, era_s=0.0)

    def test_predicted_violation_triggers_growth(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(
            AutoscaleConfig(
                response_time_threshold_s=0.5,
                rmttf_low_s=1.0,  # disable the RMTTF trigger
                cooldown_eras=0,
            )
        )
        a.attach_rt_prediction({"as": 25.0}, era_s=30.0)
        # warm the model with eras whose measured rt stays *below* the
        # threshold but climbs steeply with load
        for rate in (10.0, 20.0, 30.0, 40.0, 45.0, 48.0) * 3:
            rt = 0.01 * (1.0 + (rate / 50.0) ** 2 * 40.0)  # convex growth
            rep = report(n_active=2, response_time_s=min(rt, 0.45))
            rep = EraReport(
                region="as", time=0.0, last_rmttf=500.0,
                response_time_s=min(rt, 0.45), n_active=2, n_standby=3,
                n_rejuvenating=0, n_failed=0,
                requests_served=int(rate * 30.0),
                rejuvenations_triggered=0, failures=0,
            )
            delta = a.decide(vmc, rep, rmttf=5000.0)
        # by the last (near-saturation) era the *forecast* crosses the
        # threshold even though every measurement stayed below it
        assert a.scale_up_count >= 1

    def test_without_attachment_behaviour_unchanged(self, rngs):
        vmc = make_vmc(rngs)
        a = Autoscaler(AutoscaleConfig(rmttf_low_s=1.0, cooldown_eras=0))
        for _ in range(20):
            delta = a.decide(vmc, report(response_time_s=0.1), rmttf=1000.0)
            assert delta == 0

    def test_headroom_factor_validated(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(headroom_factor=0.9)
