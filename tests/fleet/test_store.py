"""ResultStore hygiene: atomicity, corruption handling, gc."""

import json
import os

from repro.fleet.jobs import JobSpec
from repro.fleet.store import ResultStore


def make_job(n: int = 0) -> JobSpec:
    return JobSpec(
        kind="synthetic",
        scenario="sleep",
        policy="",
        load=0.0,
        seed=100 + n,
        replicate=n,
        eras=10,
    )


def make_doc(job: JobSpec) -> dict:
    return {
        "digest": job.digest,
        "job": job.config(),
        "payload": {"value": 1.25, "seed": job.seed},
        "manifest": job.manifest().as_dict(),
    }


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        job = make_job()
        store.put(job.digest, make_doc(job))
        doc = store.get(job.digest)
        assert doc is not None
        assert doc["payload"] == {"value": 1.25, "seed": job.seed}
        assert job.digest in store
        assert len(store) == 1

    def test_missing_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 16) is None

    def test_float_payloads_bit_exact(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        payload = {"x": 0.1 + 0.2, "y": 1e-308, "inf": float("inf")}
        doc = make_doc(job)
        doc["payload"] = payload
        store.put(job.digest, doc)
        assert store.get(job.digest)["payload"] == payload


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        for n in range(5):
            job = make_job(n)
            store.put(job.digest, make_doc(job))
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []
        assert len(store) == 5

    def test_overwrite_replaces_atomically(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        doc = make_doc(job)
        store.put(job.digest, doc)
        doc2 = dict(doc, payload={"value": 2.0})
        store.put(job.digest, doc2)
        assert store.get(job.digest)["payload"] == {"value": 2.0}
        assert len(store) == 1


class TestCorruption:
    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        store.path_for(job.digest).write_text('{"payload": {"half', "utf-8")
        assert store.get(job.digest) is None

    def test_mislabeled_entry_is_a_miss(self, tmp_path):
        """An entry whose embedded job doesn't hash to its filename must
        not satisfy a resume lookup."""
        store = ResultStore(tmp_path)
        a, b = make_job(1), make_job(2)
        store.put(a.digest, make_doc(a))
        os.rename(store.path_for(a.digest), store.path_for(b.digest))
        assert store.get(b.digest) is None

    def test_payload_missing_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        store.path_for(job.digest).write_text(
            json.dumps({"job": job.config()}), "utf-8"
        )
        assert store.get(job.digest) is None


class TestGc:
    def test_gc_prunes_only_unknown_digests(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = [make_job(n) for n in range(4)]
        for job in jobs:
            store.put(job.digest, make_doc(job))
        keep = {jobs[0].digest, jobs[1].digest}
        pruned = store.gc(keep=keep)
        assert sorted(pruned) == sorted(
            j.digest for j in jobs[2:]
        )
        assert set(store.digests()) == keep

    def test_gc_sweeps_stray_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        stray = tmp_path / ".deadbeef.123.tmp"
        stray.write_text("partial", "utf-8")
        store.gc(keep=[])
        assert not stray.exists()

    def test_gc_with_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "fresh")
        assert store.gc(keep=["abc"]) == []
