"""Per-domain health aggregation for the control plane.

:class:`DomainHealthTracker` is the read side of the failure-domain
hierarchy: chaos primitives mark domains degraded when they inject a
correlated fault and clear them on heal, while the campaign loop feeds it
per-rack ACTIVE counts each era.  From those two inputs it derives

* which racks the rejuvenation scheduler and balancer should avoid
  (:meth:`degraded_racks`),
* a per-domain availability timeline (fraction of observed eras with at
  least one ACTIVE VM in the domain) for campaign reports, and
* the region filter that feeds the existing degradation ladder: a region
  whose every rack is degraded stops counting as "reporting", so the
  :class:`~repro.core.degradation.DegradationTracker` walks down its
  normal -> hold -> fallback ladder without any new mechanism.

Telemetry (``fd_*`` metrics and flight events) follows the repo-wide
gating pattern: when telemetry is absent or disabled the tracker holds a
``None`` handle and touches nothing -- bit-invisible by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.topology.domains import FailureDomainTree

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry


class DomainHealthTracker:
    """Tracks fault marks and availability per failure domain.

    Parameters
    ----------
    tree:
        The deployment's failure-domain hierarchy.
    telemetry:
        Optional telemetry facade; when enabled the tracker maintains
        ``fd_domain_faults_total`` counters, the
        ``fd_domain_availability`` gauge, and ``fd.fault`` / ``fd.heal``
        flight events.
    """

    def __init__(
        self,
        tree: FailureDomainTree,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.tree = tree
        #: Cumulative fault count per domain path (fault-log style).
        self.fault_counts: dict[str, int] = {}
        self._degraded: set[str] = set()
        self._healthy_eras: dict[str, int] = {
            d: 0 for d in tree.domains()
        }
        self._timeline: dict[str, list[bool]] = {
            d: [] for d in tree.domains()
        }
        self._observed_eras = 0
        self._obs = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )

    # ------------------------------------------------------------------ #
    # fault marks (written by the chaos engine)
    # ------------------------------------------------------------------ #

    def record_fault(self, domain: str, kind: str) -> None:
        """Mark a domain degraded after a correlated fault hits it."""
        self.tree.racks_in(domain)  # validate the path
        self.fault_counts[domain] = self.fault_counts.get(domain, 0) + 1
        self._degraded.add(domain)
        if self._obs is not None:
            self._obs.counter(
                "fd_domain_faults_total", domain=domain, kind=kind
            ).inc()
            self._obs.event("fd.fault", domain=domain, fault=kind)

    def clear_fault(self, domain: str) -> bool:
        """Clear a domain's degraded mark; returns False if not marked."""
        if domain not in self._degraded:
            return False
        self._degraded.discard(domain)
        if self._obs is not None:
            self._obs.event("fd.heal", domain=domain)
        return True

    def degraded_domains(self) -> tuple[str, ...]:
        """Currently marked domains, sorted for determinism."""
        return tuple(sorted(self._degraded))

    def degraded_racks(self) -> set[int]:
        """Rack ids covered by any currently degraded domain."""
        racks: set[int] = set()
        for domain in self._degraded:
            racks.update(self.tree.racks_in(domain))
        return racks

    def is_degraded(self, domain: str) -> bool:
        """True when the domain or any of its ancestors is marked."""
        parts = domain.split("/")
        return any(
            "/".join(parts[: i + 1]) in self._degraded
            for i in range(len(parts))
        )

    # ------------------------------------------------------------------ #
    # availability (written by the campaign / control loop)
    # ------------------------------------------------------------------ #

    def observe_era(
        self, era: int, rack_active: Mapping[int, int]
    ) -> None:
        """Record one era's per-rack ACTIVE counts.

        A domain counts *healthy* this era when at least one of its racks
        has an ACTIVE VM -- the same "can it serve at all" criterion the
        campaign's service-health check applies per region.
        """
        self._observed_eras += 1
        for domain in self._timeline:
            active = sum(
                rack_active.get(rid, 0)
                for rid in self.tree.racks_in(domain)
            )
            healthy = active > 0
            self._timeline[domain].append(healthy)
            if healthy:
                self._healthy_eras[domain] += 1
            if self._obs is not None:
                self._obs.gauge(
                    "fd_domain_availability", domain=domain
                ).set(self.availability(domain))

    def availability(self, domain: str) -> float:
        """Fraction of observed eras the domain was healthy (1.0 if none)."""
        if domain not in self._healthy_eras:
            raise KeyError(f"unknown failure domain {domain!r}")
        if self._observed_eras == 0:
            return 1.0
        return self._healthy_eras[domain] / self._observed_eras

    def timeline(self, domain: str) -> list[bool]:
        """Per-era healthy flags for a domain (copy)."""
        return list(self._timeline[domain])

    @property
    def observed_eras(self) -> int:
        """Number of eras fed through :meth:`observe_era`."""
        return self._observed_eras

    # ------------------------------------------------------------------ #
    # degradation-ladder feed
    # ------------------------------------------------------------------ #

    def reporting_regions(self, reported: set[str]) -> set[str]:
        """Filter a reported-region set by domain health.

        A region whose *every* rack sits under a degraded domain is
        dropped from the set, so the degradation ladder sees it as
        silent and ages it toward hold/fallback -- no new ladder states
        needed.  Regions with at least one healthy rack pass through.
        """
        degraded = self.degraded_racks()
        return {
            region
            for region in reported
            if region not in self.tree.regions
            or any(
                rid not in degraded
                for rid in self.tree.racks_in(region)
            )
        }
