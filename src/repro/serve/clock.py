"""Wall-clock implementation of the :class:`~repro.sim.clock.Clock` protocol.

:class:`WallClock` keeps the :class:`~repro.sim.engine.Simulator` event
heap -- same ``(time, priority, seq)`` ordering, same pooled fast path,
same periodic re-arming -- but dispatches it against *real elapsed time*
from inside an asyncio event loop.  Where the simulator jumps its clock
to the next event, the wall clock ``await``-sleeps until that event's
time arrives (or a new, earlier event is scheduled, which wakes the
dispatch loop).

Time is measured in *clock seconds*: ``speed`` clock seconds elapse per
wall second (default 1.0).  Tests run compressed deployments -- e.g.
``speed=50`` makes a 30 s control era tick every 0.6 wall seconds --
without touching any timer constant in the code under test.

The dispatch loop is single-threaded: HTTP handlers, era ticks, and
retry timers all run on the one asyncio loop, so no locking is needed
anywhere in the control plane (mirroring the simulator's run loop).
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import TYPE_CHECKING, Callable

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventState

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry


class WallClock(Simulator):
    """The simulator's event heap, driven by real time under asyncio.

    Parameters
    ----------
    speed:
        Clock seconds per wall second (> 0).  1.0 is real time; larger
        values compress -- timers, eras, and backoff ladders all scale
        together because every component reads the same clock.
    telemetry:
        Optional telemetry facade; the metric clock is pointed at
        :attr:`now` so spans and events carry wall-derived stamps.
    time_fn:
        Monotonic wall-time source (injectable for tests); defaults to
        :func:`time.monotonic`.
    """

    def __init__(
        self,
        speed: float = 1.0,
        telemetry: "Telemetry | None" = None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        super().__init__(start_time=0.0, telemetry=telemetry)
        self.speed = float(speed)
        self._time_fn = time_fn
        self._origin = time_fn()
        self._waiter: asyncio.Event | None = None
        if telemetry is not None and telemetry.enabled:
            # the base class pinned the metric clock to the lagging heap
            # time; re-point it at continuous wall-derived time
            telemetry.set_clock(lambda: self.now)

    # ------------------------------------------------------------------ #
    # time
    # ------------------------------------------------------------------ #

    def elapsed(self) -> float:
        """Clock seconds since construction (continuous, wall-derived)."""
        return (self._time_fn() - self._origin) * self.speed

    @property
    def now(self) -> float:
        """Current clock time.

        The max of the heap clock (last dispatched event time) and real
        elapsed time, so ``now`` is monotonic even while the dispatch
        loop replays a burst of due events whose stamps lag the wall.
        """
        elapsed = self.elapsed()
        return self._now if self._now > elapsed else elapsed

    def _sync(self) -> None:
        """Advance the heap clock to real elapsed time."""
        elapsed = self.elapsed()
        if elapsed > self._now:
            self._now = elapsed

    # ------------------------------------------------------------------ #
    # scheduling -- sync to the wall first, then wake the dispatch loop
    # (a handler may schedule an event earlier than the current sleep)
    # ------------------------------------------------------------------ #

    def schedule_at(self, time, action, *, priority=0, label=""):
        self._sync()
        if time < self._now:
            # A deadline computed moments ago can land microscopically in
            # the past by the time it is scheduled; on a wall clock that
            # means "due now", not a programming error like in the DES.
            time = self._now
        event = super().schedule_at(
            time, action, priority=priority, label=label
        )
        self._wake()
        return event

    def schedule_pooled(self, delay, action, args=()):
        self._sync()
        super().schedule_pooled(delay, action, args)
        self._wake()

    # schedule_after / schedule_periodic delegate to schedule_at and the
    # periodic re-arm pushes with event.time = _now + period, which is
    # correct under _sync(); no overrides needed.

    def stop(self) -> None:
        super().stop()
        self._wake()

    def _wake(self) -> None:
        if self._waiter is not None:
            self._waiter.set()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _peek(self) -> Event | None:
        """Next non-cancelled event, discarding lazy-cancelled heads."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head.state is EventState.CANCELLED:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            return head
        return None

    async def run_for(self, duration_s: float | None = None) -> int:
        """Dispatch events against real time for ``duration_s`` clock
        seconds (forever when ``None``); returns events dispatched.

        Exits early when :meth:`stop` is called.  Between events the
        coroutine sleeps, yielding the asyncio loop to HTTP handlers and
        anything else sharing it; scheduling a new event wakes it.
        """
        self._stopped = False
        if self._waiter is None:
            self._waiter = asyncio.Event()
        self._sync()
        end = None if duration_s is None else self._now + float(duration_s)
        dispatched = 0
        while not self._stopped:
            self._sync()
            head = self._peek()
            while (
                head is not None
                and head.time <= self._now
                and (end is None or head.time <= end)
            ):
                self.step()
                dispatched += 1
                if self._stopped:
                    return dispatched
                head = self._peek()
            if end is not None and self.elapsed() >= end:
                self._now = max(self._now, end)
                return dispatched
            target = head.time if head is not None else None
            if end is not None and (target is None or target > end):
                target = end
            self._waiter.clear()
            if target is None:
                # idle: no pending events, no deadline -- sleep until a
                # schedule or stop() wakes us
                await self._waiter.wait()
                continue
            wait_wall = (target - self.elapsed()) / self.speed
            if wait_wall > 0:
                try:
                    await asyncio.wait_for(
                        self._waiter.wait(), timeout=wait_wall
                    )
                except asyncio.TimeoutError:
                    pass
        return dispatched


#: Alias used in async-facing signatures; same class.
AsyncClock = WallClock
