"""Closed-loop emulated-browser populations.

TPC-W drives the system with *emulated browsers* (EBs): each EB issues a
request, waits for the response, thinks for an exponentially distributed
time (spec mean 7 s), and repeats.  The offered load of ``N`` EBs facing
mean response time ``R`` is the classic closed-loop rate ``N / (Z + R)``
with think time ``Z`` -- the form the fluid simulation uses.  The DES path
samples individual think times.

The paper varies "the number of active clients (towards each cloud region)
in the interval [16, 512], ensuring that the clients connected to each
cloud region ... were significantly different in number" (Sec. VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.tpcw import MIX_SHOPPING, RequestMix

#: TPC-W specification mean think time (seconds).
DEFAULT_THINK_TIME_S = 7.0

#: Paper's client-count interval per region.
CLIENT_RANGE = (16, 512)


def closed_loop_rate(
    n_clients: int, think_time_s: float, response_time_s: float
) -> float:
    """Steady-state request rate of a closed-loop population.

    ``lambda = N / (Z + R)`` -- interactive response time law rearranged.
    """
    if n_clients < 0:
        raise ValueError("n_clients must be >= 0")
    if think_time_s <= 0:
        raise ValueError("think_time_s must be positive")
    if response_time_s < 0:
        raise ValueError("response_time_s must be >= 0")
    return n_clients / (think_time_s + response_time_s)


@dataclass
class BrowserPopulation:
    """A population of emulated browsers attached to one cloud region.

    Parameters
    ----------
    n_clients:
        Number of EBs; the paper uses values in [16, 512].
    mix:
        TPC-W interaction mix driving the request classes.
    think_time_s:
        Mean exponential think time.
    name:
        Label used in traces ("clients@region1").
    """

    n_clients: int
    mix: RequestMix = MIX_SHOPPING
    think_time_s: float = DEFAULT_THINK_TIME_S
    name: str = "clients"

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            raise ValueError("n_clients must be >= 0")
        if self.think_time_s <= 0:
            raise ValueError("think_time_s must be positive")

    def offered_rate(self, response_time_s: float = 0.0) -> float:
        """Closed-loop request rate given the current mean response time."""
        return closed_loop_rate(
            self.n_clients, self.think_time_s, response_time_s
        )

    def sample_think_times(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw ``size`` exponential think times (DES path)."""
        if size < 0:
            raise ValueError("size must be >= 0")
        return rng.exponential(self.think_time_s, size=size)

    def scaled(self, n_clients: int) -> "BrowserPopulation":
        """Copy with a different client count (workload ramps)."""
        return BrowserPopulation(
            n_clients=n_clients,
            mix=self.mix,
            think_time_s=self.think_time_s,
            name=self.name,
        )


def heterogeneous_populations(
    counts: dict[str, int],
    mix: RequestMix = MIX_SHOPPING,
    think_time_s: float = DEFAULT_THINK_TIME_S,
) -> dict[str, BrowserPopulation]:
    """Build one population per region from a count mapping.

    Validates that counts honour the paper's [16, 512] interval and that at
    least two regions differ (the paper requires "significantly different"
    per-region client counts -- enforced loosely as *not all equal* when
    more than one region is given).
    """
    lo, hi = CLIENT_RANGE
    for region, n in counts.items():
        if not lo <= n <= hi:
            raise ValueError(
                f"region {region!r}: {n} clients outside paper range "
                f"[{lo}, {hi}]"
            )
    if len(counts) > 1 and len(set(counts.values())) == 1:
        raise ValueError(
            "paper scenario requires significantly different per-region "
            "client counts; got identical counts"
        )
    return {
        region: BrowserPopulation(
            n_clients=n,
            mix=mix,
            think_time_s=think_time_s,
            name=f"clients@{region}",
        )
        for region, n in counts.items()
    }
