"""Chaos engineering for the multi-cloud control plane.

This package injects the failures the paper's architecture claims to
tolerate -- so the repository can *test* that claim instead of asserting
it.  Everything is seeded and driven off the simulator clock: a campaign
is a pure function of ``(topology, workload, seed)`` and replays
bit-identically.

* :mod:`repro.chaos.engine` -- :class:`ChaosEngine`: schedule- and
  rate-driven fault primitives with a replayable fault log;
* :mod:`repro.chaos.lossy` -- :class:`LossyBus`: probabilistic message
  loss and latency jitter on the controller bus;
* :mod:`repro.chaos.predictor` -- :class:`CorruptiblePredictor`:
  NaN/stale/zero RTTF-prediction faults.

The canned resilience campaigns built from these primitives live in
:mod:`repro.experiments.resilience`.
"""

from repro.chaos.engine import ChaosEngine, FaultEvent
from repro.chaos.lossy import LossyBus
from repro.chaos.predictor import MODES, CorruptiblePredictor

__all__ = [
    "ChaosEngine",
    "FaultEvent",
    "LossyBus",
    "CorruptiblePredictor",
    "MODES",
]
