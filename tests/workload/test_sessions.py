"""Tests for the TPC-W Markov session model."""

import numpy as np
import pytest

from repro.workload.sessions import (
    STATES,
    SessionChain,
    browse_fraction_of,
    calibrate_order_boost,
    stationary_distribution,
    transition_matrix,
)
from repro.workload.tpcw import BROWSE_CLASS, RequestType


class TestTransitionMatrix:
    def test_row_stochastic(self):
        P = transition_matrix()
        assert P.shape == (14, 14)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)

    def test_order_boost_shifts_mass(self):
        light = browse_fraction_of(transition_matrix(0.2))
        heavy = browse_fraction_of(transition_matrix(5.0))
        assert light > heavy

    def test_boost_validation(self):
        with pytest.raises(ValueError):
            transition_matrix(0.0)

    def test_every_state_reachable(self):
        # the chain is irreducible: stationary mass everywhere positive
        pi = stationary_distribution(transition_matrix())
        assert np.all(pi > 0)


class TestStationaryDistribution:
    def test_two_state_known_answer(self):
        P = np.array([[0.9, 0.1], [0.5, 0.5]])
        pi = stationary_distribution(P)
        # pi = (5/6, 1/6)
        assert pi[0] == pytest.approx(5 / 6, abs=1e-9)

    def test_fixed_point(self):
        P = transition_matrix()
        pi = stationary_distribution(P)
        assert np.allclose(pi @ P, pi, atol=1e-9)
        assert pi.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            stationary_distribution(np.ones((2, 3)))
        with pytest.raises(ValueError, match="stochastic"):
            stationary_distribution(np.array([[0.5, 0.2], [0.5, 0.5]]))


class TestCalibration:
    @pytest.mark.parametrize("target", [0.95, 0.80, 0.50])
    def test_hits_standard_mix_targets(self, target):
        boost = calibrate_order_boost(target)
        achieved = browse_fraction_of(transition_matrix(boost))
        assert achieved == pytest.approx(target, abs=2e-3)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            calibrate_order_boost(0.9999)
        with pytest.raises(ValueError):
            calibrate_order_boost(1.5)


class TestSessionChain:
    @pytest.fixture(scope="class")
    def shopping(self):
        return SessionChain.for_mix("shopping", 0.80)

    def test_stationary_matches_target(self, shopping):
        st = shopping.stationary()
        browse = sum(v for k, v in st.items() if k in BROWSE_CLASS)
        assert browse == pytest.approx(0.80, abs=5e-3)

    def test_sample_session_starts_at_entry(self, shopping):
        session = shopping.sample_session(np.random.default_rng(0), 50)
        assert session[0] is RequestType.HOME
        assert len(session) == 50

    def test_sampled_frequencies_match_stationary(self, shopping):
        rng = np.random.default_rng(1)
        clicks = shopping.sample_session(rng, 60_000)
        browse = sum(1 for c in clicks if c in BROWSE_CLASS)
        assert browse / len(clicks) == pytest.approx(0.80, abs=0.02)

    def test_structural_paths_respected(self, shopping):
        """SEARCH_REQUEST is always followed by results or home."""
        rng = np.random.default_rng(2)
        clicks = shopping.sample_session(rng, 20_000)
        for a, b in zip(clicks, clicks[1:]):
            if a is RequestType.SEARCH_REQUEST:
                assert b in (RequestType.SEARCH_RESULTS, RequestType.HOME)

    def test_buy_rate_grows_with_order_mix(self):
        shopping = SessionChain.for_mix("shopping", 0.80)
        ordering = SessionChain.for_mix("ordering", 0.50)
        assert ordering.buy_rate() > shopping.buy_rate() * 2

    def test_session_length_validated(self, shopping):
        with pytest.raises(ValueError):
            shopping.sample_session(np.random.default_rng(0), 0)

    def test_states_cover_all_interactions(self):
        assert set(STATES) == set(RequestType)
