"""The Clock abstraction: one scheduling interface, two time sources.

Everything in this reproduction that needs a timer -- the DES request
loop, control-era ticks, the overlay's heartbeat/gossip periods, and the
:class:`~repro.overlay.reliable.ReliableChannel` retry/backoff ladder --
schedules against the same five-method surface:

* ``now`` -- the current time in *clock seconds*;
* ``schedule_at`` / ``schedule_after`` -- one-shot events (cancellable
  handle);
* ``schedule_pooled`` -- the fire-and-forget hot path;
* ``schedule_periodic`` -- re-armed recurrences (era ticks, monitors).

:class:`Clock` names that surface as a structural protocol.  Two
implementations exist:

* :data:`SimClock` -- the discrete-event
  :class:`~repro.sim.engine.Simulator` itself (virtual time, events fire
  back-to-back, bit-identical replays).  ``SimClock`` *is* ``Simulator``:
  the alias guarantees that threading the abstraction through the engine
  cannot perturb a single golden trace.
* :class:`~repro.serve.clock.WallClock` -- the same event heap driven by
  ``asyncio`` against real elapsed time (optionally speed-scaled), used
  by the ``repro serve`` wall-clock runtime.

Code that takes a clock should annotate the parameter as :class:`Clock`
and never assume virtual time semantics beyond "events fire in
``(time, priority, seq)`` order with a monotonic ``now``" -- the
property the sim/wall parity tests pin.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.sim.engine import Simulator
from repro.sim.events import Event


@runtime_checkable
class Clock(Protocol):
    """Structural protocol of a time source + event scheduler.

    :class:`~repro.sim.engine.Simulator` (virtual time) and
    :class:`~repro.serve.clock.WallClock` (real time) both satisfy it;
    consumers must not depend on which one they were given.
    """

    @property
    def now(self) -> float:
        """Current time in clock seconds (monotonic, never decreases)."""
        ...

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute clock time ``time``."""
        ...

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after ``delay`` clock seconds (>= 0)."""
        ...

    def schedule_pooled(
        self,
        delay: float,
        action: Callable[..., None],
        args: tuple = (),
    ) -> None:
        """Fire-and-forget fast path (no handle, not cancellable)."""
        ...

    def schedule_periodic(
        self,
        period: float,
        action: Callable[[], None],
        *,
        start: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> Callable[[], None]:
        """Fire ``action`` every ``period`` clock seconds; returns stop()."""
        ...

    def stop(self) -> None:
        """Request the running dispatch loop to exit."""
        ...


#: The simulated-time clock: the DES engine itself.  An alias (not a
#: subclass) so that ``SimClock() is``-for-``is`` the engine every
#: existing run constructs -- the golden-trace guard test relies on the
#: two being literally the same class.
SimClock = Simulator
