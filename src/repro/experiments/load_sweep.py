"""Client-count sweep over the paper's [16, 512] interval.

Sec. VI-A: "We varied the number of active clients (towards each cloud
region) in the interval [16, 512]".  The sweep quantifies how the steady
RMTTF and the response time scale with offered load on the two-region
deployment, and where the SLA would start to strain.

The sweep runs on the :mod:`repro.fleet` executor: each client count is
one content-addressed job, so ``workers > 1`` runs the points in
parallel worker processes and a ``store`` makes the sweep resumable
(killed runs continue from the last completed point; already-computed
points are never re-simulated).  The per-point physics is unchanged
from the original in-process loop -- serial, parallel, and resumed
sweeps produce bit-identical points.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.fleet.executor import FleetExecutor
from repro.fleet.jobs import JobSpec
from repro.fleet.store import ResultStore
from repro.obs.manifest import RunManifest
from repro.workload.browsers import CLIENT_RANGE


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """Outcome at one total client count."""

    clients_region1: int
    clients_region3: int
    mean_rmttf_s: float
    rmttf_spread: float
    mean_response_s: float
    sla_met: bool
    rejuvenations: float


def sweep_jobs(
    client_counts: tuple[int, ...],
    policy: str = "available-resources",
    eras: int = 120,
    seed: int = 7,
) -> list[JobSpec]:
    """The fleet jobs of one client-count sweep (validated, in order)."""
    lo, hi = CLIENT_RANGE
    for n1 in client_counts:
        if not lo <= n1 <= hi:
            raise ValueError(f"{n1} clients outside paper range [{lo},{hi}]")
    return [
        JobSpec(
            kind="load",
            scenario="load-two-region",
            policy=policy,
            load=float(n1),
            seed=seed,
            replicate=0,
            eras=eras,
        )
        for n1 in client_counts
    ]


def sweep_manifest(
    client_counts: tuple[int, ...],
    policy: str = "available-resources",
    eras: int = 120,
    seed: int = 7,
) -> RunManifest:
    """Provenance for the sweep's exported artifacts (CSV / table)."""
    return RunManifest.build(
        seed=seed,
        config={
            "experiment": "load_sweep",
            "client_counts": [int(n) for n in client_counts],
            "policy": policy,
            "eras": eras,
        },
        experiment="load_sweep",
        points=len(client_counts),
    )


def run_load_sweep(
    client_counts: tuple[int, ...] = (16, 32, 64, 128, 256, 512),
    policy: str = "available-resources",
    eras: int = 120,
    seed: int = 7,
    workers: int = 1,
    store: "ResultStore | str | Path | None" = None,
) -> list[SweepPoint]:
    """Sweep region-1 client counts (region 3 gets ~60 % as many).

    The per-region counts stay inside the paper's interval and remain
    "significantly different" between regions, as Sec. VI-A requires.
    ``workers`` parallelises the points across worker processes;
    ``store`` (a :class:`~repro.fleet.store.ResultStore` or directory
    path) caches completed points for resume.
    """
    jobs = sweep_jobs(client_counts, policy=policy, eras=eras, seed=seed)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    outcome = FleetExecutor(workers=workers, store=store).run(jobs)
    if outcome.failures:
        detail = "; ".join(
            f"{digest}: {message}"
            for digest, message in sorted(outcome.failures.items())
        )
        raise RuntimeError(f"load sweep jobs failed: {detail}")
    return [
        SweepPoint(
            clients_region1=int(payload["clients_region1"]),
            clients_region3=int(payload["clients_region3"]),
            mean_rmttf_s=float(payload["mean_rmttf_s"]),
            rmttf_spread=float(payload["rmttf_spread"]),
            mean_response_s=float(payload["mean_response_s"]),
            sla_met=bool(payload["sla_met"]),
            rejuvenations=float(payload["rejuvenations"]),
        )
        for payload in outcome.payloads
    ]


def sweep_table(
    points: list[SweepPoint], manifest: RunManifest | None = None
) -> str:
    """Render the sweep as a text table.

    With a ``manifest`` the table leads with the ``# manifest:``
    provenance comment (the PR 3 artifact convention), so a pasted or
    redirected table still states how to regenerate itself.
    """
    if not points:
        raise ValueError("no sweep points")
    lines = []
    if manifest is not None:
        lines.append(f"# manifest: {manifest.to_json()}")
    lines.append(
        f"{'clients(r1/r3)':>14} {'RMTTF':>9} {'spread':>8} "
        f"{'resp':>9} {'rejuv':>6} {'SLA':>4}"
    )
    for p in points:
        lines.append(
            f"{p.clients_region1:>7}/{p.clients_region3:<6} "
            f"{p.mean_rmttf_s:>8.0f}s {p.rmttf_spread:>8.3f} "
            f"{p.mean_response_s * 1000:>7.1f}ms {p.rejuvenations:>6.0f} "
            f"{'ok' if p.sla_met else 'MISS':>4}"
        )
    return "\n".join(lines)


def write_sweep_csv(
    points: list[SweepPoint],
    path: str,
    manifest: RunManifest | None = None,
) -> None:
    """Export the sweep as CSV with an embedded provenance manifest.

    The leading ``# manifest:`` comment round-trips through
    :func:`repro.sim.tracing.read_csv_manifest`, closing the one gap
    where an experiment artifact shipped without its reproduction
    recipe.
    """
    if not points:
        raise ValueError("no sweep points")
    with open(path, "w", encoding="utf-8") as fh:
        if manifest is not None:
            fh.write(f"# manifest: {manifest.to_json()}\n")
        fh.write(
            "clients_region1,clients_region3,mean_rmttf_s,"
            "rmttf_spread,mean_response_s,sla_met,rejuvenations\n"
        )
        for p in points:
            fh.write(
                f"{p.clients_region1},{p.clients_region3},"
                f"{p.mean_rmttf_s!r},{p.rmttf_spread!r},"
                f"{p.mean_response_s!r},{int(p.sla_met)},"
                f"{p.rejuvenations!r}\n"
            )
