"""Election + gossip convergence under repeated partition/heal cycles.

:mod:`repro.overlay.heartbeat` documents the detector's accuracy bound:
a crashed or partitioned peer is suspected within
``timeout_s + max_path_latency`` of its last heartbeat (and the periodic
check adds at most one ``period_s``), while a live reachable peer is
rehabilitated by the first heartbeat that gets through.  These tests
drive several partition/heal cycles through a five-node mesh and assert
that, within that bound after every topology change:

* every node's *local* leader (detector view) matches the message-free
  :class:`~repro.overlay.election.LeaderElection` of its component;
* after the final heal the whole mesh agrees on one leader again; and
* the gossip stores reconverge to identical version vectors.
"""

from repro.overlay.election import LeaderElection
from repro.overlay.heartbeat import build_detector_mesh
from repro.overlay.messaging import MessageBus
from repro.overlay.network import OverlayNetwork
from repro.overlay.routing import Router
from repro.overlay.state_sync import GossipSync, StateStore
from repro.sim.engine import Simulator

NODES = ["n1", "n2", "n3", "n4", "n5"]
PERIOD_S = 2.0
TIMEOUT_S = 6.0
GOSSIP_S = 3.0
#: detector convergence bound: silence timeout + one check period + the
#: worst path latency (milliseconds here, rounded up generously)
DETECT_BOUND_S = TIMEOUT_S + PERIOD_S + 0.5
#: rehabilitation bound: the next heartbeat plus its path latency
HEAL_BOUND_S = PERIOD_S + 0.5


class Mesh:
    """Five controllers with detectors, gossip, and an election oracle."""

    def __init__(self) -> None:
        self.net = OverlayNetwork()
        for n in NODES:
            self.net.add_node(n)
        for i, a in enumerate(NODES):
            for b in NODES[i + 1 :]:
                self.net.add_link(a, b, 10.0)
        self.sim = Simulator()
        self.router = Router(self.net)
        self.bus = MessageBus(sim=self.sim, router=self.router)
        self.detectors = build_detector_mesh(
            NODES,
            self.sim,
            self.bus,
            period_s=PERIOD_S,
            timeout_s=TIMEOUT_S,
            register=False,
        )
        self.stores = {n: StateStore(n) for n in NODES}
        self.gossip = GossipSync(
            self.stores,
            self.sim,
            self.bus,
            period_s=GOSSIP_S,
            register=False,
        )
        for node in NODES:
            self.bus.register(node, self._mux(node))
        self.gossip.start()
        self.election = LeaderElection(self.net)

    def _mux(self, node):
        det = self.detectors[node]
        gossip_handler = self.gossip.make_handler(node)

        def mux(msg):
            if msg.kind == "heartbeat":
                det.on_message(msg)
            elif msg.kind == "state-gossip":
                gossip_handler(msg)

        return mux

    # ------------------------------------------------------------------ #

    def cut(self, group: set[str]) -> list[tuple[str, str]]:
        cut = [
            (a, b)
            for a, b in self.net.links()
            if (a in group) != (b in group)
        ]
        for a, b in cut:
            self.net.fail_link(a, b)
        self.router.invalidate()
        return cut

    def heal(self, cut: list[tuple[str, str]]) -> None:
        for a, b in cut:
            self.net.restore_link(a, b)
        self.router.invalidate()

    def settle(self, span_s: float) -> None:
        self.sim.run_until(self.sim.now + span_s)

    def local_leaders(self) -> dict[str, str]:
        return {n: d.local_leader() for n, d in self.detectors.items()}

    def assert_views_match_election(self) -> None:
        """Every node's detector leader equals its component's election."""
        oracle = self.election.leaders(now=self.sim.now)
        assert self.local_leaders() == oracle


CYCLES = [
    {"n1", "n2"},  # majority loses the min-id node -> n3 takes over
    {"n5"},  # lone node; the rest keeps n1
    {"n1", "n4", "n5"},  # split with the min id on the small side
]


class TestPartitionHealCycles:
    def test_each_cycle_converges_within_detector_bound(self):
        mesh = Mesh()
        mesh.settle(PERIOD_S + 0.5)  # first heartbeats land
        mesh.assert_views_match_election()
        for group in CYCLES:
            cut = mesh.cut(group)
            mesh.settle(DETECT_BOUND_S)
            # both sides of the partition follow their component minimum
            mesh.assert_views_match_election()
            leaders = set(mesh.local_leaders().values())
            assert leaders == {min(group), min(set(NODES) - group)}
            mesh.heal(cut)
            mesh.settle(HEAL_BOUND_S)
            mesh.assert_views_match_election()
            assert set(mesh.local_leaders().values()) == {"n1"}

    def test_no_node_stays_falsely_suspected_after_final_heal(self):
        mesh = Mesh()
        mesh.settle(PERIOD_S + 0.5)
        for group in CYCLES:
            cut = mesh.cut(group)
            mesh.settle(DETECT_BOUND_S)
            mesh.heal(cut)
            mesh.settle(HEAL_BOUND_S)
        for det in mesh.detectors.values():
            assert det.suspected_peers() == []
            assert det.alive_view() == NODES

    def test_gossip_reconverges_after_every_heal(self):
        mesh = Mesh()
        for i, node in enumerate(NODES):
            mesh.stores[node].update_local({"epoch": 0, "idx": i})
        for epoch, group in enumerate(CYCLES, start=1):
            cut = mesh.cut(group)
            # publish fresh state *during* the partition: the two sides
            # must diverge because gossip cannot cross the cut
            for node in NODES:
                mesh.stores[node].update_local({"epoch": epoch})
            mesh.settle(DETECT_BOUND_S)
            assert not mesh.gossip.converged()
            mesh.heal(cut)
            # full rotation coverage: every node pushes to every peer
            # within len(peers) rounds; allow one extra for relaying
            mesh.settle(GOSSIP_S * (len(NODES)) * 2)
            assert mesh.gossip.converged()
            # and the converged view carries the partition-era updates
            for node in NODES:
                for region in NODES:
                    entry = mesh.stores[node].get(region)
                    assert entry is not None
                    assert entry.payload["epoch"] == epoch

    def test_takeover_count_matches_cycles_that_displace_the_leader(self):
        mesh = Mesh()
        mesh.settle(PERIOD_S + 0.5)
        election = LeaderElection(mesh.net)
        observed = []
        for group in CYCLES:
            cut = mesh.cut(group)
            mesh.settle(DETECT_BOUND_S)
            observed.append(election.elect("n3", now=mesh.sim.now))
            mesh.heal(cut)
            mesh.settle(HEAL_BOUND_S)
            observed.append(election.elect("n3", now=mesh.sim.now))
        # n3's side loses n1 in cycles 1 and 3, regains it on each heal
        assert observed == ["n3", "n1", "n1", "n1", "n2", "n1"]
        # n3 -> n1, n1 -> n2, n2 -> n1: three leader changes
        assert election.takeover_count() == 3
