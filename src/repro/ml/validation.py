"""Model validation: error metrics and k-fold cross-validation.

F2PM "provides the user with a series of metrics which allow to select which
is the most effective ML model" (Sec. III).  We implement the standard
regression metrics plus the relative-error summary used in the F2PM paper,
and a deterministic k-fold CV driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Regressor, as_1d_float
from repro.ml.dataset import Dataset


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = as_1d_float(y_true, "y_true")
    y_pred = as_1d_float(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} differ"
        )
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MAE = mean |y - yhat|."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """RMSE = sqrt(mean (y - yhat)^2)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mean_absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray, floor: float = 1e-9
) -> float:
    """MAPE = mean |y - yhat| / max(|y|, floor); the F2PM relative error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), floor)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1 is perfect, 0 matches the mean.

    Returns 0.0 for a constant target predicted exactly, -inf-like negative
    values are possible for models worse than the mean.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """All metrics for one model evaluation."""

    mae: float
    rmse: float
    mape: float
    r2: float
    n_samples: int

    @classmethod
    def from_predictions(
        cls, y_true: np.ndarray, y_pred: np.ndarray
    ) -> "ValidationReport":
        """Compute every metric from a prediction pair."""
        return cls(
            mae=mean_absolute_error(y_true, y_pred),
            rmse=root_mean_squared_error(y_true, y_pred),
            mape=mean_absolute_percentage_error(y_true, y_pred),
            r2=r2_score(y_true, y_pred),
            n_samples=int(np.asarray(y_true).size),
        )

    def __str__(self) -> str:
        return (
            f"MAE={self.mae:.4g} RMSE={self.rmse:.4g} "
            f"MAPE={self.mape:.2%} R2={self.r2:.4f} (n={self.n_samples})"
        )


def k_fold_indices(
    n_samples: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Deterministic shuffled k-fold split.

    Returns ``k`` pairs ``(train_idx, test_idx)`` covering all samples; fold
    sizes differ by at most one.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if n_samples < k:
        raise ValueError(f"cannot make {k} folds from {n_samples} samples")
    perm = rng.permutation(n_samples)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, test))
    return out


def cross_validate(
    make_model,
    dataset: Dataset,
    k: int,
    rng: np.random.Generator,
) -> list[ValidationReport]:
    """k-fold cross-validation.

    Parameters
    ----------
    make_model:
        Zero-argument factory returning a fresh, unfitted
        :class:`~repro.ml.base.Regressor` (a fresh model per fold avoids
        state leakage).
    dataset:
        The full dataset; folds are made over its rows.
    k:
        Number of folds.
    rng:
        Stream controlling the fold shuffle.

    Returns one :class:`ValidationReport` per fold.
    """
    reports = []
    for train_idx, test_idx in k_fold_indices(len(dataset), k, rng):
        model: Regressor = make_model()
        train, test = dataset.subset(train_idx), dataset.subset(test_idx)
        model.fit(train.X, train.y)
        reports.append(
            ValidationReport.from_predictions(test.y, model.predict(test.X))
        )
    return reports


def summarize_cv(reports: list[ValidationReport]) -> ValidationReport:
    """Sample-weighted pooling of fold reports.

    ``mae`` and ``mape`` are means of per-sample statistics, so their
    pooled values are the sample-weighted means of the fold values.
    ``rmse`` is *not*: the root of a mean does not average linearly
    across folds (a linear average understates the pooled error whenever
    folds differ).  The pooled RMSE therefore averages the fold *MSEs*
    (sample-weighted) and takes the square root, which equals the RMSE
    over the union of all held-out predictions.  ``r2`` is reported as
    the sample-weighted mean of the fold R² values -- a conventional CV
    summary, not a pooled statistic (pooling R² would need each fold's
    target variance).
    """
    if not reports:
        raise ValueError("no fold reports")
    weights = np.array([r.n_samples for r in reports], dtype=float)
    weights /= weights.sum()
    return ValidationReport(
        mae=float(sum(w * r.mae for w, r in zip(weights, reports))),
        rmse=float(
            np.sqrt(sum(w * r.rmse**2 for w, r in zip(weights, reports)))
        ),
        mape=float(sum(w * r.mape for w, r in zip(weights, reports))),
        r2=float(sum(w * r.r2 for w, r in zip(weights, reports))),
        n_samples=int(sum(r.n_samples for r in reports)),
    )
