"""Derived trend features for RTTF prediction.

F2PM's monitoring samples are instantaneous snapshots; the *rate of
change* of a feature (how fast memory is leaking, how fast threads pile
up) is often more predictive of the remaining time to failure than the
level itself.  This module augments a time-ordered feature matrix with
per-feature finite-difference slopes over a trailing window, mirroring the
aggregate features the F2PM paper derives from the raw stream.

Augmentation happens per *run* (slopes must not straddle two different
run-to-failure traces), so the entry point mirrors
:meth:`repro.ml.dataset.Dataset.from_run_traces`.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import as_1d_float, as_2d_float
from repro.ml.dataset import Dataset


def slope_features(
    times: np.ndarray,
    X: np.ndarray,
    window: int = 4,
) -> np.ndarray:
    """Trailing-window slopes of every column of ``X``.

    For sample ``i`` the slope is ``(x[i] - x[i-w]) / (t[i] - t[i-w])``
    with ``w = min(window, i)``; the first sample's slope is 0 (no
    history).  Fully vectorised.
    """
    times = as_1d_float(times, "times")
    X = as_2d_float(X, "X")
    if times.shape[0] != X.shape[0]:
        raise ValueError("times and X length mismatch")
    if window < 1:
        raise ValueError("window must be >= 1")
    n = X.shape[0]
    idx = np.arange(n)
    prev = np.maximum(idx - window, 0)
    dt = times[idx] - times[prev]
    dt[dt == 0] = 1.0  # first sample: slope 0 via zero numerator
    return (X[idx] - X[prev]) / dt[:, None]


def derived_feature_names(
    feature_names: tuple[str, ...] | list[str],
) -> tuple[str, ...]:
    """Names of the augmented schema: originals plus ``d/dt`` columns."""
    names = list(feature_names)
    return tuple(names + [f"slope:{n}" for n in names])


def augment_runs_with_slopes(
    runs: list[tuple[np.ndarray, np.ndarray, float]],
    feature_names: tuple[str, ...],
    window: int = 4,
) -> Dataset:
    """Build an RTTF dataset whose rows carry levels *and* slopes.

    Parameters mirror :meth:`repro.ml.dataset.Dataset.from_run_traces`;
    each run is augmented independently before stacking.
    """
    if not runs:
        raise ValueError("no profiling runs supplied")
    augmented = []
    for times, feats, failure_time in runs:
        times = np.asarray(times, dtype=float)
        feats = as_2d_float(np.asarray(feats), "features")
        slopes = slope_features(times, feats, window=window)
        augmented.append(
            (times, np.hstack([feats, slopes]), failure_time)
        )
    return Dataset.from_run_traces(
        augmented, derived_feature_names(feature_names)
    )
