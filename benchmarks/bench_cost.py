"""COST/BURST -- economic and burst-robustness extensions.

Sec. I motivates heterogeneous multi-cloud deployments by price: "different
cloud providers offer various types of VMs at different costs".  These
benches quantify what the policy study leaves implicit:

* COST: dollars per million served requests under each policy -- Policy 2's
  capacity-proportional routing also minimises rejuvenation churn, so it
  should not cost more than the diverging Policy 1;
* BURST: the policy conclusions survive a bursty (MMPP-modulated) client
  population, not just the smooth closed-loop load.
"""

import numpy as np

from repro.core import AcmManager, CostTracker, RegionSpec, assess_policy_run
from repro.experiments.scenarios import PAPER_POLICIES


def _run_with_cost(policy, eras=160, seed=21):
    mgr = AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", 6, 4, 160),
            RegionSpec("region2", "m3.small", 12, 10, 320),
            RegionSpec("region3", "private.small", 4, 3, 64),
        ],
        policy=policy,
        seed=seed,
    )
    tracker = CostTracker()
    for _ in range(eras):
        s = mgr.loop.run_era()
        for region, vmc in mgr.loop.vmcs.items():
            tracker.charge_era(
                vmc,
                mgr.loop.config.era_s,
                requests_served=0,
            )
        tracker.requests_served += s.total_requests
    return mgr, tracker


def test_cost_per_policy(benchmark):
    """COST: the converging policies serve traffic at least as cheaply."""
    rows = {}
    for policy in PAPER_POLICIES:
        mgr, tracker = _run_with_cost(policy)
        rows[policy] = (
            tracker.cost_per_million_requests(),
            tracker.total_usd,
            sum(s.rejuvenations for s in mgr.loop.summaries),
        )
    print("\ncost per policy (3-region deployment, 160 eras):")
    for policy, (cpm, total, rejuv) in rows.items():
        print(
            f"  {policy:<22} ${cpm:8.3f}/M requests  total=${total:7.4f} "
            f"rejuvenations={rejuv}"
        )
    # all policies bill the same pool; cost/M differs only through served
    # volume, so the converging policies must be within a few percent of
    # (or cheaper than) the diverging one.
    cpm1 = rows["sensible-routing"][0]
    cpm2 = rows["available-resources"][0]
    assert cpm2 <= cpm1 * 1.1
    benchmark(lambda: _run_with_cost("available-resources", eras=20))


def test_burst_robustness(benchmark):
    """BURST: Policy 2 still converges when regional client populations
    surge in bursts (MMPP-modulated load)."""
    from repro.workload import MmppArrivals

    mgr = AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", 8, 4, 160),
            RegionSpec("region3", "private.small", 6, 3, 96),
        ],
        policy="available-resources",
        seed=23,
    )
    loop = mgr.loop
    rng = mgr.rngs.stream("burst")
    mmpp = MmppArrivals(
        rng,
        rate_low=0.0,
        rate_high=120.0,  # extra clients' worth of request rate in bursts
        mean_sojourn_low_s=600.0,
        mean_sojourn_high_s=120.0,
    )
    base_pop = loop.populations["region1"]
    for _ in range(200):
        # modulate region1's population by the burst state
        extra = int(mmpp.advance(loop.config.era_s) / loop.config.era_s / 8)
        loop.populations["region1"] = base_pop.scaled(
            min(base_pop.n_clients + extra * 56, 512)
        )
        loop.run_era()
    a = assess_policy_run("available-resources+burst", mgr.traces)
    print(f"\nburst robustness: {a.row()}")
    assert a.sla_met
    assert a.rmttf_spread < 0.2, f"spread {a.rmttf_spread}"
    benchmark(lambda: _run_with_cost("available-resources", eras=15))


def test_cost_tracker_microbench(benchmark):
    """Charging an era must stay O(pool size) cheap."""
    mgr, tracker = _run_with_cost("uniform", eras=1)
    vmc = mgr.loop.vmcs["region2"]
    result = benchmark(tracker.charge_era, vmc, 30.0, 100)
    assert result > 0
