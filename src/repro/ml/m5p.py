"""M5P model tree (Wang & Witten 1997, paper ref. [29]).

A model tree grows like a regression tree but places *linear models* in the
nodes.  The classic M5 recipe, reproduced here:

1. **Grow** a variance-reduction tree (shared split search from
   :mod:`repro.ml.tree`), remembering which training samples reach each node.
2. **Fit** a ridge-stabilised linear model at every node on its samples.
3. **Prune** bottom-up by comparing the complexity-corrected error of the
   node's linear model against its subtree's error; the correction factor
   ``(n + v) / (n - v)`` (n samples, v parameters) penalises small leaves.
4. **Smooth** predictions along the root-to-leaf path:
   ``p' = (n * p_child + k * p_parent) / (n + k)`` with smoothing constant
   ``k = 15``, which removes discontinuities at the split boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Regressor
from repro.ml.tree import TreeNode, build_tree


@dataclass(slots=True)
class _NodeModel:
    """Ridge linear model attached to a tree node."""

    coef: np.ndarray
    intercept: float

    def predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef + self.intercept


def _fit_node_model(X: np.ndarray, y: np.ndarray, ridge: float) -> _NodeModel:
    """Fit a ridge model; degenerate nodes fall back to the mean."""
    n = y.size
    if n == 0:
        return _NodeModel(np.zeros(X.shape[1]), 0.0)
    if n < 3:
        return _NodeModel(np.zeros(X.shape[1]), float(y.mean()))
    x_mean = X.mean(axis=0)
    y_mean = float(y.mean())
    Xc = X - x_mean
    gram = Xc.T @ Xc + ridge * np.eye(X.shape[1])
    try:
        coef = np.linalg.solve(gram, Xc.T @ (y - y_mean))
    except np.linalg.LinAlgError:
        coef, *_ = np.linalg.lstsq(gram, Xc.T @ (y - y_mean), rcond=None)
    return _NodeModel(coef, y_mean - float(x_mean @ coef))


def _corrected_mae(residuals: np.ndarray, n_params: int) -> float:
    """M5's complexity-corrected mean absolute error.

    ``MAE * (n + v) / (n - v)``; infinite when the node has no spare degrees
    of freedom, which forces pruning decisions toward the subtree.
    """
    n = residuals.size
    if n == 0:
        return 0.0
    mae = float(np.mean(np.abs(residuals)))
    if n <= n_params:
        return np.inf
    return mae * (n + n_params) / (n - n_params)


class M5PModelTree(Regressor):
    """M5P model tree: linear models in the leaves, pruning, smoothing.

    Parameters
    ----------
    max_depth, min_samples_split, min_samples_leaf:
        Growth controls (shared split search).
    ridge:
        Stabiliser for the per-node linear solves.
    smoothing:
        The M5 smoothing constant ``k``; 0 disables smoothing.
    prune:
        Whether to run the complexity-corrected pruning pass.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 8,
        min_samples_leaf: int = 4,
        ridge: float = 1e-3,
        smoothing: float = 15.0,
        prune: bool = True,
    ) -> None:
        super().__init__()
        if smoothing < 0:
            raise ValueError("smoothing must be >= 0")
        if ridge < 0:
            raise ValueError("ridge must be >= 0")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.ridge = float(ridge)
        self.smoothing = float(smoothing)
        self.prune = bool(prune)
        self.root_: TreeNode | None = None
        self._models: dict[int, _NodeModel] = {}

    # ------------------------------------------------------------------ #

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.root_ = build_tree(
            X,
            y,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_sse_decrease=0.0,
            keep_sample_idx=True,
        )
        self._models = {}
        self._fit_models(self.root_, X, y)
        if self.prune:
            self._prune_node(self.root_, X, y)

    def _fit_models(self, node: TreeNode, X: np.ndarray, y: np.ndarray) -> None:
        assert node.sample_idx is not None
        rows = node.sample_idx
        self._models[id(node)] = _fit_node_model(X[rows], y[rows], self.ridge)
        if not node.is_leaf:
            assert node.left is not None and node.right is not None
            self._fit_models(node.left, X, y)
            self._fit_models(node.right, X, y)

    def _prune_node(
        self, node: TreeNode, X: np.ndarray, y: np.ndarray
    ) -> float:
        """Bottom-up prune; returns the corrected error of the kept subtree."""
        assert node.sample_idx is not None
        rows = node.sample_idx
        model = self._models[id(node)]
        node_residuals = y[rows] - model.predict(X[rows])
        n_params = int(np.count_nonzero(model.coef)) + 1
        node_err = _corrected_mae(node_residuals, n_params)
        if node.is_leaf:
            return node_err
        assert node.left is not None and node.right is not None
        left_err = self._prune_node(node.left, X, y)
        right_err = self._prune_node(node.right, X, y)
        nl = node.left.n_samples
        nr = node.right.n_samples
        subtree_err = (nl * left_err + nr * right_err) / max(nl + nr, 1)
        if node_err <= subtree_err:
            node.make_leaf()
            return node_err
        return subtree_err

    # ------------------------------------------------------------------ #

    def _predict(self, X: np.ndarray) -> np.ndarray:
        assert self.root_ is not None
        out = np.empty(X.shape[0], dtype=float)
        self._predict_into(self.root_, X, np.arange(X.shape[0]), out, None)
        return out

    def _predict_into(
        self,
        node: TreeNode,
        X: np.ndarray,
        rows: np.ndarray,
        out: np.ndarray,
        parent_pred: np.ndarray | None,
    ) -> None:
        if rows.size == 0:
            return
        pred = self._models[id(node)].predict(X[rows])
        # M5 smoothing: blend with the prediction inherited from the parent.
        if parent_pred is not None and self.smoothing > 0:
            n = node.n_samples
            pred = (n * pred + self.smoothing * parent_pred) / (
                n + self.smoothing
            )
        if node.is_leaf:
            out[rows] = pred
            return
        assert node.left is not None and node.right is not None
        mask = X[rows, node.feature] <= node.threshold
        self._predict_into(node.left, X, rows[mask], out, pred[mask])
        self._predict_into(node.right, X, rows[~mask], out, pred[~mask])

    # ------------------------------------------------------------------ #

    def n_leaves(self) -> int:
        """Leaf count of the (pruned) model tree."""
        if self.root_ is None:
            raise RuntimeError("model not fitted")
        return self.root_.count_leaves()

    def depth(self) -> int:
        """Depth of the (pruned) model tree."""
        if self.root_ is None:
            raise RuntimeError("model not fitted")
        return self.root_.depth()
