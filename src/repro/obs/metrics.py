"""Counters, gauges, and fixed-bucket histograms keyed by name + labels.

The registry follows the Prometheus data model scaled down to what a
deterministic simulation needs:

* a metric *handle* is fetched once (at component construction) and then
  mutated with plain attribute arithmetic -- the per-request hot path
  never touches the registry, builds no strings, and allocates nothing;
* histograms use **fixed** bucket boundaries chosen up front
  (log-spaced latency buckets by default), so ``observe`` is one bisect
  plus two adds -- no dynamic resizing, no per-sample records;
* label sets are small frozen tuples (``(("region", "r1"),)``), hashed
  once at handle-creation time.

Handles are plain mutable objects rather than lock-guarded abstractions:
the simulator is single-threaded by design, and the registry inherits
that contract.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterator

#: Log-spaced latency buckets (seconds): 9 decades, 3 buckets per decade,
#: from 100 us to 100 s.  Wide enough for think times and rejuvenation
#: windows, fine enough to separate a 50 ms hop from a 500 ms retry.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    round(10.0 ** (exp / 3.0), 10) for exp in range(-12, 7)
)


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[lo, hi]``.

    Returns ``per_decade`` boundaries per decade, inclusive of the first
    boundary at or below ``lo`` and the first at or above ``hi``.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    start = math.floor(math.log10(lo) * per_decade)
    stop = math.ceil(math.log10(hi) * per_decade)
    return tuple(round(10.0 ** (k / per_decade), 12) for k in range(start, stop + 1))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative inc {amount}")
        self.value += amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (pool sizes, modes, heap depth)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram with cumulative-friendly export.

    ``bounds`` are the finite upper bucket edges; one implicit ``+Inf``
    bucket catches the overflow.  ``observe`` is the hot-path call: one
    bisect over a small tuple plus two float adds.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        bounds: tuple[float, ...],
    ) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r}: need at least one bound")
        if any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ValueError(f"histogram {name!r}: bounds must increase")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left makes each edge an inclusive upper bound, matching
        # the Prometheus ``le`` semantics of the exporter
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        holding the ``q``-th sample; +Inf overflow reports the last edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= target:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create store of metric handles keyed by (name, labels).

    Asking twice for the same (name, labels) returns the *same* handle,
    so components can share series intentionally; asking for the same
    name with a different metric type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._types: dict[str, type] = {}

    def _get(self, cls: type, name: str, labels: dict[str, str], *args):
        known = self._types.get(name)
        if known is not None and known is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {known.__name__}, "
                f"requested as {cls.__name__}"
            )
        key = (name, _label_key(labels))
        handle = self._metrics.get(key)
        if handle is None:
            handle = cls(name, key[1], *args)
            self._metrics[key] = handle
            self._types[name] = cls
        return handle

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def counters(self) -> list[Counter]:
        return [m for m in self if isinstance(m, Counter)]

    def gauges(self) -> list[Gauge]:
        return [m for m in self if isinstance(m, Gauge)]

    def histograms(self) -> list[Histogram]:
        return [m for m in self if isinstance(m, Histogram)]

    def snapshot(self) -> dict:
        """JSON-ready dump of every registered metric."""
        return {
            "counters": [m.as_dict() for m in self.counters()],
            "gauges": [m.as_dict() for m in self.gauges()],
            "histograms": [m.as_dict() for m in self.histograms()],
        }
