"""Tests for the request-level multi-region control loop."""

import numpy as np
import pytest

from repro.core import get_policy
from repro.core.des_loop import DesControlLoop
from repro.pcam import OracleRttfPredictor, VirtualMachine, VmState
from repro.sim import M3_MEDIUM, PRIVATE_SMALL, RngRegistry
from repro.workload import AnomalyInjector, BrowserPopulation


def build_loop(policy="available-resources", seed=5, clients=(80, 48),
               **kwargs):
    rngs = RngRegistry(seed=seed)

    def pool(name, itype, n):
        return [
            VirtualMachine(
                f"{name}/vm{i}",
                itype,
                AnomalyInjector(rngs.child(f"{name}{i}").stream("a")),
            )
            for i in range(n)
        ]

    regions = {
        "r1": (pool("r1", M3_MEDIUM, 6),
               BrowserPopulation(n_clients=clients[0]), 4),
        "r3": (pool("r3", PRIVATE_SMALL, 4),
               BrowserPopulation(n_clients=clients[1]), 3),
    }
    return DesControlLoop(
        regions,
        get_policy(policy) if isinstance(policy, str) else policy,
        OracleRttfPredictor(),
        rngs,
        **kwargs,
    )


class TestMechanics:
    def test_era_produces_traces(self):
        loop = build_loop()
        loop.run(5)
        assert len(loop.traces.series("rmttf/r1")) == 5
        assert len(loop.traces.series("fraction/r3")) == 5
        f1 = loop.traces.series("fraction/r1").values
        f3 = loop.traces.series("fraction/r3").values
        assert np.allclose(f1 + f3, 1.0)

    def test_requests_actually_served(self):
        loop = build_loop()
        loop.run(10)
        total = sum(
            vm.total_requests
            for state in loop._states.values()
            for vm in state.vms
        )
        assert total > 100

    def test_active_pools_maintained(self):
        loop = build_loop()
        loop.run(30)
        assert len(loop._states["r1"].active()) == 4
        assert len(loop._states["r3"].active()) == 3

    def test_rejuvenations_happen(self):
        loop = build_loop(clients=(120, 72))
        loop.run(60)
        assert loop.total_rejuvenations > 0

    def test_deterministic(self):
        a = build_loop(seed=9)
        b = build_loop(seed=9)
        ra = a.run(15)
        rb = b.run(15)
        assert ra == rb

    def test_validation(self):
        with pytest.raises(ValueError):
            build_loop(era_s=0.0)
        loop = build_loop()
        with pytest.raises(ValueError):
            loop.run(0)


class TestPolicyDynamicsAtRequestLevel:
    """The fluid loop's headline results hold per-request too."""

    @pytest.fixture(scope="class")
    def spreads(self):
        out = {}
        for policy in ("sensible-routing", "available-resources"):
            loop = build_loop(policy, seed=5, clients=(120, 72))
            loop.run(100)
            tails = [
                s.tail_fraction(0.3).mean()
                for s in loop.traces.matching("rmttf/").values()
            ]
            out[policy] = (max(tails) - min(tails)) / np.mean(tails)
        return out

    def test_policy1_diverges(self, spreads):
        assert spreads["sensible-routing"] > 0.25

    def test_policy2_converges(self, spreads):
        assert spreads["available-resources"] < 0.08

    def test_ordering(self, spreads):
        assert (
            spreads["sensible-routing"]
            > 4 * spreads["available-resources"]
        )


class TestOverlayForwarding:
    def test_remote_forwarding_pays_overlay_rtt(self):
        """With an overlay attached, remotely-served requests carry the
        round-trip latency, so a policy that forwards heavily shows a
        higher measured response time than local processing alone."""
        from repro.overlay import OverlayNetwork

        def run(with_overlay):
            overlay = None
            if with_overlay:
                overlay = OverlayNetwork()
                overlay.add_node("r1")
                overlay.add_node("r3")
                overlay.add_link("r1", "r3", 150.0)  # deliberately slow
            loop = build_loop(
                "available-resources",
                seed=21,
                clients=(120, 72),
                overlay=overlay,
            )
            loop.run(60)
            return float(
                np.mean(
                    [
                        s.tail_fraction(0.5).mean()
                        for s in loop.traces.matching(
                            "response_time/"
                        ).values()
                    ]
                )
            )

        rt_without = run(False)
        rt_with = run(True)
        # Policy 2 forwards a sizeable share from r3's clients to r1 (the
        # capacity imbalance), so the 300 ms RTT must be visible
        assert rt_with > rt_without + 0.01

    def test_partitioned_overlay_falls_back_to_penalty(self):
        from repro.overlay import OverlayNetwork

        overlay = OverlayNetwork()
        overlay.add_node("r1")
        overlay.add_node("r3")
        overlay.add_link("r1", "r3", 20.0)
        loop = build_loop("uniform", seed=22, overlay=overlay)
        loop.run(5)
        overlay.fail_link("r1", "r3")
        loop._router.invalidate()
        # the loop keeps running; forwarded requests absorb the timeout
        # penalty instead of crashing
        loop.run(5)
        assert loop.era_index == 10
