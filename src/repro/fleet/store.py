"""Content-addressed, crash-safe result store for fleet jobs.

One JSON document per completed job, named by the job's config digest
(:func:`repro.obs.manifest.config_digest` over :meth:`JobSpec.config`).
The digest *is* the cache key: re-running a sweep looks every job up
here first, so a killed run resumes where it stopped and an edited spec
only recomputes the cells whose effective configuration changed.

Hygiene rules, enforced from day one:

* **Atomic writes.**  Entries are written to a same-directory temp file
  and ``os.replace``-d into place, so a Ctrl-C or OOM mid-write can
  never leave a truncated entry that later resumes would trust.
* **Self-describing entries.**  Each document embeds the full job
  config and the per-job :class:`~repro.obs.manifest.RunManifest`;
  :meth:`ResultStore.get` verifies the stored config digests to the
  entry's filename and treats any mismatch or undecodable file as a
  miss (quarantining it out of the resume path).
* **Garbage collection.**  :meth:`ResultStore.gc` prunes entries whose
  digest no longer matches any known spec (``repro sweep --gc``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterable

from repro.obs.manifest import config_digest

#: Filename suffix of store entries.
_SUFFIX = ".json"


class ResultStore:
    """A directory of ``<digest>.json`` job-result documents."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}{_SUFFIX}"

    # -------------------------------------------------------------- #
    # read / write
    # -------------------------------------------------------------- #

    def get(self, digest: str) -> dict | None:
        """The stored document for ``digest``, or None.

        Corrupt, truncated, or mislabeled entries (digest of the
        embedded job config not matching the filename) read as misses:
        resume must never trust a half-written file.
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or "payload" not in doc:
            return None
        job_config = doc.get("job")
        if not isinstance(job_config, dict):
            return None
        if config_digest(job_config) != digest:
            return None
        return doc

    def put(self, digest: str, doc: dict) -> Path:
        """Atomically persist ``doc`` as the entry for ``digest``.

        Write-then-rename in the store directory itself, so the rename
        never crosses a filesystem boundary and readers observe either
        the old entry or the complete new one.
        """
        path = self.path_for(digest)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{digest}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -------------------------------------------------------------- #
    # inventory
    # -------------------------------------------------------------- #

    def digests(self) -> list[str]:
        """Digests of every entry on disk (sorted; temp files ignored)."""
        return sorted(
            p.name[: -len(_SUFFIX)]
            for p in self.root.glob(f"*{_SUFFIX}")
            if not p.name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.digests())

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).is_file()

    def gc(self, keep: Iterable[str]) -> list[str]:
        """Remove entries whose digest is not in ``keep``.

        Returns the pruned digests (sorted).  Stray temp files from
        interrupted writes are swept too.
        """
        keep_set = set(keep)
        pruned: list[str] = []
        for digest in self.digests():
            if digest not in keep_set:
                try:
                    self.path_for(digest).unlink()
                    pruned.append(digest)
                except OSError:
                    pass
        for tmp in self.root.glob(".*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
        return pruned
