"""Failure-injection integration tests: the loop under regional disasters.

The availability story of Sec. I: geographic distribution protects against
"a failure of an entire data center in a region".  These tests inject
region-scale failures mid-run and assert the control loop degrades and
recovers the way the architecture promises.
"""

import numpy as np
import pytest

from repro.core import AcmManager, RegionSpec
from repro.pcam import VmState


def make_manager(seed=31):
    return AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", 8, 5, 160,
                       rejuvenation_time_s=60.0),
            RegionSpec("region3", "private.small", 6, 4, 96,
                       rejuvenation_time_s=60.0),
        ],
        policy="available-resources",
        seed=seed,
    )


class TestRegionDisaster:
    def test_mass_vm_failure_recovers(self):
        """All of region3's ACTIVE VMs crash at once; rejuvenation and the
        policy bring the region back within a few eras."""
        mgr = make_manager()
        loop = mgr.loop
        loop.run(30)
        vmc3 = loop.vmcs["region3"]
        for vm in vmc3.vms_in(VmState.ACTIVE):
            vm.fail()
        # next eras: reactive rejuvenation kicks in
        summaries = loop.run(20)
        # by the end the region is serving again with a full pool
        assert summaries[-1].active_vms["region3"] >= 3
        # and the policy redistributed load back toward region3
        assert summaries[-1].fractions["region3"] > 0.1

    def test_fractions_shift_away_during_outage(self):
        """While region3 is down, the policy starves it of traffic."""
        mgr = make_manager()
        loop = mgr.loop
        loop.run(30)
        f_before = loop.summaries[-1].fractions["region3"]
        vmc3 = loop.vmcs["region3"]
        # sustained disaster: keep killing region3's VMs every era
        for _ in range(12):
            for vm in vmc3.vms_in(VmState.ACTIVE):
                vm.fail()
            loop.run_era()
        f_during = loop.summaries[-1].fractions["region3"]
        # RMTTF of a crashing region collapses -> its fraction drops
        assert f_during < f_before * 0.7

    def test_total_requests_keep_flowing_during_outage(self):
        mgr = make_manager()
        loop = mgr.loop
        loop.run(10)
        vmc3 = loop.vmcs["region3"]
        for vm in vmc3.vms_in(VmState.ACTIVE):
            vm.fail()
        summaries = loop.run(5)
        # region1 absorbs the load; the system never stops serving
        assert all(s.total_requests > 0 for s in summaries)

    def test_rejuvenation_counters_reflect_disaster(self):
        mgr = make_manager()
        loop = mgr.loop
        loop.run(10)
        vmc3 = loop.vmcs["region3"]
        failures_before = vmc3.total_failures
        n_killed = len(vmc3.vms_in(VmState.ACTIVE))
        for vm in vmc3.vms_in(VmState.ACTIVE):
            vm.fail()
        loop.run(3)
        assert vmc3.total_failures >= failures_before
        # every killed VM went through rejuvenation
        assert vmc3.total_rejuvenations >= n_killed


class TestControllerPartitionDuringRun:
    def test_leader_loss_and_reelection_preserves_service(self):
        mgr = make_manager()
        loop = mgr.loop
        loop.run(10)
        assert loop.summaries[-1].leader == "region1"
        loop.overlay.fail_node("region1")
        loop.router.invalidate()
        summaries = loop.run(10)
        assert summaries[-1].leader == "region3"
        assert all(s.total_requests > 0 for s in summaries)
        # recovery restores the original leader
        loop.overlay.restore_node("region1")
        loop.router.invalidate()
        (s,) = loop.run(1)
        assert s.leader == "region1"

    def test_partition_freezes_remote_fraction_updates(self):
        """A slave cut off from the leader keeps its last fraction."""
        mgr = make_manager()
        loop = mgr.loop
        loop.run(30)
        loop.overlay.fail_link("region1", "region3")
        loop.router.invalidate()
        f_at_cut = loop.summaries[-1].fractions
        summaries = loop.run(10)
        # the leader plans with stale RMTTF for region3; fractions stay
        # near the pre-partition plan rather than collapsing
        for s in summaries:
            assert s.fractions["region3"] == pytest.approx(
                f_at_cut["region3"], abs=0.15
            )
