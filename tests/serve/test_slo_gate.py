"""The serve-side SLO gate: 429 + Retry-After, ladder dwell, admin ops.

The service's ``_mono`` attribute is an injectable monotonic clock, so
dwell timing runs on a fake clock -- no sleeps, fully deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.scenarios import two_region_scenario
from repro.serve.clock import WallClock
from repro.serve.ingress import HttpIngress
from repro.serve.service import AcmService, ServeConfig
from repro.slo import SloConfig


class FakeMono:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_service(slo: SloConfig | None = None, **cfg_kw) -> AcmService:
    cfg = ServeConfig(seed=7, slo=slo, **cfg_kw)
    service = AcmService(
        two_region_scenario(), WallClock(speed=100.0), cfg
    )
    return service


def slo_service(**slo_kw):
    """Service with a fake mono clock and a p95 target requests do breach."""
    defaults = dict(
        p95_target_s=1e-9, window_s=30.0, min_dwell_s=10.0
    )
    defaults.update(slo_kw)
    service = make_service(slo=SloConfig(**defaults))
    mono = FakeMono()
    service._mono = mono
    return service, mono


class TestSloGate:
    def test_no_slo_config_means_no_gate(self):
        service = make_service()
        assert service._slo_gates is None
        status, _ = service.handle_request(service.regions[0])
        assert status == 200

    def test_breach_sheds_with_retry_after(self):
        service, mono = slo_service()
        region = service.regions[0]
        status, _ = service.handle_request(region)  # seeds a latency sample
        assert status == 200
        mono.advance(0.1)
        status, body = service.handle_request(region)  # gate now breached
        assert status == 429
        assert body["error"] == "slo"
        assert body["retry_after_s"] >= 1
        # regression: every shed body carries the Retry-After hint
        assert isinstance(body["retry_after_s"], int)

    def test_retry_after_tracks_dwell_remainder(self):
        service, mono = slo_service(min_dwell_s=10.0)
        region = service.regions[0]
        service.handle_request(region)
        mono.advance(0.1)
        status, body = service.handle_request(region)
        assert status == 429
        assert body["retry_after_s"] == pytest.approx(10, abs=1)
        mono.advance(6.0)
        status, body = service.handle_request(region)
        assert status == 429
        assert body["retry_after_s"] <= 4

    def test_recovery_requires_dwell_and_drained_window(self):
        service, mono = slo_service(min_dwell_s=10.0, window_s=5.0)
        region = service.regions[0]
        service.handle_request(region)
        mono.advance(0.1)
        assert service.handle_request(region)[0] == 429
        # past the dwell AND past the window: the breach sample has aged
        # out, the empty window counts as recovered
        mono.advance(20.0)
        status, _ = service.handle_request(region)
        assert status == 200

    def test_era_tick_recovers_idle_region(self):
        service, mono = slo_service(min_dwell_s=10.0, window_s=5.0)
        region = service.regions[0]
        service.handle_request(region)
        mono.advance(0.1)
        assert service.handle_request(region)[0] == 429
        mono.advance(20.0)
        service._slo_refresh()  # era tick, no probe traffic needed
        assert service._slo_levels[region] == "normal"

    def test_slo_shed_metric_counts(self):
        service, mono = slo_service()
        region = service.regions[0]
        service.handle_request(region)
        mono.advance(0.1)
        service.handle_request(region)
        counters = service.telemetry.snapshot()["metrics"]["counters"]
        by_name = {
            (c["name"], c["labels"].get("region")): c["value"]
            for c in counters
        }
        assert by_name[("slo_shed_total", region)] == 1


class TestTokenBucketRetryAfter:
    def test_shed_body_carries_refill_hint(self):
        # satellite regression: the token-bucket 429 must include a
        # Retry-After derived from the refill rate
        service = make_service(admission_rps=1.0, admission_burst_s=2.0)
        region = service.regions[0]
        bodies = [service.handle_request(region) for _ in range(40)]
        shed = [b for s, b in bodies if s == 429]
        assert shed
        for body in shed:
            assert body["error"] == "shed"
            assert body["retry_after_s"] >= 1
            # deficit < 1 token at 1 rps -> at most ~1s, never huge
            assert body["retry_after_s"] <= 2


class TestAdminOps:
    def test_kill_switch_sheds_and_lifts(self):
        service, _ = slo_service(p95_target_s=10.0)  # healthy target
        region = service.regions[0]
        assert service.handle_request(region)[0] == 200
        assert service.slo_kill(True)
        status, body = service.handle_request(region)
        assert status == 429
        assert service.slo_snapshot()["kill_switch"] is True
        service.slo_kill(False)
        assert service.handle_request(region)[0] == 200

    def test_override_pins_and_clears(self):
        service, _ = slo_service(p95_target_s=10.0)
        region = service.regions[0]
        assert service.slo_override("degraded")
        assert service.handle_request(region)[0] == 429
        service.slo_override(None)
        assert service.handle_request(region)[0] == 200
        with pytest.raises(ValueError):
            service.slo_override("panic")

    def test_admin_ops_report_disabled_without_slo(self):
        service = make_service()
        assert service.slo_kill(True) is False
        assert service.slo_override("degraded") is False
        assert service.slo_snapshot() == {"enabled": False}

    def test_snapshot_shape(self):
        service, _ = slo_service(p95_target_s=10.0)
        snap = service.slo_snapshot()
        assert snap["enabled"] is True
        assert snap["config"].startswith("p95:")
        for region in service.regions:
            entry = snap["regions"][region]
            assert entry["level"] == "normal"
            assert entry["source"] == "default"


class TestHttpSloEndpoints:
    def _body(self, result):
        status, content_type, raw, headers = result
        assert content_type == "application/json"
        return status, json.loads(raw), headers

    def test_shed_maps_retry_after_header(self):
        service, mono = slo_service()
        ingress = HttpIngress(service)
        region = service.regions[0]
        service.handle_request(region)
        mono.advance(0.1)
        status, body, headers = self._body(
            ingress._dispatch("GET", f"/route?region={region}")
        )
        assert status == 429
        assert headers is not None
        assert headers["Retry-After"] == str(body["retry_after_s"])

    def test_slo_endpoint(self):
        service, _ = slo_service(p95_target_s=10.0)
        ingress = HttpIngress(service)
        status, body, _ = self._body(ingress._dispatch("GET", "/slo"))
        assert status == 200
        assert body["enabled"] is True

    def test_kill_and_override_endpoints(self):
        service, _ = slo_service(p95_target_s=10.0)
        ingress = HttpIngress(service)
        status, body, _ = self._body(
            ingress._dispatch("POST", "/slo/kill?on=1")
        )
        assert status == 200
        assert service.slo_snapshot()["kill_switch"] is True
        status, _, _ = self._body(
            ingress._dispatch("POST", "/slo/override?level=degraded")
        )
        assert status == 200
        status, _, _ = self._body(
            ingress._dispatch("POST", "/slo/override?level=panic")
        )
        assert status == 400

    def test_endpoints_400_when_slo_disabled(self):
        ingress = HttpIngress(make_service())
        status, body, _ = self._body(
            ingress._dispatch("POST", "/slo/kill?on=1")
        )
        assert status == 400
        assert "disabled" in body["error"]
