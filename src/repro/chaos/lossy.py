"""Probabilistic message loss and latency jitter for the overlay bus.

:class:`LossyBus` is the chaos-injection transport: a drop-in
:class:`~repro.overlay.messaging.MessageBus` whose ``send`` path first
rolls a seeded RNG for message loss and (optionally) defers dispatch by a
uniform latency jitter.  Loss is *silent* in the datagram sense -- the
sender's ``send`` still returns True (the network accepted the packet; it
just never arrives), which is exactly the failure mode
:class:`~repro.overlay.reliable.ReliableChannel` exists to mask.

Both knobs are plain mutable attributes so a
:class:`~repro.chaos.engine.ChaosEngine` can schedule loss windows
("30 % loss between t=180 s and t=780 s") on the simulator clock.  All
randomness comes from one named stream, so a campaign replays
bit-identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.messaging import Message, MessageBus


@dataclass
class LossyBus(MessageBus):
    """A :class:`MessageBus` with injectable loss and latency jitter.

    Parameters
    ----------
    rng:
        Seeded stream for the loss roll and jitter draw (e.g.
        ``rngs.stream("chaos/network")``).  Required as soon as
        ``loss_probability`` or ``jitter_ms`` is non-zero.
    loss_probability:
        Per-message probability of silent loss (applies to *every* bus
        message: data, acks, heartbeats, gossip).
    jitter_ms:
        Upper bound of a uniform extra delay added before dispatch.
    """

    rng: np.random.Generator | None = None
    loss_probability: float = 0.0
    jitter_ms: float = 0.0
    chaos_dropped: int = 0
    chaos_delayed: int = 0

    def send(self, src, dst, kind, payload, on_outcome=None) -> bool:
        if self.loss_probability > 0.0 or self.jitter_ms > 0.0:
            if self.rng is None:
                raise RuntimeError(
                    "LossyBus needs an rng once loss/jitter is enabled"
                )
        if (
            self.loss_probability > 0.0
            and float(self.rng.random()) < self.loss_probability
        ):
            msg = Message(
                src=src, dst=dst, kind=kind, payload=payload,
                sent_at=self.sim.now,
            )
            self.chaos_dropped += 1
            self._drop(msg, "chaos_loss", on_outcome)
            return True  # the datagram was accepted; it just never arrives
        if self.jitter_ms > 0.0:
            delay_s = float(self.rng.uniform(0.0, self.jitter_ms)) / 1000.0
            self.chaos_delayed += 1
            self.sim.schedule_after(
                delay_s,
                lambda: MessageBus.send(
                    self, src, dst, kind, payload, on_outcome=on_outcome
                ),
                label=f"jitter:{kind}",
            )
            return True
        return super().send(src, dst, kind, payload, on_outcome=on_outcome)
