"""Tests for the command-line interface and the top-level package API."""

import pytest

import repro
from repro.cli import build_parser, main


class TestPackageApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        assert callable(repro.AcmManager)
        assert callable(repro.RegionSpec)
        assert callable(repro.get_policy)


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--eras", "50"])
        assert args.command == "fig3"
        assert args.eras == 50

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.regions == 3
        assert "sensible-routing" in args.policies

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_regions(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--regions", "5"])


class TestExecution:
    def test_compare_runs(self, capsys):
        rc = main(
            [
                "compare",
                "--regions",
                "2",
                "--eras",
                "30",
                "--policies",
                "uniform",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig3-two-regions" in out
        assert "uniform" in out

    @pytest.mark.slow
    def test_models_runs(self, capsys):
        rc = main(["models", "--seed", "3", "--instance-type", "m3.small"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rep-tree" in out
        assert "selected features" in out


class TestExport:
    def test_export_writes_csv_per_policy(self, tmp_path):
        prefix = str(tmp_path / "tr")
        rc = main(
            ["export", "fig3", "--eras", "15", "--seed", "2",
             "--prefix", prefix]
        )
        assert rc == 0
        from repro.sim import TraceRecorder

        path = f"{prefix}_fig3_available-resources.csv"
        rec = TraceRecorder.from_csv(path)
        assert "rmttf/region1-ireland" in rec.names()
        assert len(rec.series("response_time")) == 15

    def test_export_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export"])


class TestPlanCommand:
    def test_plan_prints_recommendation(self, capsys):
        rc = main(["plan", "--rate", "30", "--target", "600"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ACTIVE" in out and "STANDBY" in out
        assert "expected RMTTF" in out

    def test_plan_requires_rate_and_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestRobustnessCommand:
    def test_robustness_runs_and_reports(self, capsys):
        rc = main(
            ["robustness", "fig3", "--eras", "60", "--seeds", "7"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed" in out and "ALL PASS" in out
