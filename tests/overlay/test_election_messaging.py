"""Tests for leader election and the controller message bus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay import LeaderElection, MessageBus, OverlayNetwork, Router
from repro.sim import Simulator


def mesh(n=4, latency=10.0):
    names = [f"r{i}" for i in range(1, n + 1)]
    pairs = {
        (a, b): latency for i, a in enumerate(names) for b in names[i + 1 :]
    }
    return OverlayNetwork.full_mesh(pairs)


class TestLeaderElection:
    def test_elects_minimum_id(self):
        net = mesh(3)
        election = LeaderElection(net)
        assert election.elect("r2") == "r1"

    def test_all_members_agree(self):
        net = mesh(4)
        election = LeaderElection(net)
        leaders = {election.elect(n) for n in net.alive_nodes()}
        assert leaders == {"r1"}

    def test_leader_failure_triggers_takeover(self):
        net = mesh(3)
        election = LeaderElection(net)
        assert election.elect("r3") == "r1"
        net.fail_node("r1")
        assert election.elect("r3") == "r2"
        assert election.takeover_count() == 1

    def test_partition_gets_leader_per_side(self):
        net = OverlayNetwork.full_mesh(
            {("r1", "r2"): 5.0, ("r3", "r4"): 5.0, ("r2", "r3"): 5.0}
        )
        net.fail_link("r2", "r3")
        leaders = LeaderElection(net).leaders()
        assert leaders["r1"] == "r1" and leaders["r2"] == "r1"
        assert leaders["r3"] == "r3" and leaders["r4"] == "r3"

    def test_dead_caller_cannot_elect(self):
        net = mesh(2)
        net.fail_node("r1")
        with pytest.raises(RuntimeError, match="down"):
            LeaderElection(net).elect("r1")

    def test_recovery_restores_original_leader(self):
        net = mesh(3)
        election = LeaderElection(net)
        assert election.elect("r2") == "r1"
        net.fail_node("r1")
        assert election.elect("r2") == "r2"
        net.restore_node("r1")
        assert election.elect("r2") == "r1"
        assert election.takeover_count() == 2

    @settings(max_examples=30, deadline=None)
    @given(
        dead=st.sets(st.sampled_from(["r1", "r2", "r3", "r4", "r5"]), max_size=4)
    )
    def test_safety_property_one_leader_per_component(self, dead):
        """At most one leader per live component, and members agree."""
        net = mesh(5)
        for n in dead:
            net.fail_node(n)
        election = LeaderElection(net)
        leaders = election.leaders()
        for node, leader in leaders.items():
            assert leader in net.component_of(node)
            # every member of the component names the same leader
            for member in net.component_of(node):
                assert leaders[member] == leader


class TestMessageBus:
    def make_bus(self, net=None):
        net = net or mesh(3)
        sim = Simulator()
        bus = MessageBus(sim=sim, router=Router(net))
        return sim, net, bus

    def test_delivery_after_path_latency(self):
        sim, net, bus = self.make_bus()
        got = []
        bus.register("r2", lambda m: got.append((sim.now, m.payload)))
        bus.register("r1", lambda m: None)
        assert bus.send("r1", "r2", "rmttf", 123.0)
        sim.run()
        assert got == [(0.01, 123.0)]  # 10 ms
        assert bus.delivered_count == 1

    def test_drop_when_partitioned(self):
        net = OverlayNetwork.full_mesh({("r1", "r2"): 10.0})
        net.add_node("r3")  # isolated
        sim = Simulator()
        dropped = []
        bus = MessageBus(sim=sim, router=Router(net), on_drop=dropped.append)
        bus.register("r3", lambda m: None)
        assert not bus.send("r1", "r3", "rmttf", 1.0)
        assert bus.dropped_count == 1
        assert dropped[0].dst == "r3"

    def test_drop_when_no_handler(self):
        sim, net, bus = self.make_bus()
        assert not bus.send("r1", "r2", "x", None)
        assert bus.dropped_count == 1

    def test_drop_if_destination_dies_in_flight(self):
        sim, net, bus = self.make_bus()
        got = []
        bus.register("r2", got.append)
        bus.send("r1", "r2", "x", None)
        net.fail_node("r2")  # dies before delivery event fires
        sim.run()
        assert got == []
        assert bus.dropped_count == 1

    def test_broadcast_reaches_all_registered(self):
        sim, net, bus = self.make_bus()
        got = []
        for n in ("r1", "r2", "r3"):
            bus.register(n, lambda m, n=n: got.append(n))
        assert bus.broadcast("r1", "plan", {"f": 0.5}) == 2
        sim.run()
        assert sorted(got) == ["r2", "r3"]

    def test_drop_reasons_are_tagged(self):
        """Regression: every drop carries a reason counter."""
        net = OverlayNetwork.full_mesh({("r1", "r2"): 10.0})
        net.add_node("r3")  # isolated -> no route
        sim = Simulator()
        bus = MessageBus(sim=sim, router=Router(net))
        bus.register("r3", lambda m: None)
        assert not bus.send("r1", "r3", "x", None)  # partitioned
        assert not bus.send("r1", "r2", "x", None)  # routable, no handler
        bus.register("r2", lambda m: None)
        bus.send("r1", "r2", "x", None)
        net.fail_node("r2")  # dies in flight
        sim.run()
        assert bus.drop_counts == {
            "no_route": 1,
            "no_handler": 1,
            "dead_dst": 1,
        }
        assert bus.dropped_count == 3

    def test_broadcast_reports_in_flight_deaths(self):
        """Regression: broadcast must not count sends that die in
        flight as accepted deliveries."""
        sim, net, bus = self.make_bus()
        for n in ("r1", "r2", "r3"):
            bus.register(n, lambda m: None)
        receipt = bus.broadcast("r1", "plan", {"f": 0.5})
        assert receipt == 2  # both accepted at send time
        net.fail_node("r3")  # r3 dies before its delivery event
        sim.run()
        assert receipt.accepted == 2
        assert receipt.delivered == 1
        assert receipt.died_in_flight == 1
        assert bus.drop_counts.get("dead_dst") == 1

    def test_broadcast_counts_synchronous_rejects(self):
        net = OverlayNetwork.full_mesh({("r1", "r2"): 10.0})
        net.add_node("r3")  # isolated: no route from r1
        sim = Simulator()
        bus = MessageBus(sim=sim, router=Router(net))
        for n in ("r1", "r2", "r3"):
            bus.register(n, lambda m: None)
        receipt = bus.broadcast("r1", "plan", None)
        assert receipt == 1  # only r2 accepted
        sim.run()
        assert receipt.delivered == 1
        assert receipt.died_in_flight == 0

    def test_message_metadata(self):
        sim, net, bus = self.make_bus()
        got = []
        bus.register("r2", got.append)
        bus.send("r1", "r2", "kind-x", {"a": 1})
        sim.run()
        (m,) = got
        assert m.src == "r1" and m.dst == "r2"
        assert m.kind == "kind-x"
        assert m.sent_at == 0.0
