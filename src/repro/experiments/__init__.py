"""The evaluation harness: scenarios, runners, and figure reproductions.

* :mod:`repro.experiments.scenarios` -- the paper's exact testbed
  (Sec. VI-A): Region 1 (EC2 Ireland, 6 x m3.medium), Region 2 (EC2
  Frankfurt, 12 x m3.small), Region 3 (private Munich, 4 small VMs);
* :mod:`repro.experiments.runner` -- generic policy x scenario driver,
  including the ML-in-the-loop configuration (profile, train REP-Tree,
  deploy);
* :mod:`repro.experiments.figure3` -- the two-region experiment of Fig. 3;
* :mod:`repro.experiments.figure4` -- the three-region experiment of
  Fig. 4;
* :mod:`repro.experiments.reporting` -- ascii series tables and policy
  verdicts printed by the benchmarks;
* :mod:`repro.experiments.resilience` -- seeded chaos campaigns against
  the hardened distributed control plane (``repro chaos``).
"""

from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.load_sweep import (
    run_load_sweep,
    sweep_manifest,
    sweep_table,
    write_sweep_csv,
)
from repro.experiments.resilience import (
    CAMPAIGNS,
    CampaignResult,
    CampaignSpec,
    recovery_bound_eras,
    report_campaign,
    report_campaign_suite,
    run_campaign,
    run_campaign_suite,
)
from repro.experiments.runner import (
    ExperimentResult,
    compare_policies,
    make_trained_predictor,
    run_policy_experiment,
)
from repro.experiments.scenarios import (
    PAPER_POLICIES,
    three_region_scenario,
    two_region_scenario,
)
from repro.experiments.reporting import (
    assessment_table,
    render_series,
    sparkline,
)

__all__ = [
    "two_region_scenario",
    "three_region_scenario",
    "PAPER_POLICIES",
    "run_policy_experiment",
    "compare_policies",
    "make_trained_predictor",
    "ExperimentResult",
    "run_figure3",
    "run_figure4",
    "run_load_sweep",
    "sweep_table",
    "sweep_manifest",
    "write_sweep_csv",
    "assessment_table",
    "render_series",
    "sparkline",
    "CAMPAIGNS",
    "CampaignResult",
    "CampaignSpec",
    "recovery_bound_eras",
    "report_campaign",
    "run_campaign",
    "report_campaign_suite",
    "run_campaign_suite",
]
