"""Per-request software-anomaly injection.

Sec. VI-A: "We modified the TPC-W implementation to randomly generate
software anomalies at run-time, including memory leaks and unterminated
threads.  Specifically, anomalies were generated with different
probabilities on each VM when receiving a client request -- 10% of requests
generate a memory leak, 5% of requests generate an unterminated thread."

:class:`AnomalyInjector` reproduces exactly this model.  Leak sizes are
drawn from a log-normal (leaks in real applications are bursty: many small
allocations, occasional large ones); each unterminated thread permanently
occupies one thread slot and a small resident-set overhead.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

#: Paper's injection probabilities (Sec. VI-A).
DEFAULT_LEAK_PROBABILITY = 0.10
DEFAULT_THREAD_PROBABILITY = 0.05


class AnomalyEffect(NamedTuple):
    """Aggregate anomaly damage from a batch of requests.

    A named tuple rather than a dataclass: one effect is constructed per
    VM per era (and per request in the DES), and tuple construction is
    roughly half the cost of a frozen dataclass on that hot path.

    Attributes
    ----------
    leaked_mb:
        Total memory leaked (MB).
    stuck_threads:
        Number of new unterminated threads.
    n_requests:
        Size of the batch that produced this effect.
    """

    leaked_mb: float
    stuck_threads: int
    n_requests: int

    def __add__(self, other: "AnomalyEffect") -> "AnomalyEffect":
        return AnomalyEffect(
            self.leaked_mb + other.leaked_mb,
            self.stuck_threads + other.stuck_threads,
            self.n_requests + other.n_requests,
        )


ZERO_EFFECT = AnomalyEffect(0.0, 0, 0)


class AnomalyInjector:
    """Stochastic per-request anomaly generator.

    Parameters
    ----------
    leak_probability:
        Probability a request leaks memory (paper: 0.10).
    thread_probability:
        Probability a request leaves an unterminated thread (paper: 0.05).
    leak_mean_mb:
        Mean size of one leak in MB.
    leak_sigma:
        Log-normal shape parameter of the leak-size distribution.
    thread_overhead_mb:
        Resident memory pinned by each stuck thread (stack + locals).
    rng:
        Dedicated random stream (one per VM, from the VM's child registry).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        leak_probability: float = DEFAULT_LEAK_PROBABILITY,
        thread_probability: float = DEFAULT_THREAD_PROBABILITY,
        leak_mean_mb: float = 0.8,
        leak_sigma: float = 0.5,
        thread_overhead_mb: float = 0.25,
    ) -> None:
        if not 0.0 <= leak_probability <= 1.0:
            raise ValueError("leak_probability must be in [0, 1]")
        if not 0.0 <= thread_probability <= 1.0:
            raise ValueError("thread_probability must be in [0, 1]")
        if leak_mean_mb <= 0:
            raise ValueError("leak_mean_mb must be positive")
        if leak_sigma < 0:
            raise ValueError("leak_sigma must be non-negative")
        if thread_overhead_mb < 0:
            raise ValueError("thread_overhead_mb must be non-negative")
        self._rng = rng
        self.leak_probability = float(leak_probability)
        self.thread_probability = float(thread_probability)
        self.leak_mean_mb = float(leak_mean_mb)
        self.leak_sigma = float(leak_sigma)
        self.thread_overhead_mb = float(thread_overhead_mb)
        # log-normal with the requested *mean*: mu = ln(mean) - sigma^2/2
        self._leak_mu = np.log(self.leak_mean_mb) - 0.5 * self.leak_sigma**2
        # bound methods skip the per-call attribute chase on the hot path
        self._binomial = rng.binomial
        self._lognormal = rng.lognormal

    # ------------------------------------------------------------------ #

    def inject(self, n_requests: int) -> AnomalyEffect:
        """Sample the anomaly damage done by ``n_requests`` requests.

        Vectorised: counts are binomial, leak sizes a single log-normal
        batch.  Suitable both for per-request DES (``n_requests=1``) and for
        the fluid per-era model (``n_requests`` in the thousands).
        """
        if n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        if n_requests == 0:
            return ZERO_EFFECT
        n_leaks = int(self._binomial(n_requests, self.leak_probability))
        n_threads = int(
            self._binomial(n_requests, self.thread_probability)
        )
        if n_leaks:
            sizes = self._lognormal(
                self._leak_mu, self.leak_sigma, size=n_leaks
            )
            if n_leaks < 8:
                # sequential Python sum: bit-identical to ndarray.sum at
                # these sizes (numpy's pairwise kernel degenerates to the
                # same left-to-right loop below 8 elements) and ~3x
                # cheaper -- this branch covers the DES (n=1) and every
                # realistic per-era batch
                leaked = float(sum(sizes.tolist()))
            else:
                leaked = float(sizes.sum())
        else:
            leaked = 0.0
        leaked += n_threads * self.thread_overhead_mb
        return AnomalyEffect(leaked, n_threads, n_requests)

    def expected_leak_rate_mb(self, request_rate: float) -> float:
        """Mean MB leaked per second at the given request rate.

        The mean-field quantity that drives a VM's expected MTTF:
        ``rate * (p_leak * E[leak] + p_thread * thread_overhead)``.
        """
        if request_rate < 0:
            raise ValueError("request_rate must be >= 0")
        per_request = (
            self.leak_probability * self.leak_mean_mb
            + self.thread_probability * self.thread_overhead_mb
        )
        return request_rate * per_request

    def expected_thread_rate(self, request_rate: float) -> float:
        """Mean unterminated threads created per second."""
        if request_rate < 0:
            raise ValueError("request_rate must be >= 0")
        return request_rate * self.thread_probability
