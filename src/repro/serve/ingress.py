"""Hand-rolled asyncio HTTP/1.1 ingress in front of an :class:`AcmService`.

Stdlib-only (the container bakes no aiohttp): a minimal HTTP/1.1 server
on :func:`asyncio.start_server` with keep-alive, request-line + header
parsing, and ``Content-Length`` bodies.  It implements exactly the
surface the load generator and a Prometheus scraper need:

========================  ==========================================
``GET /``                 data path: admit + forward one request
                          (``?region=<name>`` picks the arrival LB;
                          omitted = round-robin)
``GET /healthz``          liveness (always 200 while the loop runs)
``GET /metrics``          live Prometheus text from :mod:`repro.obs`
``GET /plan``             admin: the live forward plan (JSON)
``GET /regions``          admin: per-region liveness/MTTR (JSON)
``POST /chaos/blackout``  admin: ``?region=`` region blackout
``POST /chaos/heal``      admin: ``?region=`` heal
``GET /slo``              admin: SLO gate state (JSON)
``POST /slo/kill``        admin: ``?on=0|1`` deployment kill switch
``POST /slo/override``    admin: ``?level=normal|degraded|none`` pin
========================  ==========================================

A 429 shed response whose body carries ``retry_after_s`` (both the
token-bucket and SLO sheds do) is rendered with the matching
``Retry-After`` header, per the standard backpressure contract.

The chaos endpoints exist so load tests (and CI) can fault a *live*
deployment over the same wire they load it on -- the in-process
:class:`~repro.chaos.engine.ChaosEngine` does the actual damage.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import AcmService

#: Pragmatic caps: a request line or header block beyond this is junk.
MAX_LINE = 8192
MAX_HEADERS = 64

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpIngress:
    """Asyncio HTTP server bound to one :class:`AcmService`."""

    def __init__(
        self, service: AcmService, host: str = "127.0.0.1", port: int = 8080
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # resolve the ephemeral port for callers that asked for 0
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # connection loop
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, content_type, body, extra = self._dispatch(
                    method, target
                )
                writer.write(
                    self._render(status, content_type, body, keep_alive, extra)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict] | None:
        """Parse one request; None on clean EOF or garbage."""
        try:
            line = await reader.readline()
        except (ConnectionError, ValueError):
            return None
        if not line:
            return None
        if len(line) > MAX_LINE:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADERS):
            line = await reader.readline()
            if not line or len(line) > MAX_LINE:
                return None
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > 0:
            # bodies are accepted and discarded; the API is query-driven
            await reader.readexactly(min(length, MAX_LINE))
        return method, target, headers

    def _render(
        self,
        status: int,
        content_type: str,
        body: bytes,
        keep_alive: bool,
        extra_headers: dict | None = None,
    ) -> bytes:
        reason = _STATUS_TEXT.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def _dispatch(
        self, method: str, target: str
    ) -> tuple[int, str, bytes, dict | None]:
        url = urlsplit(target)
        path = url.path
        query = parse_qs(url.query)
        try:
            if path == "/" or path == "/route":
                if method not in ("GET", "POST"):
                    return self._json(405, {"error": "method"})
                region = query.get("region", [None])[0]
                status, body = self.service.handle_request(region)
                headers = None
                if status == 429 and "retry_after_s" in body:
                    headers = {"Retry-After": str(int(body["retry_after_s"]))}
                return self._json(status, body, headers)
            if path == "/healthz":
                return self._json(
                    200,
                    {
                        "status": "ok",
                        "era": self.service.plan_snapshot()["era"],
                        "clock_now": self.service.clock.now,
                    },
                )
            if path == "/metrics":
                text = self.service.metrics_text()
                return (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.encode("utf-8"),
                    None,
                )
            if path == "/plan":
                return self._json(200, self.service.plan_snapshot())
            if path == "/regions":
                return self._json(200, self.service.regions_snapshot())
            if path == "/chaos/blackout" or path == "/chaos/heal":
                if method != "POST":
                    return self._json(405, {"error": "POST required"})
                region = query.get("region", [None])[0]
                if region is None or region not in self.service.regions:
                    return self._json(
                        400, {"error": f"unknown region {region!r}"}
                    )
                if path.endswith("blackout"):
                    self.service.chaos.region_blackout(region)
                else:
                    self.service.chaos.region_heal(region)
                return self._json(200, {"ok": True, "region": region})
            if path == "/slo":
                if method != "GET":
                    return self._json(405, {"error": "method"})
                return self._json(200, self.service.slo_snapshot())
            if path == "/slo/kill" or path == "/slo/override":
                if method != "POST":
                    return self._json(405, {"error": "POST required"})
                if path.endswith("kill"):
                    raw = query.get("on", ["1"])[0]
                    if raw not in ("0", "1"):
                        return self._json(
                            400, {"error": f"bad on={raw!r} (want 0|1)"}
                        )
                    ok = self.service.slo_kill(raw == "1")
                else:
                    level = query.get("level", [None])[0]
                    if level in (None, "none"):
                        level = None
                    try:
                        ok = self.service.slo_override(level)
                    except ValueError as exc:
                        return self._json(400, {"error": str(exc)})
                if not ok:
                    return self._json(400, {"error": "slo disabled"})
                return self._json(200, {"ok": True})
            return self._json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            return self._json(500, {"error": f"{type(exc).__name__}: {exc}"})

    @staticmethod
    def _json(
        status: int, payload: dict, headers: dict | None = None
    ) -> tuple[int, str, bytes, dict | None]:
        return (
            status,
            "application/json",
            json.dumps(payload).encode("utf-8"),
            headers,
        )


async def serve_forever(
    service: AcmService,
    host: str = "127.0.0.1",
    port: int = 8080,
    duration_s: float | None = None,
    on_ready=None,
) -> HttpIngress:
    """Boot ingress + control loop; run until the clock stops.

    ``duration_s`` bounds the run in clock seconds (None = until
    ``service.shutdown()`` or an outside ``clock.stop()``).  ``on_ready``
    (if given) is called with the bound :class:`HttpIngress` once the
    port is listening -- used by tests and the CLI to print the URL.
    """
    ingress = HttpIngress(service, host, port)
    await ingress.start()
    service.start()
    if on_ready is not None:
        on_ready(ingress)
    try:
        await service.clock.run_for(duration_s)
    finally:
        await ingress.stop()
    return ingress
