"""Reliable, exactly-once-delivery messaging over the unreliable bus.

:class:`~repro.overlay.messaging.MessageBus` is a datagram overlay: it
drops messages on partitions, on in-flight crashes, and (under chaos
injection) at random.  The MAPE loop's control traffic -- slave-to-leader
``lastRMTTF`` reports and leader-to-slave fraction pushes -- must survive
that, so :class:`ReliableChannel` layers the classic end-to-end recipe on
top:

* every application message is wrapped in an envelope carrying a
  channel-unique id and sent as an ``rc-data`` bus message;
* the receiver always answers with an ``rc-ack`` (acks themselves may be
  lost) and de-duplicates by ``(src, id)``, so the application handler
  sees each message **at most once** even when retries race an ack;
* the sender retries on ack timeout with exponential backoff plus a
  deterministic jitter drawn from a dedicated RNG stream (replayable runs
  stay bit-identical), up to ``max_retries`` retries;
* exhausted sends resolve to ``failed`` and invoke ``on_give_up`` -- the
  caller decides how to degrade (the control loop holds its last-known
  good plan; see :mod:`repro.core.degradation`).

Send outcomes are first-class: :meth:`send` returns a :class:`SendHandle`
whose ``status`` resolves to ``"acked"`` or ``"failed"`` as the simulator
runs, and :attr:`ReliableChannel.stats` aggregates the telemetry the
resilience campaigns report (retries, duplicates, give-ups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.overlay.messaging import Message, MessageBus

if TYPE_CHECKING:
    from repro.obs.metrics import Counter
    from repro.obs.telemetry import Telemetry
    from repro.sim.clock import Clock

#: Bus message kind carrying an application payload envelope.
DATA_KIND = "rc-data"
#: Bus message kind carrying an acknowledgement.
ACK_KIND = "rc-ack"


@dataclass(slots=True)
class SendHandle:
    """Tracks one reliable send through retries to its final outcome."""

    msg_id: int
    src: str
    dst: str
    kind: str
    status: str = "pending"  #: ``pending`` | ``acked`` | ``failed``
    attempts: int = 0
    acked_at: float | None = None

    @property
    def resolved(self) -> bool:
        return self.status != "pending"


@dataclass(slots=True)
class ChannelStats:
    """Send-outcome telemetry of one :class:`ReliableChannel`.

    The integer attributes stay authoritative (campaign reports read them
    directly); when bound to a metrics registry via :meth:`bind`, every
    :meth:`bump` also increments the matching registry counter, so the
    same numbers appear in `obs` exports without double bookkeeping.
    """

    sent: int = 0  #: application messages submitted
    attempts: int = 0  #: bus transmissions (first tries + retries)
    retries: int = 0  #: retransmissions after an ack timeout
    acked: int = 0  #: sends that resolved to ``acked``
    gave_up: int = 0  #: sends that exhausted their retries
    duplicates: int = 0  #: received data suppressed by dedup
    acks_sent: int = 0  #: acknowledgements transmitted
    _mirror: "dict[str, Counter] | None" = field(
        default=None, repr=False, compare=False
    )

    FIELDS = (
        "sent",
        "attempts",
        "retries",
        "acked",
        "gave_up",
        "duplicates",
        "acks_sent",
    )

    def bind(self, counters: "dict[str, Counter]") -> None:
        """Mirror future bumps into the given registry counters."""
        self._mirror = counters

    def bump(self, name: str, amount: int = 1) -> None:
        setattr(self, name, getattr(self, name) + amount)
        if self._mirror is not None:
            counter = self._mirror.get(name)
            if counter is not None:
                counter.inc(amount)

    def as_dict(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "attempts": self.attempts,
            "retries": self.retries,
            "acked": self.acked,
            "gave_up": self.gave_up,
            "duplicates": self.duplicates,
            "acks_sent": self.acks_sent,
        }


class ReliableChannel:
    """Ack/retry/dedup messaging shared by every node on one bus.

    One channel instance serves all nodes of an overlay (mirroring how
    :class:`~repro.overlay.state_sync.GossipSync` is structured): each
    node registers its application handler with :meth:`register`, and the
    owner of the per-node bus registration chains
    :meth:`make_bus_handler` into its demultiplexer (or calls
    :meth:`attach` when the channel owns the registration outright).

    Parameters
    ----------
    bus:
        The unreliable transport.
    rng:
        Jitter stream (use a dedicated
        :meth:`repro.sim.rng.RngRegistry.stream`, e.g.
        ``rngs.stream("reliable/jitter")``, so replays are bit-identical).
    max_retries:
        Retransmissions after the first attempt before giving up.
    base_timeout_s:
        Ack timeout of the first attempt; doubles each retry
        (``backoff_factor``).
    jitter_s:
        Uniform jitter added to every timeout (decorrelates retry storms
        without breaking determinism).
    on_give_up:
        Optional callback invoked with the :class:`SendHandle` of every
        send that exhausts its retries.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade.  When
        enabled, :attr:`stats` mirrors into registry counters
        (``channel_<field>_total``), every send records an async
        ``channel`` span from submission to ack/give-up, and give-ups
        leave a flight event.
    clock:
        Time source for the retry/backoff timers and ``acked_at``
        stamps.  Defaults to the bus's simulator (virtual time); the
        wall-clock serve runtime passes its
        :class:`~repro.serve.clock.WallClock` so the same bounded-retry
        ladder runs on real elapsed seconds.
    """

    def __init__(
        self,
        bus: MessageBus,
        rng: np.random.Generator,
        max_retries: int = 3,
        base_timeout_s: float = 0.25,
        backoff_factor: float = 2.0,
        jitter_s: float = 0.05,
        on_give_up: Callable[[SendHandle], None] | None = None,
        telemetry: "Telemetry | None" = None,
        clock: "Clock | None" = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base_timeout_s <= 0:
            raise ValueError("base_timeout_s must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        self.bus = bus
        self.clock: "Clock" = clock if clock is not None else bus.sim
        # Back-compat alias: existing callers and tests read `.sim`.
        self.sim = self.clock
        self.rng = rng
        self.max_retries = int(max_retries)
        self.base_timeout_s = float(base_timeout_s)
        self.backoff_factor = float(backoff_factor)
        self.jitter_s = float(jitter_s)
        self.on_give_up = on_give_up
        self.stats = ChannelStats()
        self._obs = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        if self._obs is not None:
            self.stats.bind(
                {
                    name: self._obs.counter(f"channel_{name}_total")
                    for name in ChannelStats.FIELDS
                }
            )
        #: msg_id -> open async ``channel`` span (telemetry only)
        self._obs_spans: dict[int, Any] = {}
        self._next_id = 0
        self._pending: dict[int, tuple[SendHandle, str, Any]] = {}
        self._timers: dict[int, Any] = {}
        self._app_handlers: dict[str, Callable[[Message], None]] = {}
        #: per receiving node: (src, msg_id) pairs already delivered
        self._seen: dict[str, set[tuple[str, int]]] = {}

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def register(self, node: str, handler: Callable[[Message], None]) -> None:
        """Set ``node``'s application handler (called at most once per
        message, with the unwrapped application :class:`Message`)."""
        self._app_handlers[node] = handler

    def make_bus_handler(self, node: str) -> Callable[[Message], None]:
        """Bus handler for ``node``; chain it from a demultiplexer for
        the :data:`DATA_KIND` and :data:`ACK_KIND` message kinds."""

        def handle(msg: Message) -> None:
            if msg.kind == DATA_KIND:
                self._on_data(node, msg)
            elif msg.kind == ACK_KIND:
                self._on_ack(msg)

        return handle

    def attach(self, node: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` and give the channel the node's bus
        registration (standalone use, no demultiplexer)."""
        self.register(node, handler)
        self.bus.register(node, self.make_bus_handler(node))

    # ------------------------------------------------------------------ #
    # sending
    # ------------------------------------------------------------------ #

    def send(self, src: str, dst: str, kind: str, payload: Any) -> SendHandle:
        """Reliably send ``payload``; returns the tracking handle.

        The handle's ``status`` is ``pending`` until the simulator runs
        the delivery/ack/timeout events.
        """
        handle = SendHandle(
            msg_id=self._next_id, src=src, dst=dst, kind=kind
        )
        self._next_id += 1
        self.stats.bump("sent")
        if self._obs is not None:
            self._obs_spans[handle.msg_id] = self._obs.open_span(
                f"send {src}->{dst}",
                "channel",
                msg_kind=kind,
                src=src,
                dst=dst,
            )
        self._pending[handle.msg_id] = (handle, kind, payload)
        self._attempt(handle, kind, payload)
        return handle

    def pending_count(self) -> int:
        """Sends still awaiting an ack or final timeout."""
        return len(self._pending)

    def _attempt(self, handle: SendHandle, kind: str, payload: Any) -> None:
        handle.attempts += 1
        self.stats.bump("attempts")
        envelope = {"id": handle.msg_id, "kind": kind, "payload": payload}
        self.bus.send(handle.src, handle.dst, DATA_KIND, envelope)
        timeout = self.base_timeout_s * (
            self.backoff_factor ** (handle.attempts - 1)
        )
        if self.jitter_s > 0:
            timeout += float(self.rng.uniform(0.0, self.jitter_s))
        self._timers[handle.msg_id] = self.clock.schedule_after(
            timeout,
            lambda: self._on_timeout(handle),
            label=f"rc-timer:{handle.kind}",
        )

    def _on_timeout(self, handle: SendHandle) -> None:
        entry = self._pending.get(handle.msg_id)
        if entry is None or handle.resolved:
            return
        self._timers.pop(handle.msg_id, None)
        if handle.attempts > self.max_retries:
            handle.status = "failed"
            self.stats.bump("gave_up")
            del self._pending[handle.msg_id]
            if self._obs is not None:
                span = self._obs_spans.pop(handle.msg_id, None)
                if span is not None:
                    self._obs.close_span(
                        span, outcome="failed", attempts=handle.attempts
                    )
                self._obs.event(
                    "channel.give_up",
                    src=handle.src,
                    dst=handle.dst,
                    msg_kind=handle.kind,
                    attempts=handle.attempts,
                )
            if self.on_give_up is not None:
                self.on_give_up(handle)
            return
        self.stats.bump("retries")
        self._attempt(handle, entry[1], entry[2])

    # ------------------------------------------------------------------ #
    # receiving
    # ------------------------------------------------------------------ #

    def _on_data(self, node: str, msg: Message) -> None:
        envelope = msg.payload
        msg_id = envelope["id"]
        # Always ack, even duplicates: the previous ack may have been lost.
        self.stats.bump("acks_sent")
        self.bus.send(node, msg.src, ACK_KIND, {"id": msg_id})
        seen = self._seen.setdefault(node, set())
        key = (msg.src, msg_id)
        if key in seen:
            self.stats.bump("duplicates")
            return
        seen.add(key)
        handler = self._app_handlers.get(node)
        if handler is not None:
            handler(
                Message(
                    src=msg.src,
                    dst=node,
                    kind=envelope["kind"],
                    payload=envelope["payload"],
                    sent_at=msg.sent_at,
                )
            )

    def _on_ack(self, msg: Message) -> None:
        entry = self._pending.pop(msg.payload["id"], None)
        if entry is None:
            return  # duplicate/stale ack
        handle = entry[0]
        handle.status = "acked"
        handle.acked_at = self.clock.now
        self.stats.bump("acked")
        if self._obs is not None:
            span = self._obs_spans.pop(handle.msg_id, None)
            if span is not None:
                self._obs.close_span(
                    span, outcome="acked", attempts=handle.attempts
                )
        timer = self._timers.pop(handle.msg_id, None)
        if timer is not None:
            timer.cancel()
