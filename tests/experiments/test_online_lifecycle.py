"""End-to-end tests for the online model lifecycle.

Three properties the ISSUE pins down:

* **disabled = invisible**: a run without the lifecycle is bit-identical
  to the pre-lifecycle code path, and even a *collect-only* lifecycle
  (observing every era, never retraining) leaves every trace untouched;
* **retraining pays**: on the drifting-anomaly scenario, one in-sim
  retrain measurably reduces the deployed model's MAPE on the realized
  labels;
* **the fallback engages**: when a chaos-corrupted predictor starts
  serving stale answers, the drift tracker notices and tightens the
  conservative margin through the live wrapper chain.
"""

import numpy as np
import pytest

from repro.chaos.predictor import CorruptiblePredictor
from repro.core.manager import AcmManager, RegionSpec
from repro.experiments.online import run_retrain_vs_frozen
from repro.experiments.runner import run_policy_experiment
from repro.experiments.scenarios import two_region_scenario
from repro.ml.online.lifecycle import OnlineLifecycleConfig
from repro.obs.telemetry import Telemetry
from repro.pcam.predictor import (
    ConservativeRttfPredictor,
    OracleRttfPredictor,
)


class TestLifecycleDisabledIsInvisible:
    def test_collect_only_lifecycle_leaves_traces_bit_identical(self):
        plain = run_policy_experiment(
            two_region_scenario(), "available-resources", eras=12, seed=3
        )
        observed = run_policy_experiment(
            two_region_scenario(),
            "available-resources",
            eras=12,
            seed=3,
            online=OnlineLifecycleConfig(),  # collect + score, never retrain
        )
        assert plain.online_stats is None
        assert observed.online_stats is not None
        assert plain.traces.names() == observed.traces.names()
        for name in plain.traces.names():
            a = plain.traces.series(name)
            b = observed.traces.series(name)
            np.testing.assert_array_equal(a.times, b.times, err_msg=name)
            np.testing.assert_array_equal(a.values, b.values, err_msg=name)

    def test_online_retrain_zero_resolves_to_no_lifecycle(self):
        plain = run_policy_experiment(
            two_region_scenario(), "available-resources", eras=12, seed=3
        )
        result = run_policy_experiment(
            two_region_scenario(),
            "available-resources",
            eras=12,
            seed=3,
            online_retrain=0,
        )
        assert result.online_stats is None
        # the online keys are only stamped when the lifecycle is on, so
        # pre-lifecycle manifest digests are preserved
        assert result.manifest.config_digest == plain.manifest.config_digest
        enabled = run_policy_experiment(
            two_region_scenario(),
            "available-resources",
            eras=12,
            seed=3,
            online_retrain=20,
        )
        assert enabled.manifest.config_digest != plain.manifest.config_digest


class TestRetrainVsFrozen:
    def test_one_in_sim_retrain_reduces_model_mape(self):
        cmp = run_retrain_vs_frozen(
            eras=40,
            seed=7,
            drift_factor=2.5,
            retrain_interval_eras=12,
            min_new_samples=16,
            clients=120,
            profile_rates=(4.0, 8.0, 14.0),
            runs_per_rate=2,
        )
        assert cmp.retrains >= 1
        # the deployed (frozen-regime) model's error on the realized
        # drifted labels vs the retrained model's CV error on the same data
        assert cmp.post_retrain_mape < cmp.pre_retrain_mape
        assert cmp.improved
        history = cmp.online_stats["retrain_history"]
        assert history[0]["era"] == 12
        assert history[0]["samples"] >= 16
        # the frozen comparator collected labels but never retrained
        assert cmp.frozen_stats["retrains"] == 0
        assert cmp.frozen_stats["lives_total"] > 0
        assert cmp.table()  # renders without crashing


class TestChaosDriftFallback:
    def _build(self, **config):
        corruptible = CorruptiblePredictor(OracleRttfPredictor())
        predictor = ConservativeRttfPredictor(corruptible, margin=0.9)
        telemetry = Telemetry(enabled=True)
        manager = AcmManager(
            regions=[RegionSpec("r1", "private.small", 5, 3, 100)],
            policy="available-resources",
            seed=13,
            era_s=30.0,
            predictor=predictor,
            online=OnlineLifecycleConfig(
                drift_threshold=0.6,
                min_drift_lives=2,
                drift_window_lives=4,
                margin_tighten=0.7,
                margin_floor=0.3,
                **config,
            ),
            telemetry=telemetry,
        )
        return manager, corruptible, predictor, telemetry

    def test_stale_predictor_engages_margin_fallback(self):
        manager, corruptible, predictor, telemetry = self._build()
        lifecycle = manager.online_lifecycle
        manager.run(15)
        # healthy phase: proactive rejuvenations, censored drift ~0
        assert lifecycle.fallbacks == 0
        assert predictor.margin == pytest.approx(0.9)
        corruptible.set_mode("stale")
        manager.run(40)
        # stale predictions ride through degradation -> hard failures ->
        # exact drift scores -> the fallback tightens the live margin
        assert lifecycle.fallbacks >= 1
        assert predictor.margin < 0.9
        assert predictor.margin >= 0.3  # floored
        snap = telemetry.snapshot()
        counters = {m["name"] for m in snap["metrics"]["counters"]}
        assert "ml_drift_fallbacks_total" in counters
        kinds = {e["kind"] for e in snap["events"]["events"]}
        assert "ml.drift_fallback" in kinds

    def test_freeze_on_drift_freezes_retraining(self):
        manager, corruptible, _, _ = self._build(freeze_on_drift=True)
        manager.run(15)
        corruptible.set_mode("stale")
        manager.run(40)
        lifecycle = manager.online_lifecycle
        assert lifecycle.fallbacks >= 1
        assert lifecycle.frozen
