"""ABL-* -- ablations of the design parameters the paper leaves implicit.

* ABL-BETA: the Eq. (1) EWMA weight trades reaction speed against
  stability of Policy 2;
* ABL-K: the Eq. (6)-(8) scaling factor k controls Policy 3's step size;
* ABL-HET: the heterogeneity degree drives Policy 1's divergence -- with
  *homogeneous* regions Policy 1 is fine (the paper: "more suitable for
  less-heterogeneous environments");
* ABL-ML: oracle vs trained REP-Tree vs noisy-oracle predictors -- the
  policy conclusions survive realistic prediction error.
"""

import numpy as np
import pytest

from repro.core import AcmManager, ExplorationPolicy, RegionSpec, assess_policy_run
from repro.pcam.predictor import OracleRttfPredictor
from repro.sim.rng import RngRegistry


def _two_region(policy, seed=9, beta=0.5, predictor=None, hetero=True, eras=160):
    regions = [
        RegionSpec("a", "m3.medium", 6, 4, 160),
        RegionSpec(
            "b",
            "private.small" if hetero else "m3.medium",
            6 if hetero else 6,
            4,
            96,
        ),
    ]
    mgr = AcmManager(
        regions=regions, policy=policy, seed=seed, beta=beta,
        predictor=predictor,
    )
    mgr.run(eras)
    return assess_policy_run(
        policy if isinstance(policy, str) else policy.name, mgr.traces
    )


def test_beta_sweep(benchmark):
    """ABL-BETA: larger beta reacts faster; all betas still converge P2."""
    rows = {}
    for beta in (0.1, 0.3, 0.5, 0.9):
        rows[beta] = _two_region("available-resources", beta=beta)
    print("\nbeta sweep (Policy 2):")
    for beta, a in rows.items():
        print(f"  beta={beta:.1f}  {a.row()}")
    for beta, a in rows.items():
        assert a.converged, f"beta={beta} must still converge"
        assert a.sla_met
    # smoothing reduces fraction oscillation: beta=0.1 at most as jittery
    # as beta=0.9
    assert (
        rows[0.1].fraction_oscillation <= rows[0.9].fraction_oscillation * 1.1
    )
    benchmark(lambda: _two_region("available-resources", beta=0.5, eras=30))


def test_k_sweep(benchmark):
    """ABL-K: Policy 3 converges across a range of k; k damps step size."""
    rows = {}
    for k in (0.5, 0.8, 1.0):
        rows[k] = _two_region(ExplorationPolicy(k=k))
    print("\nk sweep (Policy 3):")
    for k, a in rows.items():
        print(f"  k={k:.1f}  {a.row()}")
    for k, a in rows.items():
        assert a.sla_met
    assert rows[1.0].converged
    benchmark(lambda: _two_region(ExplorationPolicy(k=1.0), eras=30))


def test_era_length_sweep(benchmark):
    """ABL-ERA: the control period.  Policy 2 converges across a wide
    range of era lengths; very long eras only slow the reaction."""
    rows = {}
    for era_s in (10.0, 30.0, 90.0):
        mgr = AcmManager(
            regions=[
                RegionSpec("a", "m3.medium", 6, 4, 160),
                RegionSpec("b", "private.small", 6, 4, 96),
            ],
            policy="available-resources",
            seed=9,
            era_s=era_s,
        )
        # same simulated horizon for every era length
        mgr.run(int(4800 / era_s))
        rows[era_s] = assess_policy_run("available-resources", mgr.traces)
    print("\nera-length sweep (Policy 2):")
    for era_s, a in rows.items():
        print(f"  era={era_s:5.0f}s  {a.row()}")
    for era_s, a in rows.items():
        assert a.converged, f"era={era_s}"
        assert a.sla_met
    benchmark(
        lambda: AcmManager(
            regions=[RegionSpec("a", "m3.medium", 4, 3, 64)],
            policy="uniform",
            seed=9,
            era_s=30.0,
        ).run(20)
    )


def test_heterogeneity_sweep(benchmark):
    """ABL-HET: Policy 1 is fine on homogeneous regions, fails on
    heterogeneous ones -- the paper's core motivation."""
    homo = _two_region("sensible-routing", hetero=False)
    hetero = _two_region("sensible-routing", hetero=True)
    print("\nheterogeneity sweep (Policy 1):")
    print(f"  homogeneous   {homo.row()}")
    print(f"  heterogeneous {hetero.row()}")
    assert homo.rmttf_spread < 0.15, "P1 must balance equal regions"
    assert hetero.rmttf_spread > 0.25, "P1 must diverge on unequal regions"
    assert hetero.rmttf_spread > 2 * homo.rmttf_spread
    benchmark(lambda: _two_region("sensible-routing", hetero=False, eras=30))


def test_gamma_sweep(benchmark):
    """ABL-GAMMA: the sensible-routing exponent.  gamma=1 is the paper's
    Eq. (2).  The fixed point has RMTTF ~ C^(1/(1+gamma)): larger gamma
    narrows the steady RMTTF gap but amplifies the feedback gain, so the
    fractions oscillate harder -- the policy trades one failure mode
    (divergence) for another (thrash) and never matches Policy 2."""
    from repro.core import SensibleRoutingPolicy

    rows = {}
    for gamma in (0.5, 1.0, 2.0):
        rows[gamma] = _two_region(SensibleRoutingPolicy(gamma=gamma))
    print("\ngamma sweep (Policy 1 generalisation):")
    for gamma, a in rows.items():
        print(f"  gamma={gamma:.1f}  {a.row()}")
    assert rows[1.0].rmttf_spread > 0.2  # the paper's divergence
    # spread shrinks with gamma (RMTTF ~ C^(1/(1+gamma)))...
    assert (
        rows[0.5].rmttf_spread
        > rows[1.0].rmttf_spread
        > rows[2.0].rmttf_spread
    )
    # ...but oscillation grows with gamma (feedback gain)
    assert (
        rows[2.0].fraction_oscillation
        > rows[1.0].fraction_oscillation
        > rows[0.5].fraction_oscillation
    )
    # and even gamma=2 cannot match Policy 2's tightness
    p2 = _two_region("available-resources")
    assert rows[2.0].rmttf_spread > 3 * p2.rmttf_spread
    benchmark(lambda: _two_region(SensibleRoutingPolicy(gamma=2.0), eras=30))


def test_rejuvenation_discipline_ablation(benchmark):
    """ABL-REJUV: the motivation for PCAM's predictive rejuvenation.

    Compares, at the full-system level, the predictive RTTF-threshold
    discipline against the literature baselines: time-based (periodic)
    rejuvenation and no proactive rejuvenation at all.
    """
    from repro.core.manager import AcmManager
    from repro.pcam import (
        NoRejuvenation,
        PeriodicRejuvenation,
        RttfThresholdRejuvenation,
    )

    def run(discipline):
        mgr = AcmManager(
            regions=[
                RegionSpec("a", "m3.medium", 6, 4, 160),
                RegionSpec("b", "private.small", 6, 4, 96),
            ],
            policy="available-resources",
            seed=19,
        )
        for vmc in mgr.loop.vmcs.values():
            vmc.discipline = discipline
        mgr.run(160)
        fails = mgr.traces.series("failures").values.sum()
        rejuv = mgr.traces.series("rejuvenations").values.sum()
        rt = mgr.traces.series("response_time").mean()
        return fails, rejuv, rt

    rows = {
        "predictive (PCAM)": run(RttfThresholdRejuvenation(240.0)),
        "periodic 300s": run(PeriodicRejuvenation(300.0)),
        "periodic 2000s": run(PeriodicRejuvenation(2000.0)),
        "none (reactive)": run(NoRejuvenation()),
    }
    print("\nrejuvenation discipline ablation (Policy 2, 2 regions):")
    for tag, (fails, rejuv, rt) in rows.items():
        print(
            f"  {tag:<18} failures={fails:4.0f} rejuvenations={rejuv:4.0f} "
            f"rt={rt * 1000:6.1f}ms"
        )
    assert rows["predictive (PCAM)"][0] == 0, "predictive must avoid failures"
    assert rows["none (reactive)"][0] > 0, "no-rejuvenation must crash VMs"
    assert rows["periodic 2000s"][0] > 0, "mistuned periodic must crash VMs"
    benchmark(lambda: run(RttfThresholdRejuvenation(240.0)))


def test_trend_feature_ablation(benchmark):
    """ABL-TREND: level-only vs level+slope REP-Tree in the loop.

    Both configurations must preserve Policy 2's convergence; the trend
    model must at least match the level model's training skill (F2PM's
    derived-features motivation)."""
    from repro.experiments.runner import make_trained_predictor

    level = make_trained_predictor(
        ["m3.medium", "private.small"], seed=13, use_trend_features=False
    )
    trend = make_trained_predictor(
        ["m3.medium", "private.small"], seed=13, use_trend_features=True
    )
    print("\ntrend-feature ablation (trained REP-Tree):")
    print(f"  level-only : {level.model.report}")
    print(f"  level+slope: {trend.model.report}")
    assert trend.model.report.r2 > 0.5
    assert trend.model.report.rmse < level.model.report.rmse * 1.2

    rows = {}
    for tag, predictor in (("level", level), ("trend", trend)):
        rows[tag] = _two_region("available-resources", predictor=predictor)
        print(f"  in-loop {tag:<6} {rows[tag].row()}")
    for tag, a in rows.items():
        assert a.sla_met, tag
        assert a.rmttf_spread < 0.15, tag
    benchmark(
        lambda: make_trained_predictor(
            ["private.small"],
            seed=13,
            profile_rates=(5.0, 12.0),
            runs_per_rate=1,
            use_trend_features=True,
        )
    )


def test_predictor_noise_ablation(benchmark, trained_reptree_predictor):
    """ABL-ML: Policy 2 keeps its convergence property under (a) oracle,
    (b) trained REP-Tree, (c) 20%-noise oracle predictions."""
    rngs = RngRegistry(seed=77)
    noisy = OracleRttfPredictor(
        noise_std=0.2, rng=rngs.stream("noise")
    )
    rows = {
        "oracle": _two_region("available-resources"),
        "rep-tree": _two_region(
            "available-resources", predictor=trained_reptree_predictor
        ),
        "noisy-oracle-20%": _two_region(
            "available-resources", predictor=noisy
        ),
    }
    print("\npredictor ablation (Policy 2):")
    for tag, a in rows.items():
        print(f"  {tag:<18} {a.row()}")
    for tag, a in rows.items():
        assert a.sla_met, tag
        assert a.rmttf_spread < 0.15, f"{tag}: spread {a.rmttf_spread}"
    benchmark(
        lambda: _two_region(
            "available-resources", predictor=noisy, eras=30
        )
    )
