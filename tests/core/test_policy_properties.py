"""Property-based tests: every policy must preserve the simplex invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AvailableResourcesPolicy,
    ExplorationPolicy,
    SensibleRoutingPolicy,
    UniformPolicy,
    normalize_fractions,
)

ALL_POLICIES = [
    SensibleRoutingPolicy,
    AvailableResourcesPolicy,
    lambda: ExplorationPolicy(k=1.0),
    lambda: ExplorationPolicy(k=0.3),
    UniformPolicy,
]


@st.composite
def policy_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    raw_prev = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=n,
            max_size=n,
        )
    )
    prev = np.asarray(raw_prev)
    prev = prev / prev.sum()
    rmttf = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e6),
                min_size=n,
                max_size=n,
            )
        )
    )
    rate = draw(st.floats(min_value=0.0, max_value=1e4))
    return prev, rmttf, rate


@settings(max_examples=60, deadline=None)
@given(inputs=policy_inputs(), policy_idx=st.integers(0, len(ALL_POLICIES) - 1))
def test_policies_output_simplex_points(inputs, policy_idx):
    prev, rmttf, rate = inputs
    policy = ALL_POLICIES[policy_idx]()
    f = policy.compute(prev, rmttf, rate)
    assert f.shape == prev.shape
    assert np.all(f >= 0)
    assert f.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(np.isfinite(f))


@settings(max_examples=60, deadline=None)
@given(inputs=policy_inputs())
def test_policies_respect_min_fraction_floor(inputs):
    prev, rmttf, rate = inputs
    if prev.size * 1e-3 >= 1.0:
        return
    for factory in ALL_POLICIES:
        f = factory().compute(prev, rmttf, rate)
        assert np.all(f >= 1e-3 - 1e-12)


@settings(max_examples=80, deadline=None)
@given(
    raw=st.lists(
        st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=12
    )
)
def test_normalize_fractions_always_simplex(raw):
    arr = np.asarray(raw)
    if arr.size * 1e-3 >= 1.0:
        floor = 0.0
    else:
        floor = 1e-3
    f = normalize_fractions(arr, min_fraction=floor)
    assert f.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(f >= 0.0)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_sensible_routing_order_preserving(n, seed):
    """Higher RMTTF never gets a smaller fraction (Eq. 2 monotonicity)."""
    rng = np.random.default_rng(seed)
    rmttf = rng.uniform(1.0, 1000.0, size=n)
    prev = np.full(n, 1.0 / n)
    f = SensibleRoutingPolicy(min_fraction=0.0).compute(prev, rmttf, 10.0)
    order_r = np.argsort(rmttf)
    assert np.all(np.diff(f[order_r]) >= -1e-12)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 5))
def test_exploration_conserves_flow_before_floor(seed, n):
    """Eq. (7) constraint: what overloaded regions shed, underloaded gain."""
    rng = np.random.default_rng(seed)
    prev = rng.dirichlet(np.ones(n))
    rmttf = rng.uniform(10.0, 1000.0, size=n)
    policy = ExplorationPolicy(k=1.0, min_fraction=0.0)
    f = policy.compute(prev, rmttf, 10.0)
    assert f.sum() == pytest.approx(1.0, abs=1e-9)
    armttf = rmttf.mean()
    # overloaded regions never gain flow
    overloaded = rmttf < armttf
    assert np.all(f[overloaded] <= prev[overloaded] + 1e-9)
