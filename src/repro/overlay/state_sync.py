"""Versioned dissemination of the global system state.

Figure 1 annotates the overlay links with "global system state": every
controller keeps a view of every region's latest state (RMTTF, installed
fraction, pool size), so that any VMC can take over as leader with warm
state after an election.  We implement the standard mechanism for this:
*versioned anti-entropy gossip*.

* each node owns one entry (its own region state) and bumps its version
  on every local update;
* periodically each node pushes its full view to a peer over the message
  bus (paying overlay latency, dropped under partition);
* on receipt, entries with higher versions win (last-writer-wins per
  region -- safe because each region's entry has a single writer, its own
  VMC).

The tests assert the two properties ACM needs: *convergence* (after
gossip rounds every connected node holds the newest state of every
region) and *partition healing* (views diverge during a partition and
reconcile after it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.overlay.messaging import Message, MessageBus
from repro.sim.engine import Simulator


@dataclass(frozen=True, slots=True)
class StateEntry:
    """One region's versioned state."""

    region: str
    version: int
    payload: Any

    def newer_than(self, other: "StateEntry | None") -> bool:
        return other is None or self.version > other.version


class StateStore:
    """One controller's view of the global system state.

    Parameters
    ----------
    node:
        The owning controller; only this node may write the entry for
        its own region (single-writer discipline).
    """

    def __init__(self, node: str) -> None:
        self.node = node
        self._entries: dict[str, StateEntry] = {}
        self._own_version = 0

    def update_local(self, payload: Any) -> StateEntry:
        """Publish a new version of this node's own region state."""
        self._own_version += 1
        entry = StateEntry(
            region=self.node, version=self._own_version, payload=payload
        )
        self._entries[self.node] = entry
        return entry

    def merge(self, entries: list[StateEntry]) -> int:
        """Fold received entries in; returns how many were adopted.

        An entry is adopted iff its version exceeds the stored one.  A
        node never adopts foreign writes about *its own* region (it is
        the single writer).
        """
        adopted = 0
        for entry in entries:
            if entry.region == self.node:
                continue
            if entry.newer_than(self._entries.get(entry.region)):
                self._entries[entry.region] = entry
                adopted += 1
        return adopted

    def get(self, region: str) -> StateEntry | None:
        """The stored entry for a region, if any."""
        return self._entries.get(region)

    def snapshot(self) -> dict[str, StateEntry]:
        """Copy of the full view."""
        return dict(self._entries)

    def version_vector(self) -> dict[str, int]:
        """region -> known version (the anti-entropy digest)."""
        return {r: e.version for r, e in sorted(self._entries.items())}


class GossipSync:
    """Periodic push gossip of state stores over the overlay bus.

    Parameters
    ----------
    stores:
        node -> its store; every node gossips to every peer in a fixed
        rotation (deterministic: no RNG needed, full coverage each
        ``len(peers)`` rounds).
    sim, bus:
        Scheduling and transport.
    period_s:
        Gossip round interval.
    """

    def __init__(
        self,
        stores: dict[str, StateStore],
        sim: Simulator,
        bus: MessageBus,
        period_s: float = 10.0,
        register: bool = True,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not stores:
            raise ValueError("need at least one store")
        self.stores = stores
        self.sim = sim
        self.bus = bus
        self.period_s = float(period_s)
        self._round = 0
        self._stops: list = []
        if register:
            for node in stores:
                bus.register(node, self.make_handler(node))

    def make_handler(self, node: str):
        """Bus handler for ``node``; exposed so callers multiplexing one
        bus registration across services can chain it."""

        def handle(msg: Message) -> None:
            if msg.kind != "state-gossip":
                return
            self.stores[node].merge(msg.payload)

        return handle

    def start(self) -> None:
        """Begin periodic gossip rounds."""
        self._stops.append(
            self.sim.schedule_periodic(
                self.period_s, self._gossip_round, label="gossip"
            )
        )

    def stop(self) -> None:
        for s in self._stops:
            s()
        self._stops.clear()

    def _gossip_round(self) -> None:
        nodes = sorted(self.stores)
        self._round += 1
        for i, node in enumerate(nodes):
            if not self.bus.router.network.is_alive(node):
                continue
            # deterministic rotation: each round, push to the next peer
            peers = [p for p in nodes if p != node]
            if not peers:
                continue
            target = peers[(self._round + i) % len(peers)]
            entries = list(self.stores[node].snapshot().values())
            self.bus.send(node, target, "state-gossip", entries)

    def converged(self) -> bool:
        """True when every store holds identical version vectors."""
        vectors = [s.version_vector() for s in self.stores.values()]
        return all(v == vectors[0] for v in vectors[1:])
