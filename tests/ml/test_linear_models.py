"""Tests for OLS, ridge, and Lasso regression."""

import numpy as np
import pytest

from repro.ml import LassoRegression, LinearRegression, RidgeRegression
from repro.ml.lasso import lasso_path, max_alpha, select_features, soft_threshold


class TestLinearRegression:
    def test_recovers_exact_line(self):
        X = np.linspace(0, 10, 50).reshape(-1, 1)
        y = 2.0 * X[:, 0] + 3.0
        m = LinearRegression().fit(X, y)
        assert m.coef_[0] == pytest.approx(2.0)
        assert m.intercept_ == pytest.approx(3.0)
        assert np.allclose(m.predict(X), y)

    def test_recovers_multivariate(self, linear_data):
        X, y = linear_data
        m = LinearRegression().fit(X, y)
        assert m.coef_[0] == pytest.approx(3.0, abs=0.1)
        assert m.coef_[3] == pytest.approx(-2.0, abs=0.1)
        assert m.intercept_ == pytest.approx(10.0, abs=0.1)

    def test_rank_deficient_does_not_crash(self):
        # duplicate column: lstsq picks the minimum-norm solution
        X = np.column_stack([np.arange(10.0), np.arange(10.0)])
        y = np.arange(10.0)
        m = LinearRegression().fit(X, y)
        assert np.allclose(m.predict(X), y, atol=1e-8)

    def test_constant_target(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        m = LinearRegression().fit(X, np.full(20, 5.0))
        assert np.allclose(m.predict(X), 5.0, atol=1e-10)


class TestRidgeRegression:
    def test_alpha_zero_matches_ols(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.allclose(ols.coef_, ridge.coef_, atol=1e-8)

    def test_shrinkage_monotone(self, linear_data):
        X, y = linear_data
        norms = [
            np.linalg.norm(RidgeRegression(alpha=a).fit(X, y).coef_)
            for a in (0.0, 10.0, 1000.0)
        ]
        assert norms[0] > norms[1] > norms[2]

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestSoftThreshold:
    def test_above(self):
        assert soft_threshold(3.0, 1.0) == 2.0

    def test_below(self):
        assert soft_threshold(-3.0, 1.0) == -2.0

    def test_inside_dead_zone(self):
        assert soft_threshold(0.5, 1.0) == 0.0
        assert soft_threshold(-0.5, 1.0) == 0.0


class TestLasso:
    def test_alpha_zero_close_to_ols(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        lasso = LassoRegression(alpha=0.0, max_iter=3000).fit(X, y)
        assert np.allclose(lasso.coef_, ols.coef_, atol=1e-2)

    def test_strong_alpha_kills_noise_features(self, linear_data):
        X, y = linear_data
        m = LassoRegression(alpha=0.3).fit(X, y)
        nonzero = set(np.flatnonzero(m.coef_))
        # informative features survive, most noise features die
        assert {0, 3} <= nonzero
        assert m.sparsity() > 0.5

    def test_alpha_above_max_gives_all_zero(self, linear_data):
        X, y = linear_data
        a_max = max_alpha(X, y)
        m = LassoRegression(alpha=a_max * 1.01).fit(X, y)
        assert np.all(m.coef_ == 0.0)
        assert m.intercept_ == pytest.approx(float(np.mean(y)))

    def test_predictions_reasonable(self, linear_data):
        X, y = linear_data
        m = LassoRegression(alpha=0.01).fit(X, y)
        resid = y - m.predict(X)
        assert np.std(resid) < 0.5

    def test_sparsity_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LassoRegression().sparsity()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LassoRegression(alpha=-1)
        with pytest.raises(ValueError):
            LassoRegression(max_iter=0)


class TestLassoPath:
    def test_path_shapes_and_monotone_alphas(self, linear_data):
        X, y = linear_data
        alphas, coefs = lasso_path(X, y, n_alphas=10)
        assert alphas.shape == (10,)
        assert coefs.shape == (10, X.shape[1])
        assert np.all(np.diff(alphas) < 0)

    def test_path_starts_empty_ends_dense(self, linear_data):
        X, y = linear_data
        _, coefs = lasso_path(X, y, n_alphas=20)
        assert np.count_nonzero(coefs[0]) == 0
        assert np.count_nonzero(coefs[-1]) >= 3

    def test_n_alphas_validated(self, linear_data):
        X, y = linear_data
        with pytest.raises(ValueError):
            lasso_path(X, y, n_alphas=1)


class TestSelectFeatures:
    def test_informative_features_enter_first(self, linear_data):
        X, y = linear_data
        names = tuple(f"f{i}" for i in range(X.shape[1]))
        selected = select_features(X, y, names, max_features=3)
        assert selected[0] == "f0"  # strongest coefficient (3.0)
        assert set(selected[:2]) == {"f0", "f3"}

    def test_alpha_mode(self, linear_data):
        X, y = linear_data
        names = tuple(f"f{i}" for i in range(X.shape[1]))
        selected = select_features(X, y, names, alpha=0.3)
        assert "f0" in selected and "f3" in selected
        assert len(selected) < len(names)

    def test_name_count_mismatch(self, linear_data):
        X, y = linear_data
        with pytest.raises(ValueError):
            select_features(X, y, ("a", "b"))
