"""Edge cases of :mod:`repro.sim.tracing` pinned by the analysis layer.

The figure pipeline feeds :class:`TraceSeries` transforms with whatever a
run produced -- including empty and single-point series right after a
start-up failure -- so the edge behaviour (raise vs. propagate) is part
of the contract, not an accident.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.manifest import RunManifest
from repro.sim.tracing import (
    TraceRecorder,
    TraceSeries,
    read_csv_manifest,
)


class TestResampleEdges:
    def test_empty_series_resample_raises(self):
        s = TraceSeries("x", np.array([]), np.array([]))
        with pytest.raises(ValueError, match="empty series"):
            s.resample(np.array([0.0, 1.0]))

    def test_single_point_resamples_as_constant(self):
        s = TraceSeries("x", np.array([5.0]), np.array([3.0]))
        grid = np.array([0.0, 5.0, 10.0])
        r = s.resample(grid)
        # ZOH: the lone sample's value holds everywhere, even before it
        assert r.values.tolist() == [3.0, 3.0, 3.0]
        assert r.times.tolist() == grid.tolist()

    def test_zoh_holds_until_next_sample(self):
        s = TraceSeries(
            "x", np.array([0.0, 10.0]), np.array([1.0, 2.0])
        )
        r = s.resample(np.array([0.0, 9.999, 10.0, 15.0]))
        assert r.values.tolist() == [1.0, 1.0, 2.0, 2.0]


class TestValidation:
    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceSeries(
                "x", np.array([0.0, 2.0, 1.0]), np.array([1.0, 2.0, 3.0])
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in shape"):
            TraceSeries("x", np.array([0.0, 1.0]), np.array([1.0]))

    def test_equal_times_allowed(self):
        # simultaneous samples (several series merged at era boundaries)
        s = TraceSeries(
            "x", np.array([1.0, 1.0]), np.array([2.0, 3.0])
        )
        assert len(s) == 2


class TestEmptySeriesStats:
    def test_stats_of_empty_are_nan_or_zero(self):
        s = TraceSeries("x", np.array([]), np.array([]))
        assert np.isnan(s.mean())
        assert np.isnan(s.max())
        assert s.oscillation_index() == 0.0
        assert len(s.tail_fraction(0.5)) == 0

    def test_single_point_oscillation_is_zero(self):
        s = TraceSeries("x", np.array([1.0]), np.array([5.0]))
        assert s.oscillation_index() == 0.0


class TestCsvManifest:
    def _recorder(self):
        rec = TraceRecorder()
        rec.record("a", 0.0, 1.0)
        rec.record("a", 1.0, 2.0)
        rec.record("b/c", 0.0, -3.5)
        return rec

    def test_manifest_comment_roundtrip(self, tmp_path):
        path = str(tmp_path / "traces.csv")
        manifest = RunManifest.build(
            seed=7, config={"eras": 12}, scenario="fig3"
        )
        self._recorder().to_csv(path, manifest=manifest)
        # the data reads back unchanged ...
        again = TraceRecorder.from_csv(path)
        assert again.names() == ["a", "b/c"]
        assert again.series("a").values.tolist() == [1.0, 2.0]
        # ... and the provenance is recoverable from the file alone
        stored = read_csv_manifest(path)
        assert stored["seed"] == 7
        assert stored["extra"]["scenario"] == "fig3"
        assert stored["config_digest"] == manifest.config_digest

    def test_csv_without_manifest_reads_none(self, tmp_path):
        path = str(tmp_path / "plain.csv")
        self._recorder().to_csv(path)
        assert read_csv_manifest(path) is None
        assert TraceRecorder.from_csv(path).names() == ["a", "b/c"]
