"""Tests for RTTF dataset construction and splitting."""

import numpy as np
import pytest

from repro.ml import Dataset, train_test_split
from repro.ml.features import FEATURE_NAMES


def small_ds():
    X = np.arange(20.0).reshape(10, 2)
    y = np.arange(10.0)
    return Dataset(X, y, ("a", "b"))


class TestDataset:
    def test_len_and_n_features(self):
        ds = small_ds()
        assert len(ds) == 10
        assert ds.n_features == 2

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError, match="feature names"):
            Dataset(np.zeros((2, 3)), np.zeros(2), ("a",))

    def test_select_features_projects_and_orders(self):
        ds = small_ds()
        sel = ds.select_features(["b"])
        assert sel.feature_names == ("b",)
        assert np.array_equal(sel.X[:, 0], ds.X[:, 1])

    def test_select_missing_feature(self):
        with pytest.raises(KeyError, match="missing"):
            small_ds().select_features(["missing"])

    def test_subset(self):
        ds = small_ds()
        sub = ds.subset(np.array([0, 2]))
        assert len(sub) == 2
        assert sub.y[1] == 2.0

    def test_concat(self):
        ds = small_ds()
        both = ds.concat(ds)
        assert len(both) == 20

    def test_concat_schema_mismatch(self):
        ds = small_ds()
        other = Dataset(np.zeros((1, 2)), np.zeros(1), ("x", "y"))
        with pytest.raises(ValueError, match="schema"):
            ds.concat(other)


class TestFromRunTraces:
    def test_rttf_labels(self):
        times = np.array([0.0, 10.0, 20.0])
        feats = np.zeros((3, len(FEATURE_NAMES)))
        ds = Dataset.from_run_traces([(times, feats, 30.0)])
        assert list(ds.y) == [30.0, 20.0, 10.0]

    def test_samples_after_failure_discarded(self):
        times = np.array([0.0, 10.0, 40.0])
        feats = np.zeros((3, len(FEATURE_NAMES)))
        ds = Dataset.from_run_traces([(times, feats, 30.0)])
        assert len(ds) == 2

    def test_multiple_runs_stack(self):
        feats = np.zeros((2, len(FEATURE_NAMES)))
        runs = [
            (np.array([0.0, 5.0]), feats, 10.0),
            (np.array([0.0, 5.0]), feats, 20.0),
        ]
        ds = Dataset.from_run_traces(runs)
        assert list(ds.y) == [10.0, 5.0, 20.0, 15.0]

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError, match="no profiling runs"):
            Dataset.from_run_traces([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            Dataset.from_run_traces(
                [(np.array([0.0]), np.zeros((2, len(FEATURE_NAMES))), 1.0)]
            )

    def test_all_after_failure_rejected(self):
        feats = np.zeros((1, len(FEATURE_NAMES)))
        with pytest.raises(ValueError, match="failure point"):
            Dataset.from_run_traces([(np.array([5.0]), feats, 1.0)])


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self):
        ds = small_ds()
        rng = np.random.default_rng(0)
        train, test = train_test_split(ds, 0.3, rng)
        assert len(train) == 7
        assert len(test) == 3
        # disjoint cover of the original rows (X rows unique here)
        all_x = np.vstack([train.X, test.X])
        assert np.array_equal(
            np.sort(all_x[:, 0]), np.sort(ds.X[:, 0])
        )

    def test_deterministic_given_stream(self):
        ds = small_ds()
        t1, _ = train_test_split(ds, 0.3, np.random.default_rng(7))
        t2, _ = train_test_split(ds, 0.3, np.random.default_rng(7))
        assert np.array_equal(t1.X, t2.X)

    @pytest.mark.parametrize("frac", [0.0, 1.0, -0.5, 1.5])
    def test_bad_fraction(self, frac):
        with pytest.raises(ValueError):
            train_test_split(small_ds(), frac, np.random.default_rng(0))

    def test_tiny_dataset_keeps_one_each(self):
        ds = Dataset(np.zeros((2, 1)), np.zeros(2), ("a",))
        train, test = train_test_split(ds, 0.9, np.random.default_rng(0))
        assert len(train) == 1 and len(test) == 1
