"""End-to-end serve test: boot, load over HTTP, blackout, failover.

Boots the real stack -- :class:`WallClock` at high compression,
:class:`AcmService`, :class:`HttpIngress` on an ephemeral port, the
open-loop load generator over real TCP -- blacks out a region mid-run
with the :class:`ChaosEngine`, and asserts the deployment keeps serving
and that the control loop routes around the dead region within the
detector bound (one era + the Analyze window + a monitor period +
channel slop).

Latency numbers jitter run to run (real sockets); everything asserted
here is a structural property of the protocol, not a timing percentile.
"""

from __future__ import annotations

import asyncio

from repro.experiments.serve_campaign import run_blackout_campaign
from repro.experiments.scenarios import two_region_scenario
from repro.serve import (
    AcmService,
    HttpIngress,
    LoadConfig,
    ServeConfig,
    WallClock,
    run_load,
)

#: Clock compression for the tests: a 6 s era ticks every 50 ms wall.
SPEED = 120.0


def test_boot_load_blackout_failover_mttr():
    """The ISSUE's acceptance path, compressed: ~2 s of wall clock."""

    async def scenario() -> dict:
        clock = WallClock(speed=SPEED)
        cfg = ServeConfig(
            era_s=6.0, window_s=1.0, monitor_period_s=1.0, seed=7
        )
        service = AcmService(two_region_scenario(), clock, cfg)
        victim = service.regions[1]
        ingress = HttpIngress(service, port=0)
        await ingress.start()
        service.start()
        runner = asyncio.ensure_future(clock.run_for(None))
        url = f"http://127.0.0.1:{ingress.port}"

        def load(seed: int, duration: float) -> LoadConfig:
            return LoadConfig(
                url=url,
                rate=250.0,
                duration_s=duration,
                connections=4,
                seed=seed,
            )

        try:
            healthy = await run_load(load(7, 0.7))
            service.chaos.region_blackout(victim)
            dark = await run_load(load(8, 0.9))
            mttr = service.mttr_s.get(victim)
            plan = service.plan_snapshot()
            regions = service.regions_snapshot()
        finally:
            service.shutdown()
            await runner
            await ingress.stop()
        return {
            "victim": victim,
            "healthy": healthy,
            "dark": dark,
            "mttr": mttr,
            "plan": plan,
            "regions": regions,
            "bound": cfg.era_s + cfg.window_s + cfg.monitor_period_s + 1.0,
            "index": service._index[victim],
        }

    out = asyncio.run(scenario())

    # the healthy phase served essentially everything it scheduled
    healthy = out["healthy"]
    assert healthy.completed > 100
    assert healthy.errors == 0
    assert healthy.ok == healthy.completed - healthy.shed

    # with one region dark, traffic kept flowing: requests that sampled
    # the dead region failed over, none were dropped on the floor
    dark = out["dark"]
    assert dark.completed > 100
    assert dark.errors == 0
    assert dark.ok > 0

    # the control loop observed the failure and planned around it
    # within the detector bound
    assert out["mttr"] is not None, "no failover MTTR was recorded"
    assert 0.0 < out["mttr"] <= out["bound"]

    # the final plan carries (approximately) nothing for the dead region
    assert out["plan"]["fractions"][out["index"]] <= 1e-9
    snap = out["regions"]["regions"][out["victim"]]
    assert snap["alive"] is False
    assert snap["mttr_s"] == out["mttr"]


def test_campaign_report_shape_and_recovery():
    """The scripted campaign heals the victim and reports every field."""
    report = asyncio.run(
        run_blackout_campaign(
            scenario_name="two-region",
            rate=150.0,
            phase_s=0.7,
            speed=SPEED,
            era_s=6.0,
            window_s=1.0,
            seed=11,
            connections=2,
        )
    )
    assert set(report["phases"]) == {"baseline", "blackout", "recovery"}
    for phase in report["phases"].values():
        assert phase["completed"] > 0
        assert phase["errors"] == 0
    assert report["failover_mttr_s"] is not None
    assert report["failover_mttr_s"] <= report["detector_bound_s"]
    lag = report["plan_propagation"]
    assert lag is not None and lag["count"] >= 1
    # healed: the victim is back on the mesh by the end of the run
    assert report["final_regions"]["regions"][report["victim"]]["alive"]
