"""Predictor-corruption fault primitive.

The paper's control plane trusts each region's lastRMTTF report; a
misbehaving predictor (model-serving outage, stuck feature pipeline,
numerical blow-up) is therefore a distinct fault class from network or VM
failures.  :class:`CorruptiblePredictor` wraps any
:class:`~repro.pcam.predictor.RttfPredictor` and lets a chaos campaign
switch it between corruption modes at runtime:

``off``
    Transparent pass-through (the default).
``nan``
    Every prediction is ``NaN`` -- models a numerically diverged model.
    The hardened control loop must sanitise these instead of crashing in
    :func:`repro.core.policy.normalize_fractions`.
``stale``
    Predictions freeze at the last value computed while healthy -- models
    a stuck feature pipeline that keeps re-serving an old answer.
``zero``
    Every prediction is ``0`` -- models a fail-closed model server, which
    pressures the rejuvenation discipline into swapping everything.
"""

from __future__ import annotations

from repro.pcam.predictor import RttfPredictor
from repro.pcam.vm import VirtualMachine

#: Valid corruption modes.
MODES = ("off", "nan", "stale", "zero")


class CorruptiblePredictor(RttfPredictor):
    """Wrap ``inner`` with switchable fault modes (see module docstring)."""

    def __init__(self, inner: RttfPredictor, mode: str = "off") -> None:
        self.inner = inner
        self._last: dict[str, float] = {}
        self.mode = "off"
        self.set_mode(mode)

    def set_mode(self, mode: str) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode

    def predict_rttf(self, vm: VirtualMachine) -> float:
        if self.mode == "nan":
            return float("nan")
        if self.mode == "zero":
            return 0.0
        if self.mode == "stale":
            # Serve the last healthy answer; fall through to the inner
            # predictor only if this VM was never predicted while healthy.
            if vm.name in self._last:
                return self._last[vm.name]
        value = self.inner.predict_rttf(vm)
        if self.mode == "off":
            self._last[vm.name] = value
        return value

    def predict_rttf_batch(self, vms: list[VirtualMachine]):
        if self.mode == "off":
            values = self.inner.predict_rttf_batch(vms)
            for vm, value in zip(vms, values):
                self._last[vm.name] = float(value)
            return values
        # Corruption modes keep the scalar path so per-VM staleness
        # bookkeeping stays exact.
        return super().predict_rttf_batch(vms)

    def predict_rttf_rows(self, rows, vms: list[VirtualMachine]):
        if self.mode == "off":
            values = self.inner.predict_rttf_rows(rows, vms)
            for vm, value in zip(vms, values):
                self._last[vm.name] = float(value)
            return values
        # Corruption modes keep the scalar path so per-VM staleness
        # bookkeeping stays exact.
        return super().predict_rttf_batch(vms)

    def evict(self, vm_name: str) -> None:
        self._last.pop(vm_name, None)
        self.inner.evict(vm_name)
