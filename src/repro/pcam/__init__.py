"""PCAM -- the proactive VM-management substrate.

Reimplementation of the PCAM framework (Di Sanzo, Pellegrini, Avresky,
"Machine Learning for Achieving Self-* Properties and Seamless Execution of
Applications in the Cloud", NCCA 2015) that ACM builds on:

* :mod:`repro.pcam.vm` -- the VM resource/lifecycle model: anomaly
  accumulation (memory leaks, unterminated threads), performance
  degradation, failure points, rejuvenation;
* :mod:`repro.pcam.monitor` -- the feature-monitor agent sampling the
  F2PM system-feature schema from a VM;
* :mod:`repro.pcam.predictor` -- binding of a trained F2PM model to VMs
  for online RTTF prediction;
* :mod:`repro.pcam.balancer` -- the intra-region load balancer hosted by
  the VMC;
* :mod:`repro.pcam.vmc` -- the Virtual Machine Controller: keeps spare
  VMs in STANDBY, watches predicted RTTF of ACTIVE VMs, and swaps in a
  standby (ACTIVATE + REJUVENATE) before the failure point is reached.
"""

from repro.pcam.balancer import LocalBalancer
from repro.pcam.des_region import DesRegion, DesStats
from repro.pcam.monitor import FeatureMonitor, ProfilingHarness
from repro.pcam.predictor import (
    ConservativeRttfPredictor,
    OracleRttfPredictor,
    RttfPredictor,
    TrainedRttfPredictor,
    TrendAwareRttfPredictor,
)
from repro.pcam.rejuvenation import (
    NoRejuvenation,
    PeriodicRejuvenation,
    RejuvenationDiscipline,
    RttfThresholdRejuvenation,
)
from repro.pcam.state_table import TableBackedVM, VmStateTable
from repro.pcam.vm import FailurePolicy, VirtualMachine, VmState
from repro.pcam.vmc import VirtualMachineController, VmcConfig

__all__ = [
    "DesRegion",
    "DesStats",
    "VirtualMachine",
    "VmState",
    "FailurePolicy",
    "FeatureMonitor",
    "ProfilingHarness",
    "RttfPredictor",
    "TrainedRttfPredictor",
    "OracleRttfPredictor",
    "ConservativeRttfPredictor",
    "TrendAwareRttfPredictor",
    "RejuvenationDiscipline",
    "RttfThresholdRejuvenation",
    "PeriodicRejuvenation",
    "NoRejuvenation",
    "LocalBalancer",
    "TableBackedVM",
    "VirtualMachineController",
    "VmcConfig",
    "VmStateTable",
]
