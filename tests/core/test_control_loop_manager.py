"""Integration tests: the full MAPE loop and the AcmManager façade."""

import numpy as np
import pytest

from repro.core import (
    AcmManager,
    ControlLoopConfig,
    RegionSpec,
    assess_policy_run,
)
from repro.core.metrics import convergence_time, mean_oscillation, rmttf_spread
from repro.overlay import OverlayNetwork
from repro.sim.tracing import TraceSeries


def two_region_manager(policy="available-resources", seed=11, **kw):
    return AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", n_vms=8, target_active=6, clients=160),
            RegionSpec("region3", "private.small", n_vms=6, target_active=4, clients=96),
        ],
        policy=policy,
        seed=seed,
        **kw,
    )


class TestManagerConstruction:
    def test_builds_regions_and_loop(self):
        mgr = two_region_manager()
        assert mgr.region_names() == ["region1", "region3"]
        assert mgr.loop.vmcs["region1"].healthy_capacity() > 0

    def test_duplicate_region_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AcmManager(
                regions=[
                    RegionSpec("r", "m3.medium", 2, 1, 32),
                    RegionSpec("r", "m3.small", 2, 1, 32),
                ]
            )

    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError):
            AcmManager(regions=[])

    def test_region_spec_validation(self):
        with pytest.raises(ValueError):
            RegionSpec("r", "m3.medium", n_vms=0, target_active=1, clients=32)
        with pytest.raises(ValueError):
            RegionSpec("r", "m3.medium", n_vms=2, target_active=3, clients=32)
        with pytest.raises(ValueError):
            RegionSpec("r", "m3.medium", n_vms=2, target_active=1, clients=0)

    def test_policy_accepts_name_or_instance(self):
        from repro.core import UniformPolicy

        by_name = two_region_manager(policy="uniform")
        by_obj = two_region_manager(policy=UniformPolicy())
        assert type(by_name.loop.policy) is type(by_obj.loop.policy)


class TestControlLoopMechanics:
    def test_era_summary_fields(self):
        mgr = two_region_manager()
        (s,) = mgr.run(1)
        assert s.era == 0
        assert set(s.fractions) == {"region1", "region3"}
        assert sum(s.fractions.values()) == pytest.approx(1.0)
        assert s.leader == "region1"  # min id in the component
        assert s.total_requests > 0
        assert 0.0 <= s.forwarded_fraction <= 1.0

    def test_run_validates_n_eras(self):
        with pytest.raises(ValueError):
            two_region_manager().run(0)

    def test_traces_recorded_per_region(self):
        mgr = two_region_manager()
        mgr.run(5)
        for r in ("region1", "region3"):
            assert len(mgr.traces.series(f"rmttf/{r}")) == 5
            assert len(mgr.traces.series(f"fraction/{r}")) == 5
        assert len(mgr.traces.series("response_time")) == 5

    def test_deterministic_given_seed(self):
        a = two_region_manager(seed=5)
        b = two_region_manager(seed=5)
        sa = a.run(10)
        sb = b.run(10)
        assert [s.total_requests for s in sa] == [s.total_requests for s in sb]
        assert np.allclose(
            a.traces.series("rmttf/region1").values,
            b.traces.series("rmttf/region1").values,
        )

    def test_different_seeds_differ(self):
        a = two_region_manager(seed=5)
        b = two_region_manager(seed=6)
        a.run(10)
        b.run(10)
        assert not np.allclose(
            a.traces.series("rmttf/region1").values,
            b.traces.series("rmttf/region1").values,
        )

    def test_deterministic_mode(self):
        mgr = two_region_manager(stochastic_arrivals=False)
        s = mgr.run(3)
        assert all(x.total_requests > 0 for x in s)

    def test_control_loop_config_validation(self):
        with pytest.raises(ValueError):
            ControlLoopConfig(era_s=0.0)
        with pytest.raises(ValueError):
            ControlLoopConfig(beta=1.5)


class TestPaperDynamics:
    """The qualitative claims of Sec. VI-B, asserted quantitatively."""

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for pol in ("sensible-routing", "available-resources", "exploration"):
            mgr = two_region_manager(policy=pol, seed=7)
            mgr.run(200)
            out[pol] = mgr.traces
        return out

    def _tail_rmttf(self, traces):
        return {
            n: s.tail_fraction(0.8)
            for n, s in traces.matching("rmttf/").items()
        }

    def test_policy1_rmttf_does_not_converge(self, runs):
        spread = rmttf_spread(self._tail_rmttf(runs["sensible-routing"]))
        assert spread > 0.25  # regions stabilise visibly apart

    def test_policy2_converges_tightly(self, runs):
        spread = rmttf_spread(self._tail_rmttf(runs["available-resources"]))
        assert spread < 0.08

    def test_policy3_converges(self, runs):
        spread = rmttf_spread(self._tail_rmttf(runs["exploration"]))
        assert spread < 0.12

    def test_policy2_most_stable_fractions(self, runs):
        def f_osc(traces):
            return mean_oscillation(
                {n: s for n, s in traces.matching("fraction/").items()}
            )

        assert f_osc(runs["available-resources"]) <= f_osc(runs["exploration"])

    def test_response_time_below_sla_for_all(self, runs):
        for pol, traces in runs.items():
            assert traces.series("response_time").mean() < 1.0, pol

    def test_assess_policy_run_summary(self, runs):
        a = assess_policy_run(
            "available-resources", runs["available-resources"]
        )
        assert a.converged
        assert a.sla_met
        assert "available-resources" in a.row()


class TestOverlayIntegration:
    def test_custom_overlay_leader_follows_failures(self):
        net = OverlayNetwork()
        for r in ("region1", "region3"):
            net.add_node(r)
        net.add_link("region1", "region3", 30.0)
        mgr = two_region_manager(overlay=net)
        (s1,) = mgr.run(1)
        assert s1.leader == "region1"
        net.fail_node("region1")
        mgr.loop.router.invalidate()
        (s2,) = mgr.run(1)
        assert s2.leader == "region3"

    def test_partitioned_region_keeps_serving(self):
        net = OverlayNetwork()
        for r in ("region1", "region3"):
            net.add_node(r)
        net.add_link("region1", "region3", 30.0)
        mgr = two_region_manager(overlay=net)
        mgr.run(5)
        net.fail_link("region1", "region3")
        mgr.loop.router.invalidate()
        summaries = mgr.run(5)
        # both regions still process load under partition
        assert all(
            s.active_vms["region3"] >= 1 and s.total_requests > 0
            for s in summaries
        )


class TestMetricFunctions:
    def test_convergence_time_simple(self):
        t = np.arange(10.0)
        a = TraceSeries("a", t, np.r_[np.full(5, 100.0), np.full(5, 200.0)])
        b = TraceSeries("b", t, np.full(10, 200.0))
        ct = convergence_time({"a": a, "b": b}, tolerance=0.15, min_window=3)
        assert ct == 5.0

    def test_convergence_never(self):
        t = np.arange(10.0)
        a = TraceSeries("a", t, np.full(10, 100.0))
        b = TraceSeries("b", t, np.full(10, 300.0))
        assert convergence_time({"a": a, "b": b}) == float("inf")

    def test_convergence_immediate(self):
        t = np.arange(5.0)
        a = TraceSeries("a", t, np.full(5, 100.0))
        assert convergence_time({"a": a}, min_window=3) == 0.0

    def test_convergence_tolerates_single_excursion(self):
        t = np.arange(40.0)
        vals = np.full(40, 100.0)
        vals[30] = 200.0  # one stochastic blip must not undo convergence
        a = TraceSeries("a", t, vals)
        b = TraceSeries("b", t, np.full(40, 100.0))
        assert convergence_time({"a": a, "b": b}) == 0.0

    def test_convergence_short_series_is_never(self):
        t = np.arange(3.0)
        a = TraceSeries("a", t, np.full(3, 100.0))
        assert convergence_time({"a": a}) == float("inf")

    def test_convergence_rate_validation(self):
        t = np.arange(20.0)
        s = {"a": TraceSeries("a", t, np.full(20, 1.0))}
        with pytest.raises(ValueError):
            convergence_time(s, allowed_violation_rate=1.0)

    def test_spread_zero_when_equal(self):
        t = np.arange(5.0)
        s = {k: TraceSeries(k, t, np.full(5, 100.0)) for k in "ab"}
        assert rmttf_spread(s) == 0.0

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            rmttf_spread({})
        with pytest.raises(ValueError):
            convergence_time({})
        with pytest.raises(ValueError):
            mean_oscillation({})
        t = np.arange(3.0)
        s = {"a": TraceSeries("a", t, np.zeros(3))}
        with pytest.raises(ValueError):
            rmttf_spread(s)


class TestAutoscaleIntegration:
    def test_autoscaler_grows_under_overload(self):
        mgr = AcmManager(
            regions=[
                RegionSpec(
                    "solo",
                    "private.small",
                    n_vms=8,
                    target_active=2,
                    clients=200,
                    rttf_threshold_s=60.0,
                    rejuvenation_time_s=60.0,
                ),
            ],
            policy="uniform",
            seed=3,
            autoscale=True,
        )
        mgr.run(60)
        # RMTTF below the 300 s autoscale floor at 2 active VMs: the pool
        # must grow until the projected RMTTF clears the floor.
        vmc = mgr.loop.vmcs["solo"]
        assert vmc.target_active >= 4
        assert mgr.loop.autoscaler.scale_up_count >= 2
