"""Cost-aware allocation policy: availability-per-dollar.

The paper motivates heterogeneous deployments economically (Sec. I:
"it could be more convenient to have more VMs in some regions ...
rather than in/of other ones"), but Policies 1-3 optimise MTTF alone.
:class:`CostAwarePolicy` anchors on Policy 2's resource estimate
``Q_i = RMTTF_i * f_i(k-1) * lambda`` (Eqs. 3-4) -- the expected
requests a region can absorb before failing -- and divides each
region's weight by its *relative* price, so traffic prefers regions
that buy the most expected-served-requests per dollar.

With no price vector configured (or an all-zero one) the divisor is
uniform and the policy is numerically identical to Policy 2, which
keeps it safe as a drop-in anchor for policy heads.  Prices are
normalised by their mean before weighting, so the policy responds to
price *ratios*, not absolute magnitudes -- doubling every region's
price changes nothing, exactly as availability-per-dollar should
behave.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import DEFAULT_MIN_FRACTION, Policy, register_policy


@register_policy
class CostAwarePolicy(Policy):
    """Policy 2's availability estimate weighted by 1 / relative cost.

    Parameters
    ----------
    usd_per_req:
        Per-region price vector (any non-negative per-request figure;
        :func:`repro.core.cost.effective_usd_per_req` folds hourly and
        marginal cost into one).  May also be injected later via
        :meth:`configure_costs` -- :class:`repro.core.manager.AcmManager`
        does exactly that from the deployment's instance catalog, so
        sim, serve, and policy-head paths all see the same $ signal.
    cost_weight:
        Strength of the price signal (gamma).  0 reduces to Policy 2;
        1 (default) halves a mean-priced region's weight relative to a
        free one.
    """

    name = "cost-aware"

    def __init__(
        self,
        min_fraction: float = DEFAULT_MIN_FRACTION,
        usd_per_req=None,
        cost_weight: float = 1.0,
    ) -> None:
        super().__init__(min_fraction)
        if cost_weight < 0:
            raise ValueError(f"cost_weight must be >= 0, got {cost_weight}")
        self.cost_weight = float(cost_weight)
        self._rel_costs: np.ndarray | None = None
        if usd_per_req is not None:
            self.configure_costs(usd_per_req)

    @property
    def needs_costs(self) -> bool:
        """True until a usable price vector has been configured."""
        return self._rel_costs is None

    def configure_costs(self, usd_per_req) -> None:
        """Install the per-region price vector (region order = policy order).

        An all-zero vector carries no signal and clears the
        configuration (the policy stays Policy 2-equivalent) rather
        than dividing by zero.
        """
        costs = np.asarray(usd_per_req, dtype=float)
        if costs.ndim != 1 or costs.size == 0:
            raise ValueError("usd_per_req must be a non-empty 1-d vector")
        if not np.all(np.isfinite(costs)) or np.any(costs < 0):
            raise ValueError("usd_per_req entries must be finite and >= 0")
        mean = costs.mean()
        self._rel_costs = costs / mean if mean > 0 else None

    def _compute(
        self,
        prev_fractions: np.ndarray,
        rmttf: np.ndarray,
        global_rate: float,
    ) -> np.ndarray:
        rate = global_rate if global_rate > 0 else 1.0
        quality = rmttf * prev_fractions * rate
        if self._rel_costs is None:
            return quality
        if self._rel_costs.size != prev_fractions.size:
            raise ValueError(
                f"price vector has {self._rel_costs.size} regions but the "
                f"deployment has {prev_fractions.size}"
            )
        return quality / (1.0 + self.cost_weight * self._rel_costs)
