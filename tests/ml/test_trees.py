"""Tests for the regression tree, REP-Tree, and M5P model tree."""

import numpy as np
import pytest

from repro.ml import M5PModelTree, REPTree, RegressionTree
from repro.ml.tree import best_split, build_tree, tree_predict


class TestBestSplit:
    def test_obvious_split_found(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0.0, 0.0, 100.0, 100.0])
        feature, threshold, decrease = best_split(X, y, min_samples_leaf=1)
        assert feature == 0
        assert 1.0 < threshold < 10.0
        assert decrease > 0

    def test_constant_feature_returns_none(self):
        X = np.ones((10, 1))
        y = np.arange(10.0)
        assert best_split(X, y, min_samples_leaf=1) is None

    def test_min_samples_leaf_respected(self):
        # best raw split would isolate a single point
        X = np.array([[0.0], [1.0], [2.0], [100.0]])
        y = np.array([0.0, 0.0, 0.0, 50.0])
        found = best_split(X, y, min_samples_leaf=2)
        assert found is not None
        feature, threshold, _ = found
        left = np.sum(X[:, 0] <= threshold)
        assert left >= 2 and len(X) - left >= 2

    def test_too_few_samples_returns_none(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 2.0])
        assert best_split(X, y, min_samples_leaf=2) is None

    def test_picks_most_informative_feature(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=100), np.linspace(0, 1, 100)])
        y = np.where(X[:, 1] > 0.5, 10.0, -10.0)
        feature, _, _ = best_split(X, y, min_samples_leaf=1)
        assert feature == 1


class TestRegressionTree:
    def test_fits_piecewise_function(self, piecewise_data):
        X, y = piecewise_data
        m = RegressionTree(max_depth=6).fit(X, y)
        resid = y - m.predict(X)
        assert np.std(resid) < 0.5

    def test_max_depth_zero_predicts_mean(self, piecewise_data):
        X, y = piecewise_data
        m = RegressionTree(max_depth=0).fit(X, y)
        assert np.allclose(m.predict(X), y.mean())
        assert m.depth() == 0
        assert m.n_leaves() == 1

    def test_depth_bounded(self, piecewise_data):
        X, y = piecewise_data
        m = RegressionTree(max_depth=3).fit(X, y)
        assert m.depth() <= 3

    def test_min_sse_decrease_stops_splitting_noise(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        y = rng.normal(size=200)  # pure noise
        big_gate = RegressionTree(min_sse_decrease=1e9).fit(X, y)
        assert big_gate.n_leaves() == 1

    def test_interpolates_training_data_when_unconstrained(self):
        X = np.arange(8.0).reshape(-1, 1)
        y = np.array([1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 0.0, 4.0])
        m = RegressionTree(
            max_depth=10, min_samples_split=2, min_samples_leaf=1
        ).fit(X, y)
        assert np.allclose(m.predict(X), y)

    def test_introspection_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().depth()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_split=1)

    def test_vectorised_predict_matches_manual_walk(self, piecewise_data):
        X, y = piecewise_data
        root = build_tree(
            X, y, max_depth=5, min_samples_split=4,
            min_samples_leaf=2, min_sse_decrease=0.0,
        )

        def walk(node, row):
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            return node.value

        pred = tree_predict(root, X[:25])
        manual = np.array([walk(root, r) for r in X[:25]])
        assert np.array_equal(pred, manual)


class TestREPTree:
    def test_pruning_reduces_leaves_on_noise(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 5))
        y = np.where(X[:, 0] > 0, 5.0, -5.0) + rng.normal(0, 2.0, 300)
        unpruned = REPTree(prune_fraction=0.0, seed=3).fit(X, y)
        pruned = REPTree(prune_fraction=1 / 3, seed=3).fit(X, y)
        assert pruned.n_leaves() < unpruned.n_leaves()
        assert pruned.pruned_leaves_ > 0

    def test_pruned_tree_generalises_at_least_as_well(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 5))
        y = np.where(X[:, 0] > 0, 5.0, -5.0) + rng.normal(0, 2.0, 400)
        X_test = rng.normal(size=(200, 5))
        y_test = np.where(X_test[:, 0] > 0, 5.0, -5.0)
        unpruned = REPTree(prune_fraction=0.0, seed=4).fit(X, y)
        pruned = REPTree(seed=4).fit(X, y)
        err_u = np.mean((y_test - unpruned.predict(X_test)) ** 2)
        err_p = np.mean((y_test - pruned.predict(X_test)) ** 2)
        assert err_p <= err_u * 1.1  # pruning never much worse, usually better

    def test_still_fits_signal(self, piecewise_data):
        X, y = piecewise_data
        m = REPTree(seed=0).fit(X, y)
        assert np.std(y - m.predict(X)) < 1.0

    def test_deterministic_given_seed(self, piecewise_data):
        X, y = piecewise_data
        p1 = REPTree(seed=9).fit(X, y).predict(X)
        p2 = REPTree(seed=9).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_prune_fraction_validated(self):
        with pytest.raises(ValueError):
            REPTree(prune_fraction=1.0)
        with pytest.raises(ValueError):
            REPTree(prune_fraction=-0.1)

    def test_tiny_dataset_skips_pruning(self):
        X = np.arange(4.0).reshape(-1, 1)
        y = np.arange(4.0)
        m = REPTree(min_samples_leaf=2).fit(X, y)  # n - n_prune < 2*leaf
        assert m.is_fitted


class TestM5P:
    def test_beats_plain_tree_on_smooth_function(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-2, 2, size=(400, 2))
        # piecewise-LINEAR target: exactly M5P's sweet spot
        y = np.where(X[:, 0] > 0, 3.0 * X[:, 1] + 5.0, -2.0 * X[:, 1])
        X_test = rng.uniform(-2, 2, size=(200, 2))
        y_test = np.where(X_test[:, 0] > 0, 3.0 * X_test[:, 1] + 5.0, -2.0 * X_test[:, 1])
        m5 = M5PModelTree(max_depth=4).fit(X, y)
        cart = RegressionTree(max_depth=4).fit(X, y)
        err_m5 = np.mean((y_test - m5.predict(X_test)) ** 2)
        err_cart = np.mean((y_test - cart.predict(X_test)) ** 2)
        assert err_m5 < err_cart

    def test_reduces_to_linear_model_on_linear_data(self, linear_data):
        X, y = linear_data
        m = M5PModelTree().fit(X, y)
        # pruning should collapse to (nearly) a single linear model
        assert np.std(y - m.predict(X)) < 0.6

    def test_smoothing_zero_allowed(self, piecewise_data):
        X, y = piecewise_data
        m = M5PModelTree(smoothing=0.0).fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_no_prune_keeps_more_leaves(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(300, 4))
        y = rng.normal(size=300)
        pruned = M5PModelTree(prune=True).fit(X, y)
        unpruned = M5PModelTree(prune=False).fit(X, y)
        assert pruned.n_leaves() <= unpruned.n_leaves()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            M5PModelTree(smoothing=-1.0)
        with pytest.raises(ValueError):
            M5PModelTree(ridge=-1.0)

    def test_introspection_before_fit(self):
        with pytest.raises(RuntimeError):
            M5PModelTree().n_leaves()
