"""FIG3-* -- reproduction of Figure 3 (two heterogeneous regions).

The paper plots, for each policy on the Ireland(m3.medium)+Munich(private)
deployment: row 1 the per-region RMTTF over time, row 2 the workload
fraction f_i, row 3 the client response time.  Each bench here regenerates
one row, prints the series the figure plots, asserts the paper's
qualitative shape, and times a real unit of the pipeline.
"""

import numpy as np

from repro.core import AcmManager, RegionSpec
from repro.core.metrics import rmttf_spread
from repro.experiments.figure3 import report_figure3
from repro.experiments.reporting import render_series

from .conftest import assert_simplex, series_tail_means


def _fresh_manager(policy):
    return AcmManager(
        regions=[
            RegionSpec("region1-ireland", "m3.medium", 6, 4, 160),
            RegionSpec("region3-munich", "private.small", 4, 3, 96),
        ],
        policy=policy,
        seed=3,
    )


def test_fig3_rmttf(benchmark, figure3_results):
    """Row 1: Policy 1 RMTTFs stabilise apart; Policies 2-3 converge."""
    # --- assertions on the full cached runs --------------------------- #
    spread1 = rmttf_spread(
        {
            k: figure3_results["sensible-routing"].traces.series(k)
            for k in figure3_results["sensible-routing"].traces.names()
            if k.startswith("rmttf/")
        }
    )
    spread2 = figure3_results["available-resources"].assessment.rmttf_spread
    spread3 = figure3_results["exploration"].assessment.rmttf_spread
    assert spread1 > 0.25, "Policy 1 must stabilise regions apart"
    assert spread2 < 0.08, "Policy 2 must converge tightly"
    assert spread3 < 0.12, "Policy 3 must converge"
    for policy in figure3_results:
        print(f"\n[{policy}]")
        print(
            render_series(
                figure3_results[policy].traces, "rmttf/", "RMTTF (s)"
            )
        )
    # --- timed unit: a 10-era loop chunk of the same deployment ------- #
    def unit():
        mgr = _fresh_manager("available-resources")
        mgr.run(10)
        return mgr

    benchmark(unit)


def test_fig3_fractions(benchmark, figure3_results):
    """Row 2: fractions stay on the simplex; Policy 2 finds capacity shares."""
    for policy, result in figure3_results.items():
        finals = {
            name: s.values[-1]
            for name, s in result.traces.matching("fraction/").items()
        }
        assert_simplex(finals.values())
    # Policy 2's split should reflect the real capacity imbalance:
    # region1 (4x55 cpu) vs region3 (3x40 cpu) => ~0.65 / 0.35.
    f2 = series_tail_means(figure3_results, "available-resources", "fraction/")
    f_region1 = f2["fraction/region1-ireland"]
    assert 0.55 < f_region1 < 0.8, f"capacity share off: {f_region1}"
    for policy in figure3_results:
        print(f"\n[{policy}]")
        print(
            render_series(
                figure3_results[policy].traces,
                "fraction/",
                "workload fraction f_i",
            )
        )

    def unit():
        mgr = _fresh_manager("sensible-routing")
        mgr.run(10)
        return mgr

    benchmark(unit)


def test_fig3_response_time(benchmark, figure3_results):
    """Row 3 + QUAL-4: response time below the 1 s SLA for every policy,
    and not strongly policy-dependent."""
    means = {}
    for policy, result in figure3_results.items():
        rt = result.traces.series("response_time")
        means[policy] = rt.mean()
        assert rt.mean() < 1.0, f"{policy} violates the 1 s SLA"
        # even transients stay bounded (paper's figure shows no spikes
        # past the threshold)
        assert rt.max() < 2.0
        print(f"\n[{policy}]")
        print(
            render_series(
                result.traces,
                "response_time",
                "client response time (ms)",
                scale=1000.0,
                unit="ms",
            )
        )
    # "its variations are not highly affected by some policy more than
    # others" -- policy means within 2x of each other
    lo, hi = min(means.values()), max(means.values())
    assert hi / lo < 2.0

    def unit():
        mgr = _fresh_manager("exploration")
        mgr.run(10)
        return mgr

    benchmark(unit)


def test_fig3_full_report(benchmark, figure3_results):
    """The complete Figure 3 text report renders (and is printed once)."""
    text = report_figure3(figure3_results)
    assert "paper-shape checks" in text
    assert "FAIL" not in text.splitlines()[-1], text.splitlines()[-1]
    print("\n" + text)
    benchmark(lambda: report_figure3(figure3_results))
