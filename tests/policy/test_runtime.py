"""PolicyHeadRuntime wired into real experiment runs.

The load-bearing property is the golden-trace guarantee: a frozen
static head drives the loop through the head path yet reproduces the
plain run bit-for-bit, and a run with no head at all is untouched by
the subsystem's existence.
"""

import numpy as np
import pytest

from repro.experiments.runner import run_policy_experiment
from repro.fleet.jobs import build_scenario
from repro.policy.guard import RewardGuard, RewardGuardConfig
from repro.policy.heads import ReinforceHead
from repro.policy.runtime import PolicyHeadRuntime, RewardConfig


def _run(policy_head=None, policy="sensible-routing", eras=15, seed=5):
    return run_policy_experiment(
        build_scenario("two-region", 1.0),
        policy,
        eras=eras,
        seed=seed,
        policy_head=policy_head,
    )


class TestRewardConfig:
    def test_rejects_nonpositive_sla(self):
        with pytest.raises(ValueError, match="sla_s"):
            RewardConfig(sla_s=0.0)

    def test_as_dict(self):
        d = RewardConfig(lambda_cost=2.0, mu_slo=0.25, sla_s=1.5).as_dict()
        assert d == {"lambda_cost": 2.0, "mu_slo": 0.25, "sla_s": 1.5}


class TestGoldenTraceGuarantee:
    def test_frozen_static_head_is_bit_identical_to_plain_run(self):
        plain = _run(policy_head=None)
        headed = _run(policy_head="static:sensible-routing")
        assert plain.traces.names() == headed.traces.names()
        for name in plain.traces.names():
            a = plain.traces.series(name)
            b = headed.traces.series(name)
            assert np.array_equal(a.times, b.times), name
            assert np.array_equal(a.values, b.values), name
        assert plain.head_stats is None
        assert headed.head_stats is not None
        assert headed.head_stats["head"] == "static:sensible-routing"
        assert headed.head_stats["eras"] == 15
        assert headed.head_stats["mean_threshold_delta_s"] == 0.0
        assert not headed.head_stats["fallback_engaged"]

    def test_manifest_digest_changes_only_when_head_set(self):
        plain = _run(policy_head=None, eras=10)
        headed = _run(policy_head="static:uniform", eras=10)
        # the head spec is part of the manifest's config digest, so a
        # headed run is distinguishable; a plain run keeps its
        # pre-subsystem digest (golden-trace provenance)
        assert plain.manifest.config_digest != headed.manifest.config_digest


class TestHeadEffects:
    def test_threshold_deltas_reach_the_disciplines(self):
        # W = 0 -> frozen argmax is arm 0 = (scale 0.6, delta -60 s):
        # a uniform scale (cancels) plus a constant threshold delta
        head = ReinforceHead(frozen=True)
        result = _run(policy_head=PolicyHeadRuntime(head))
        assert result.head_stats["mean_threshold_delta_s"] == -60.0
        assert result.head_stats["eras"] == 15

    def test_rewards_are_healthy_scale(self):
        result = _run(policy_head="static:sensible-routing")
        stats = result.head_stats
        assert 0.5 < stats["mean_reward"] <= 1.0
        assert 0.5 < stats["availability"] <= 1.0
        assert stats["cost_usd"] > 0.0


class TestGuardIntegration:
    def test_engaged_guard_reports_fallback(self):
        guard = RewardGuard(RewardGuardConfig(window=2, warmup_eras=2))
        guard.engaged = True  # pre-tripped: the sticky end state
        runtime = PolicyHeadRuntime(
            ReinforceHead(frozen=True), guard=guard
        )
        result = _run(policy_head=runtime)
        assert result.head_stats["fallback_engaged"] is True

    def test_healthy_run_never_trips_guard(self):
        guard = RewardGuard(RewardGuardConfig(window=3, warmup_eras=3))
        runtime = PolicyHeadRuntime(
            ReinforceHead(frozen=True), guard=guard
        )
        result = _run(policy_head=runtime)
        assert result.head_stats["fallback_engaged"] is False
        assert guard.observations == 15


class TestManagerValidation:
    def test_bad_policy_head_type_rejected(self):
        with pytest.raises(TypeError, match="policy_head"):
            _run(policy_head=42, eras=10)
