"""Units for the SLO evaluator: quantile estimator, spec grammar,
rolling window, and hysteresis verdicts."""

import math

import pytest

from repro.slo import SloConfig, SloEvaluator, nearest_rank_quantile, parse_slo_spec


class TestNearestRankQuantile:
    """Known-answer cases.  Nearest rank: the ceil(q*n)-th smallest."""

    def test_known_answers_n10(self):
        data = [float(v) for v in range(1, 11)]  # 1..10
        assert nearest_rank_quantile(data, 0.50) == 5.0
        assert nearest_rank_quantile(data, 0.95) == 10.0
        assert nearest_rank_quantile(data, 0.99) == 10.0

    def test_known_answers_n20(self):
        data = [float(v) for v in range(1, 21)]  # 1..20
        assert nearest_rank_quantile(data, 0.50) == 10.0
        # 0.95 * 20 == 19.000000000000004 in floats: the epsilon guard
        # must keep this at the 19th order statistic, not the max
        assert nearest_rank_quantile(data, 0.95) == 19.0
        assert nearest_rank_quantile(data, 0.99) == 20.0

    def test_known_answers_n5(self):
        data = [9.0, 1.0, 7.0, 3.0, 5.0]  # unsorted on purpose
        assert nearest_rank_quantile(data, 0.50) == 5.0
        assert nearest_rank_quantile(data, 0.95) == 9.0
        assert nearest_rank_quantile(data, 0.99) == 9.0

    def test_single_sample(self):
        assert nearest_rank_quantile([4.2], 0.5) == 4.2
        assert nearest_rank_quantile([4.2], 0.99) == 4.2

    def test_extremes(self):
        data = [3.0, 1.0, 2.0]
        assert nearest_rank_quantile(data, 0.0) == 1.0
        assert nearest_rank_quantile(data, 1.0) == 3.0

    def test_empty_sample_is_nan(self):
        assert math.isnan(nearest_rank_quantile([], 0.95))

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            nearest_rank_quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            nearest_rank_quantile([1.0], -0.1)


class TestSpecGrammar:
    def test_minimal_spec(self):
        cfg = parse_slo_spec("p95:0.5")
        assert cfg.p95_target_s == 0.5
        assert cfg.min_dwell_s == 60.0  # default

    def test_full_spec(self):
        cfg = parse_slo_spec(
            "p95:0.5+exit:0.7+queue:10+budget:0.05+window:30+dwell:120+shed:0.25"
        )
        assert cfg.p95_target_s == 0.5
        assert cfg.exit_ratio == 0.7
        assert cfg.queue_depth_max == 10.0
        assert cfg.error_budget == 0.05
        assert cfg.window_s == 30.0
        assert cfg.min_dwell_s == 120.0
        assert cfg.shed_factor == 0.25

    def test_round_trip(self):
        for spec in ("p95:0.5", "p95:0.5+dwell:120+shed:0.25"):
            cfg = parse_slo_spec(spec)
            assert parse_slo_spec(cfg.spec()) == cfg

    def test_spec_omits_defaults(self):
        assert SloConfig(p95_target_s=0.5).spec() == "p95:0.5"

    def test_rejects_garbage(self):
        for bad in ("", "p95", "p95:abc", "nope:1", "p95:0.5,dwell:3"):
            with pytest.raises(ValueError):
                parse_slo_spec(bad)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SloConfig(p95_target_s=0.0)
        with pytest.raises(ValueError):
            SloConfig(exit_ratio=1.5)
        with pytest.raises(ValueError):
            SloConfig(shed_factor=0.0)
        with pytest.raises(ValueError):
            SloConfig(window_s=-1.0)


class TestEvaluator:
    def make(self, **kw) -> SloEvaluator:
        defaults = dict(p95_target_s=1.0, window_s=10.0)
        defaults.update(kw)
        return SloEvaluator(SloConfig(**defaults))

    def test_empty_window_is_healthy(self):
        ev = self.make()
        status = ev.status(0.0)
        assert not status.breach
        assert status.recovered
        assert math.isnan(status.p95_s)

    def test_breach_on_slow_p95(self):
        ev = self.make()
        for i in range(20):
            ev.observe_latency(float(i) * 0.1, 2.0)
        status = ev.status(2.0)
        assert status.breach
        assert not status.recovered

    def test_hysteresis_band_neither_breach_nor_recovered(self):
        # p95 between exit (0.8) and enter (1.0) thresholds
        ev = self.make()
        for i in range(10):
            ev.observe_latency(float(i) * 0.1, 0.9)
        status = ev.status(1.0)
        assert not status.breach
        assert not status.recovered

    def test_fast_p95_is_recovered(self):
        ev = self.make()
        for i in range(10):
            ev.observe_latency(float(i) * 0.1, 0.1)
        status = ev.status(1.0)
        assert not status.breach
        assert status.recovered

    def test_window_trims_old_samples(self):
        ev = self.make(window_s=5.0)
        ev.observe_latency(0.0, 9.0)  # breach-worthy, but stale later
        assert ev.status(1.0).breach
        status = ev.status(10.0)  # sample aged out of the window
        assert not status.breach
        assert status.samples == 0

    def test_error_budget_signal(self):
        ev = self.make(error_budget=0.1)
        for i in range(10):
            ev.observe_outcome(float(i) * 0.1, ok=(i % 2 == 0))
        status = ev.status(1.0)  # 50% errors against a 10% budget
        assert status.error_rate == pytest.approx(0.5)
        assert status.breach

    def test_queue_depth_signal(self):
        ev = self.make(queue_depth_max=10.0)
        ev.set_queue_depth(50.0)
        assert ev.status(0.0).breach
        ev.set_queue_depth(1.0)
        assert ev.status(0.0).recovered
