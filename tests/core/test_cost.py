"""Tests for the deployment cost tracker and request-pricing model."""

import pytest

from repro.core import CostTracker
from repro.core.cost import CostModel, cost_model_for, effective_usd_per_req
from repro.pcam import OracleRttfPredictor, VirtualMachineController, VmcConfig, VmState
from repro.sim import M3_MEDIUM, RngRegistry

from ..pcam.conftest import build_vm


@pytest.fixture
def vmc():
    rngs = RngRegistry(seed=8)
    vms = [
        build_vm(rngs, name=f"cost/vm{i}", itype=M3_MEDIUM) for i in range(4)
    ]
    return VirtualMachineController(
        "cost", vms, OracleRttfPredictor(), VmcConfig(target_active=2)
    )


class TestCostTracker:
    def test_active_vms_pay_full_rate(self, vmc):
        tracker = CostTracker(standby_multiplier=0.0)
        charge = tracker.charge_era(vmc, dt_s=3600.0)
        # 2 active x 1 hour at the m3.medium rate; standbys free here
        assert charge == pytest.approx(2 * M3_MEDIUM.hourly_cost)

    def test_standby_multiplier(self, vmc):
        tracker = CostTracker(standby_multiplier=0.5)
        charge = tracker.charge_era(vmc, dt_s=3600.0)
        expected = (2 + 0.5 * 2) * M3_MEDIUM.hourly_cost
        assert charge == pytest.approx(expected)

    def test_rejuvenating_pays_full_rate(self, vmc):
        vmc.vms_in(VmState.ACTIVE)[0].start_rejuvenation()
        tracker = CostTracker(standby_multiplier=0.0)
        charge = tracker.charge_era(vmc, dt_s=3600.0)
        # 1 active + 1 rejuvenating at full rate
        assert charge == pytest.approx(2 * M3_MEDIUM.hourly_cost)

    def test_failed_pays_full_rate(self, vmc):
        # regression: a crashed-but-provisioned VM still costs money
        # until it is deprovisioned -- FAILED must bill like ACTIVE,
        # which is what the docstring now promises
        vmc.vms_in(VmState.ACTIVE)[0].fail()
        tracker = CostTracker(standby_multiplier=0.0)
        charge = tracker.charge_era(vmc, dt_s=3600.0)
        # 1 active + 1 failed, both at the full rate
        assert charge == pytest.approx(2 * M3_MEDIUM.hourly_cost)

    def test_per_state_billing_matrix(self, vmc):
        active = vmc.vms_in(VmState.ACTIVE)
        active[0].fail()
        active[1].start_rejuvenation()
        tracker = CostTracker(standby_multiplier=0.25)
        charge = tracker.charge_era(vmc, dt_s=3600.0)
        # 1 failed + 1 rejuvenating at full rate, 2 standby at 25%
        expected = (2 + 0.25 * 2) * M3_MEDIUM.hourly_cost
        assert charge == pytest.approx(expected)

    def test_accumulates_per_region(self, vmc):
        tracker = CostTracker()
        tracker.charge_era(vmc, dt_s=1800.0, requests_served=500)
        tracker.charge_era(vmc, dt_s=1800.0, requests_served=500)
        assert tracker.per_region_usd["cost"] == pytest.approx(
            tracker.total_usd
        )
        assert tracker.requests_served == 1000

    def test_cost_per_million(self, vmc):
        tracker = CostTracker(standby_multiplier=0.0)
        tracker.charge_era(vmc, dt_s=3600.0, requests_served=1_000_000)
        assert tracker.cost_per_million_requests() == pytest.approx(
            2 * M3_MEDIUM.hourly_cost
        )

    def test_cost_per_million_no_requests(self):
        assert CostTracker().cost_per_million_requests() == float("inf")

    def test_summary_renders(self, vmc):
        tracker = CostTracker()
        tracker.charge_era(vmc, 3600.0, requests_served=100)
        assert "cost=$" in tracker.summary()
        assert "/M requests" in tracker.summary()

    def test_validation(self, vmc):
        with pytest.raises(ValueError):
            CostTracker(standby_multiplier=1.5)
        tracker = CostTracker()
        with pytest.raises(ValueError):
            tracker.charge_era(vmc, 0.0)
        with pytest.raises(ValueError):
            tracker.charge_era(vmc, 1.0, requests_served=-1)


class TestCostModel:
    def test_marginal_request_pricing(self, vmc):
        model = CostModel(usd_per_req={"cost": 2e-6})
        tracker = CostTracker(standby_multiplier=0.0, model=model)
        charge = tracker.charge_era(vmc, dt_s=3600.0, requests_served=1000)
        expected = 2 * M3_MEDIUM.hourly_cost + 1000 * 2e-6
        assert charge == pytest.approx(expected)

    def test_unknown_region_prices_at_zero(self, vmc):
        model = CostModel(usd_per_req={"elsewhere": 1.0})
        tracker = CostTracker(standby_multiplier=0.0, model=model)
        charge = tracker.charge_era(vmc, dt_s=3600.0, requests_served=1000)
        assert charge == pytest.approx(2 * M3_MEDIUM.hourly_cost)

    def test_egress_billing(self):
        tracker = CostTracker(model=CostModel(egress_usd_per_req=1e-6))
        charge = tracker.charge_egress(500)
        assert charge == pytest.approx(5e-4)
        assert tracker.egress_usd == pytest.approx(5e-4)
        assert tracker.egress_requests == 500
        assert tracker.total_usd == pytest.approx(5e-4)

    def test_egress_is_noop_without_model(self):
        tracker = CostTracker()
        assert tracker.charge_egress(500) == 0.0
        assert tracker.total_usd == 0.0
        with pytest.raises(ValueError):
            tracker.charge_egress(-1)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            CostModel(usd_per_req={"r": -1.0})
        with pytest.raises(ValueError):
            CostModel(egress_usd_per_req=-0.1)

    def test_cost_model_for_reads_catalog(self):
        from repro.core.manager import RegionSpec

        specs = [
            RegionSpec("r1", "m3.medium", 4, 2, 100),
            RegionSpec("r3", "private.small", 4, 2, 100),
        ]
        model = cost_model_for(specs, egress_usd_per_req=2.5e-7)
        assert model.usd_per_req["r1"] > 0
        assert model.usd_per_req["r3"] > 0
        assert model.egress_usd_per_req == 2.5e-7

    def test_effective_price_orders_the_paper_shapes(self):
        from repro.sim.instances import get_instance_type

        private = effective_usd_per_req(get_instance_type("private.small"))
        medium = effective_usd_per_req(get_instance_type("m3.medium"))
        small = effective_usd_per_req(get_instance_type("m3.small"))
        # the privately-hosted region is the cheapest per request (the
        # paper's economic motivation); m3.small is the priciest because
        # its hourly charge amortises over the least capacity
        assert private < medium < small


class TestDegenerateCases:
    """Satellite: zero-request / single-region sentinel behaviour."""

    def test_zero_requests_is_inf_sentinel(self, vmc):
        tracker = CostTracker()
        tracker.charge_era(vmc, dt_s=3600.0)  # billed hours, no requests
        assert tracker.total_usd > 0
        assert tracker.cost_per_million_requests() == float("inf")

    def test_single_region_no_egress(self, vmc):
        tracker = CostTracker(
            standby_multiplier=0.0,
            model=CostModel(
                usd_per_req={"cost": 1e-6}, egress_usd_per_req=1e-6
            ),
        )
        tracker.charge_era(vmc, dt_s=3600.0, requests_served=1_000_000)
        # a single region never forwards, so egress is never charged
        assert tracker.charge_egress(0) == 0.0
        assert tracker.egress_usd == 0.0
        assert tracker.cost_per_million_requests() == pytest.approx(
            2 * M3_MEDIUM.hourly_cost + 1.0
        )
