"""The training loop and eval harness: determinism, resume, acceptance.

The acceptance anchors here were sized empirically: at drift factor 6
Policy 1's availability degrades to ~0.93, which is the headroom the
bandit learns to reclaim (~0.95 with the small budget below).
"""

import json

import pytest

from repro.policy.evaluate import (
    EvalConfig,
    evaluate_heads,
    frontier_table,
    frozen_spec,
    regret_report,
)
from repro.policy.train import (
    FINAL_CHECKPOINT,
    HISTORY_FILE,
    TrainConfig,
    load_history,
    run_rollout_episode,
    train_policy_head,
)


def _cfg(out_dir, **overrides):
    kwargs = dict(
        head_kind="bandit",
        scenario="two-region",
        rounds=2,
        episodes_per_round=2,
        eras=10,
        seed=7,
        workers=1,
        out_dir=str(out_dir),
    )
    kwargs.update(overrides)
    return TrainConfig(**kwargs)


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="head_kind"):
            TrainConfig(head_kind="static")
        with pytest.raises(ValueError):
            TrainConfig(scenario="three-region+bogus")
        with pytest.raises(ValueError, match="rounds"):
            TrainConfig(rounds=0)
        with pytest.raises(ValueError, match="eras"):
            TrainConfig(eras=5)


class TestRolloutEpisode:
    def test_static_head_episode_logs_no_transitions(self):
        payload = run_rollout_episode(
            scenario="two-region",
            head_spec="static:uniform",
            fallback_policy="uniform",
            eras=10,
            seed=3,
        )
        assert payload["transitions"] == []
        assert payload["kind"] == "static"
        assert len(payload["rewards"]) == 10

    def test_payload_is_json_able_and_seed_deterministic(self, tmp_path):
        from repro.policy.checkpoint import save_head
        from repro.policy.heads import BanditHead

        spec = str(save_head(BanditHead(), tmp_path / "h.json"))
        kwargs = dict(
            scenario="two-region",
            head_spec=spec,
            fallback_policy="sensible-routing",
            eras=10,
            seed=11,
        )
        a = run_rollout_episode(**kwargs)
        b = run_rollout_episode(**kwargs)
        assert json.loads(json.dumps(a)) == a
        assert a == b
        assert len(a["transitions"]) == 10


class TestTrainingDeterminism:
    def test_same_seed_twice_is_byte_identical(self, tmp_path):
        r1 = train_policy_head(_cfg(tmp_path / "a"))
        r2 = train_policy_head(_cfg(tmp_path / "b"))
        assert r1.digest == r2.digest
        assert r1.checkpoint.read_bytes() == r2.checkpoint.read_bytes()
        assert [row["mean_reward"] for row in r1.history] == [
            row["mean_reward"] for row in r2.history
        ]

    def test_worker_count_never_reaches_the_parameters(self, tmp_path):
        serial = train_policy_head(_cfg(tmp_path / "w1", workers=1))
        fanned = train_policy_head(_cfg(tmp_path / "w4", workers=4))
        assert serial.digest == fanned.digest
        assert (
            serial.checkpoint.read_bytes() == fanned.checkpoint.read_bytes()
        )

    def test_resume_replays_from_the_store(self, tmp_path):
        cfg = _cfg(tmp_path / "r")
        cold = train_policy_head(cfg)
        warm = train_policy_head(cfg)
        # 2 rounds x 2 episodes x (1 learned + 2 baselines) = 12 jobs
        assert cold.executed == 12 and cold.store_hits == 0
        assert warm.executed == 0 and warm.store_hits == 12
        assert warm.digest == cold.digest

    def test_history_document(self, tmp_path):
        cfg = _cfg(tmp_path / "h")
        result = train_policy_head(cfg)
        doc = load_history(cfg.out_dir)
        assert doc["final_checkpoint"] == FINAL_CHECKPOINT
        assert doc["final_digest"] == result.digest
        assert len(doc["rounds"]) == 2
        for row in doc["rounds"]:
            assert set(row["baselines"]) == set(cfg.baselines)
            assert row["regret"] == pytest.approx(
                max(row["baselines"].values()) - row["mean_reward"]
            )
        assert (tmp_path / "h" / HISTORY_FILE).exists()
        assert len(result.regret_curve) == 2


class TestEvalHarness:
    def test_frozen_spec_grammar(self):
        assert frozen_spec("static:uniform") == "static:uniform"
        assert frozen_spec("frozen:/tmp/h.json") == "frozen:/tmp/h.json"
        assert frozen_spec("/tmp/h.json") == "frozen:/tmp/h.json"

    def test_paired_seeds_across_heads(self):
        cfg = EvalConfig(
            heads=("static:uniform", "static:sensible-routing"),
            scenarios=("two-region",),
            replicates=2,
            eras=10,
        )
        jobs = cfg.jobs()
        by_head = {}
        for job in jobs:
            by_head.setdefault(job.policy_head, []).append(job.seed)
        seeds = list(by_head.values())
        assert len(seeds) == 2 and seeds[0] == seeds[1]

    def test_campaign_rows_and_frontier_table(self, tmp_path):
        cfg = EvalConfig(
            heads=("static:uniform", "static:sensible-routing"),
            scenarios=("two-region",),
            fallback_policy="uniform",
            replicates=1,
            eras=10,
            workers=2,
            store_dir=str(tmp_path / "store"),
        )
        result = evaluate_heads(cfg)
        assert len(result.rows) == 2
        row = result.row("two-region", "static:sensible-routing")
        assert row.n == 1
        assert 0.0 < row.metrics["availability"] <= 1.0
        assert "mean_reward" in row.metrics
        table = frontier_table(result)
        assert table.startswith("# manifest:")
        assert "| scenario | head | n | availability |" in table
        assert "static:uniform" in table
        # same store, second pass: pure replay
        again = evaluate_heads(cfg)
        assert again.executed == 0 and again.store_hits == 2


@pytest.mark.slow
class TestDriftedAcceptance:
    """The PR's headline claim: a trained bandit beats Policy 1 on the
    drifted scenario it trained on (paired eval seeds)."""

    def test_bandit_beats_policy1_under_drift(self, tmp_path):
        cfg = TrainConfig(
            head_kind="bandit",
            scenario="three-region+drift6",
            rounds=3,
            episodes_per_round=3,
            eras=30,
            seed=7,
            workers=2,
            out_dir=str(tmp_path / "train"),
        )
        trained = train_policy_head(cfg)
        assert trained.checkpoint.exists()

        eval_cfg = EvalConfig(
            heads=("static:sensible-routing", str(trained.checkpoint)),
            scenarios=("three-region+drift6",),
            replicates=3,
            eras=30,
            seed=11,
            workers=2,
        )
        result = evaluate_heads(eval_cfg)
        p1 = result.row("three-region+drift6", "static:sensible-routing")
        learned = result.row(
            "three-region+drift6", str(trained.checkpoint)
        )
        assert (
            learned.metrics["availability"] > p1.metrics["availability"]
        ), (learned.metrics, p1.metrics)

        report = regret_report(load_history(cfg.out_dir))
        assert "| round |" in report
        assert report.count("|") > 8

    def test_regret_report_handles_empty_history(self):
        assert "no completed rounds" in regret_report({"rounds": []})
