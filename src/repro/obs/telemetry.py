"""The `Telemetry` facade: one switch for the whole subsystem.

Components take a single optional ``telemetry`` argument and never check
whether it is on: they ask for handles and use them.  A disabled facade
(the default) hands out shared null handles whose methods do nothing --
no clock reads, no allocation, no branching beyond the call itself -- so
instrumented code is bit-identical to un-instrumented code when
telemetry is off.  ``enabled`` is fixed at construction: flipping
telemetry mid-run would produce dumps that silently start at an
arbitrary point, which is worse than not having them.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.obs.exporters import (
    to_chrome_trace,
    to_prometheus_text,
    write_jsonl,
)
from repro.obs.flight import FlightRecorder
from repro.obs.manifest import RunManifest
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import AsyncSpanHandle, SpanTracer


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullHandle:
    """Stands in for an :class:`AsyncSpanHandle` when telemetry is off."""

    __slots__ = ()


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_HANDLE = _NullHandle()


@contextmanager
def _null_span() -> Iterator[dict]:
    yield {}


class Telemetry:
    """Facade over registry + tracer + flight recorder (see module doc).

    The three stores are public attributes (``registry``, ``tracer``,
    ``flight``) when enabled and ``None`` when disabled, so tests and
    exporters can reach the underlying objects directly.
    """

    __slots__ = ("enabled", "registry", "tracer", "flight", "manifest", "autodump_path")

    def __init__(self, enabled: bool = False, flight_capacity: int = 512) -> None:
        self.enabled = bool(enabled)
        self.manifest: RunManifest | None = None
        self.autodump_path: str | None = None
        if self.enabled:
            self.registry: MetricsRegistry | None = MetricsRegistry()
            self.tracer: SpanTracer | None = SpanTracer()
            self.flight: FlightRecorder | None = FlightRecorder(flight_capacity)
        else:
            self.registry = None
            self.tracer = None
            self.flight = None

    def __bool__(self) -> bool:
        return self.enabled

    # -------------------------------------------------------------- #
    # clock + manifest
    # -------------------------------------------------------------- #

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Attach the (simulated) time source; no-op when disabled."""
        if self.enabled:
            self.tracer.set_clock(clock)

    def set_manifest(self, manifest: RunManifest) -> None:
        if self.enabled:
            self.manifest = manifest

    # -------------------------------------------------------------- #
    # metric handles
    # -------------------------------------------------------------- #

    def counter(self, name: str, **labels: str) -> Counter | _NullCounter:
        if not self.enabled:
            return _NULL_COUNTER
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge | _NullGauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self.registry.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels: str,
    ) -> Histogram | _NullHistogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self.registry.histogram(name, bounds, **labels)

    # -------------------------------------------------------------- #
    # spans
    # -------------------------------------------------------------- #

    def span(self, name: str, kind: str = "span", **args: Any):
        if not self.enabled:
            return _null_span()
        return self.tracer.span(name, kind=kind, **args)

    def instant(self, name: str, kind: str = "span", **args: Any) -> None:
        if self.enabled:
            self.tracer.instant(name, kind=kind, **args)

    def open_span(
        self, name: str, kind: str, **args: Any
    ) -> AsyncSpanHandle | _NullHandle:
        if not self.enabled:
            return _NULL_HANDLE
        return self.tracer.open(name, kind, **args)

    def close_span(self, handle, **args: Any) -> None:
        if self.enabled and not isinstance(handle, _NullHandle):
            self.tracer.close(handle, **args)

    # -------------------------------------------------------------- #
    # flight events
    # -------------------------------------------------------------- #

    def event(self, kind: str, **data: Any) -> None:
        """Record a flight event stamped with the tracer's current time."""
        if self.enabled:
            self.flight.record(self.tracer.now, kind, **data)

    # -------------------------------------------------------------- #
    # export
    # -------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """The canonical dump document (JSON-ready)."""
        if not self.enabled:
            return {"enabled": False}
        doc: dict = {
            "enabled": True,
            "manifest": self.manifest.as_dict() if self.manifest else None,
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.snapshot(),
            "events": self.flight.snapshot(),
        }
        return doc

    def dump_json(self, path: str) -> None:
        """Write the canonical dump document to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=1)

    def maybe_autodump(self) -> str | None:
        """Dump to the configured ``autodump_path`` (failure/campaign-end
        hook); returns the path written, or ``None`` if nothing to do."""
        if self.enabled and self.autodump_path:
            self.dump_json(self.autodump_path)
            return self.autodump_path
        return None

    def export_jsonl(self, path: str) -> None:
        if not self.enabled:
            raise RuntimeError("cannot export from a disabled Telemetry")
        write_jsonl(
            path,
            self.registry.snapshot(),
            self.tracer.snapshot(),
            self.flight.snapshot(),
            self.manifest,
        )

    def export_prometheus(self, path: str) -> None:
        if not self.enabled:
            raise RuntimeError("cannot export from a disabled Telemetry")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus_text(self.registry.snapshot(), self.manifest))

    def export_chrome_trace(self, path: str) -> None:
        if not self.enabled:
            raise RuntimeError("cannot export from a disabled Telemetry")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(to_chrome_trace(self.tracer.snapshot(), self.manifest), fh, indent=1)


#: Shared disabled facade -- the default ``telemetry or NULL_TELEMETRY``
#: target, so components never need their own None checks.
NULL_TELEMETRY = Telemetry(enabled=False)
