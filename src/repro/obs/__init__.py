"""repro.obs -- the unified observability subsystem.

The paper's whole evaluation is time-series driven and the roadmap's
north star is a production-scale control plane; neither is operable
without first-class telemetry.  This package is the monitoring substrate
the surveyed elastic-management frameworks treat as a dedicated layer
(Saxena et al. 2022; Qu et al. 2016), built from four parts:

* :mod:`repro.obs.metrics` -- a registry of counters, gauges, and
  fixed-bucket (log-spaced) histograms keyed by name + label tuple,
  allocation-light on the hot path;
* :mod:`repro.obs.spans` -- span tracing on the *simulator* clock, with
  a context-manager API for the strictly nested MAPE phases and an
  async-slot API for overlapping channel send/retry cycles, exportable
  as Chrome trace-event JSON (viewable in Perfetto);
* :mod:`repro.obs.flight` -- a bounded ring buffer of recent structured
  events (drops, degradation transitions, chaos faults, elections) for
  post-mortems without re-running;
* :mod:`repro.obs.exporters` -- JSONL and Prometheus text formats, plus
  the :class:`~repro.obs.manifest.RunManifest` (seed, config digest,
  package version) attached to every export.

Everything is reached through one :class:`~repro.obs.telemetry.Telemetry`
facade.  A disabled facade (the default) is a strict no-op: every handle
it returns swallows its calls, no clock is read, and instrumented code
paths stay bit-identical to their un-instrumented behaviour.
"""

from repro.obs.flight import FlightEvent, FlightRecorder
from repro.obs.manifest import RunManifest, config_digest
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.spans import Span, SpanTracer, validate_nesting
from repro.obs.summary import summarize_dump
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "log_buckets",
    "Span",
    "SpanTracer",
    "validate_nesting",
    "FlightEvent",
    "FlightRecorder",
    "RunManifest",
    "config_digest",
    "Telemetry",
    "NULL_TELEMETRY",
    "summarize_dump",
]
