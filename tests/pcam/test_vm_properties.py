"""Property-based tests for the VM physics model.

The policy dynamics rest on a handful of monotonicity properties of the
VM model; if any of these breaks, the reproduction's conclusions become
artefacts.  Hypothesis sweeps the state space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcam.vm import VirtualMachine
from repro.sim import INSTANCE_CATALOG, RngRegistry
from repro.workload import AnomalyInjector

SHAPES = sorted(INSTANCE_CATALOG)


def make_vm(shape, leaked=0.0, threads=0):
    rngs = RngRegistry(seed=1)
    vm = VirtualMachine(
        "prop/vm",
        INSTANCE_CATALOG[shape],
        AnomalyInjector(rngs.stream("a")),
    )
    vm.activate()
    vm.leaked_mb = leaked
    vm.stuck_threads = threads
    return vm


@settings(max_examples=60, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    r1=st.floats(0.1, 50.0),
    r2=st.floats(0.1, 50.0),
)
def test_response_time_monotone_in_rate(shape, r1, r2):
    vm = make_vm(shape)
    lo, hi = sorted((r1, r2))
    assert vm.response_time_s(lo) <= vm.response_time_s(hi) + 1e-12


@settings(max_examples=60, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    leak_fraction=st.floats(0.0, 1.0),
    thread_fraction=st.floats(0.0, 1.0),
)
def test_effective_capacity_never_exceeds_nameplate(
    shape, leak_fraction, thread_fraction
):
    vm = make_vm(shape)
    vm.leaked_mb = leak_fraction * vm.anomaly_budget_mb
    vm.stuck_threads = int(thread_fraction * vm.itype.thread_slots)
    assert 0 < vm.effective_capacity <= vm.itype.cpu_power + 1e-12


@settings(max_examples=60, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    a=st.floats(0.0, 1.0),
    b=st.floats(0.0, 1.0),
)
def test_capacity_monotone_in_leak(shape, a, b):
    lo, hi = sorted((a, b))
    vm_lo = make_vm(shape)
    vm_hi = make_vm(shape)
    vm_lo.leaked_mb = lo * vm_lo.anomaly_budget_mb
    vm_hi.leaked_mb = hi * vm_hi.anomaly_budget_mb
    assert vm_hi.effective_capacity <= vm_lo.effective_capacity + 1e-12


@settings(max_examples=40, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    rate=st.floats(1.0, 30.0),
    leak_fraction=st.floats(0.0, 0.8),
)
def test_ttf_decreasing_in_accumulated_leak(shape, rate, leak_fraction):
    fresh = make_vm(shape)
    worn = make_vm(shape, leaked=leak_fraction * fresh.anomaly_budget_mb)
    assert (
        worn.true_time_to_failure_s(rate)
        <= fresh.true_time_to_failure_s(rate) + 1e-4
    )


@settings(max_examples=40, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    r1=st.floats(1.0, 30.0),
    r2=st.floats(1.0, 30.0),
)
def test_ttf_decreasing_in_rate(shape, r1, r2):
    lo, hi = sorted((r1, r2))
    vm = make_vm(shape)
    assert (
        vm.true_time_to_failure_s(hi)
        <= vm.true_time_to_failure_s(lo) + 1e-9
    )


@settings(max_examples=40, deadline=None)
@given(
    shape=st.sampled_from(SHAPES),
    n=st.integers(0, 5000),
)
def test_failure_point_consistent_with_budget(shape, n):
    """After any load, either the budget holds or the VM is FAILED."""
    vm = make_vm(shape)
    vm.apply_load(n, 60.0)
    if vm.leaked_mb >= vm.anomaly_budget_mb or vm.thread_pressure >= 1.0:
        assert vm.state.value == "failed"


@settings(max_examples=40, deadline=None)
@given(shape=st.sampled_from(SHAPES), n=st.integers(0, 2000))
def test_feature_sample_always_valid(shape, n):
    vm = make_vm(shape)
    vm.apply_load(n, 60.0)
    row = vm.sample_features().to_array()
    assert np.all(np.isfinite(row))
    fv = vm.sample_features()
    assert fv.mem_used_mb >= 0
    assert fv.mem_free_mb >= 0
    assert fv.cpu_idle_pct >= 0
    assert fv.num_threads >= 0
