"""Retrain-vs-frozen: the online lifecycle on a drifted workload.

The drift scenario: the F2PM model is profiled and trained at the
paper's default anomaly probabilities, then deployed against a workload
whose memory-leak probability is ``drift_factor`` times higher.  Leaks
accumulate faster than anything in the training data, so the frozen
model systematically mis-times failures -- early in the run it
over-predicts RTTF (the dangerous direction: PCAM swaps too late and
VMs hard-fail).  Every completed life, however, yields labelled
training samples, so an online lifecycle that retrains on the streamed
labels learns the drifted regime.

:func:`run_retrain_vs_frozen` runs the two configurations -- identical
deployments, identical seeds, lifecycle collecting in both, retraining
only in one -- and reports

* the **retrain gain**: the deployed model's MAPE on the realized
  labels measured immediately before the first in-sim retrain vs the
  retrained model's out-of-fold CV MAPE on the same dataset (the
  ISSUE's "measurable MAPE improvement after one in-sim retrain");
* the realized per-life drift (censoring-aware MAPE of predicted vs
  realized RTTF) over the tail of each run, plus each run's hard
  failure count, for the operational picture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.manager import AcmManager, RegionSpec
from repro.experiments.runner import make_trained_predictor
from repro.ml.online.lifecycle import OnlineLifecycle, OnlineLifecycleConfig
from repro.workload.anomalies import DEFAULT_LEAK_PROBABILITY


@dataclass(frozen=True)
class OnlineComparison:
    """Outcome of one retrain-vs-frozen comparison."""

    eras: int
    drift_factor: float
    retrains: int
    #: deployed model's MAPE on the realized labels, just before the
    #: first retrain / the retrained model's CV MAPE on the same data
    pre_retrain_mape: float
    post_retrain_mape: float
    #: mean per-life drift MAPE over the tail (last third of lives)
    frozen_tail_mape: float
    online_tail_mape: float
    frozen_failures: int
    online_failures: int
    frozen_stats: dict
    online_stats: dict

    @property
    def improved(self) -> bool:
        """Did the first in-sim retrain measurably reduce model MAPE?"""
        return (
            np.isfinite(self.pre_retrain_mape)
            and self.post_retrain_mape < self.pre_retrain_mape
        )

    def table(self) -> str:
        lines = [
            f"first retrain: model MAPE {self.pre_retrain_mape:.3f} -> "
            f"{self.post_retrain_mape:.3f} on the realized labels",
            f"{'configuration':<12} {'retrains':>9} {'tail drift':>11} "
            f"{'failures':>9}",
            f"{'frozen':<12} {0:>9} {self.frozen_tail_mape:>11.3f} "
            f"{self.frozen_failures:>9}",
            f"{'online':<12} {self.retrains:>9} "
            f"{self.online_tail_mape:>11.3f} {self.online_failures:>9}",
        ]
        return "\n".join(lines)


def _tail_mape(lifecycle: OnlineLifecycle) -> float:
    """Mean per-life drift over the last third of completed lives."""
    scores = lifecycle.drift.life_scores
    if not scores:
        return float("nan")
    tail = scores[max(len(scores) - max(len(scores) // 3, 1), 0):]
    return float(np.mean(tail))


def _run_one(
    *,
    eras: int,
    seed: int,
    era_s: float,
    drift_factor: float,
    config: OnlineLifecycleConfig,
    clients: int,
    model_name: str,
    profile_rates: tuple[float, ...],
    runs_per_rate: int,
) -> tuple[OnlineLifecycle, int]:
    """Run one configuration; returns (lifecycle, hard failures)."""
    # A fresh, identically-trained predictor per configuration: the
    # online run mutates its model in place, so sharing one instance
    # would contaminate the frozen baseline.
    predictor = make_trained_predictor(
        ["private.small"],
        seed=seed,
        model_name=model_name,
        profile_rates=profile_rates,
        runs_per_rate=runs_per_rate,
    )
    manager = AcmManager(
        regions=[
            RegionSpec("region1", "private.small", 6, 4, clients)
        ],
        policy="available-resources",
        seed=seed,
        era_s=era_s,
        predictor=predictor,
        leak_probability=DEFAULT_LEAK_PROBABILITY * drift_factor,
        online=config,
    )
    manager.run(eras)
    assert manager.online_lifecycle is not None
    failures = sum(
        vmc.total_failures for vmc in manager.loop.vmcs.values()
    )
    return manager.online_lifecycle, failures


def run_retrain_vs_frozen(
    *,
    eras: int = 90,
    seed: int = 7,
    era_s: float = 30.0,
    drift_factor: float = 2.0,
    retrain_interval_eras: int = 15,
    min_new_samples: int = 24,
    clients: int = 140,
    model_name: str = "rep-tree",
    profile_rates: tuple[float, ...] = (4.0, 8.0, 14.0, 22.0),
    runs_per_rate: int = 2,
) -> OnlineComparison:
    """Run the drifted deployment frozen and online; compare.

    Both runs use the same seed, the same separately-trained predictor,
    and a lifecycle that collects labels and scores drift; only the
    online run retrains (every ``retrain_interval_eras`` eras).
    """
    if drift_factor <= 1.0:
        raise ValueError("drift_factor must exceed 1 (that's the drift)")
    common = dict(
        min_new_samples=min_new_samples,
        # the comparison measures raw drift; an engaged fallback would
        # change rejuvenation behaviour mid-run and confound it
        drift_threshold=1e9,
    )
    frozen_cfg = OnlineLifecycleConfig(retrain_interval_eras=0, **common)
    online_cfg = OnlineLifecycleConfig(
        retrain_interval_eras=retrain_interval_eras, **common
    )
    kwargs = dict(
        eras=eras,
        seed=seed,
        era_s=era_s,
        drift_factor=drift_factor,
        clients=clients,
        model_name=model_name,
        profile_rates=profile_rates,
        runs_per_rate=runs_per_rate,
    )
    frozen, frozen_failures = _run_one(config=frozen_cfg, **kwargs)
    online, online_failures = _run_one(config=online_cfg, **kwargs)
    first = (
        online.retrain_history[0]
        if online.retrain_history
        else {"pre_mape": float("nan"), "post_mape": float("nan")}
    )
    return OnlineComparison(
        eras=eras,
        drift_factor=drift_factor,
        retrains=online.retrains,
        pre_retrain_mape=float(first["pre_mape"]),
        post_retrain_mape=float(first["post_mape"]),
        frozen_tail_mape=_tail_mape(frozen),
        online_tail_mape=_tail_mape(online),
        frozen_failures=frozen_failures,
        online_failures=online_failures,
        frozen_stats=frozen.stats(),
        online_stats=online.stats(),
    )
