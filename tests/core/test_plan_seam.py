"""The shared Plan-phase seam: `compute_fractions` + `renormalize_live`.

Both helpers replaced inlined ladders in the fluid loop, the DES loop,
and the serve path; these tests pin the bit-identity contract that made
that refactor safe.
"""

import numpy as np
import pytest

from repro.core.policy import (
    compute_fractions,
    get_policy,
    normalize_fractions,
    renormalize_live,
)

PAPER_POLICIES = ("sensible-routing", "available-resources", "exploration")


def _random_inputs(rng, n):
    prev = rng.dirichlet(np.ones(n))
    rmttf = rng.uniform(10.0, 900.0, size=n)
    rate = rng.uniform(1.0, 400.0)
    return prev, rmttf, rate


class TestComputeFractions:
    @pytest.mark.parametrize("name", PAPER_POLICIES)
    def test_normal_mode_bit_identical_to_policy_compute(self, name):
        """mode="normal" is POLICY() itself -- same floats, not close."""
        rng = np.random.default_rng(7)
        policy = get_policy(name)
        for n in (2, 3, 5):
            for _ in range(20):
                prev, rmttf, rate = _random_inputs(rng, n)
                direct = policy.compute(prev, rmttf, rate)
                via_seam = compute_fractions(policy, prev, rmttf, rate)
                assert np.array_equal(direct, via_seam)

    def test_hold_mode_returns_previous(self):
        policy = get_policy("sensible-routing")
        prev = np.array([0.5, 0.3, 0.2])
        held = compute_fractions(
            policy, prev, np.array([1.0, 2.0, 3.0]), 10.0, mode="hold"
        )
        assert np.array_equal(held, prev)
        assert held.dtype == float

    def test_fallback_mode_normalizes_capacities(self):
        policy = get_policy("sensible-routing")
        caps = np.array([30.0, 60.0, 10.0])
        got = compute_fractions(
            policy,
            np.full(3, 1 / 3),
            np.zeros(3),
            0.0,
            mode="fallback",
            capacities=caps,
        )
        expected = normalize_fractions(caps, policy.min_fraction)
        assert np.array_equal(got, expected)

    def test_fallback_requires_capacities(self):
        policy = get_policy("sensible-routing")
        with pytest.raises(ValueError, match="capacities"):
            compute_fractions(
                policy, np.full(2, 0.5), np.ones(2), 1.0, mode="fallback"
            )

    def test_unknown_mode_rejected(self):
        policy = get_policy("sensible-routing")
        with pytest.raises(ValueError, match="unknown plan mode"):
            compute_fractions(
                policy, np.full(2, 0.5), np.ones(2), 1.0, mode="panic"
            )


class TestRenormalizeLive:
    def test_all_alive_returns_plan_unchanged(self):
        plan = np.array([0.2, 0.5, 0.3])
        got = renormalize_live(plan, np.array([True, True, True]))
        assert np.array_equal(got, plan)

    def test_dead_region_zeroed_and_renormalized(self):
        got = renormalize_live(
            np.array([0.2, 0.5, 0.3]), np.array([True, False, True])
        )
        assert got[1] == 0.0
        assert got == pytest.approx([0.4, 0.0, 0.6])
        assert got.sum() == pytest.approx(1.0)

    def test_no_region_alive_returns_none(self):
        assert (
            renormalize_live(
                np.array([0.5, 0.5]), np.array([False, False])
            )
            is None
        )

    def test_all_mass_on_dead_regions_goes_uniform_over_live(self):
        got = renormalize_live(
            np.array([1.0, 0.0, 0.0]), np.array([False, True, True])
        )
        assert np.array_equal(got, np.array([0.0, 0.5, 0.5]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            renormalize_live(np.array([0.5, 0.5]), np.array([True]))
