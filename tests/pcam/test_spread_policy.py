"""Anti-affinity spread cap and domain-aware placement.

The tentpole invariant: with ``spread_k`` set, the proactive
rejuvenation path never holds more than ``k`` VMs of one rack in
REJUVENATING concurrently -- and that restraint demonstrably improves
availability when a whole rack's pool goes at-risk at once.
"""

import numpy as np
import pytest

from repro.obs.telemetry import Telemetry
from repro.pcam import (
    VirtualMachineController,
    VmcConfig,
    VmState,
)
from repro.pcam.balancer import DomainAwareBalancer, LocalBalancer
from repro.pcam.predictor import RttfPredictor
from repro.pcam.state_table import VmStateTable
from repro.sim import RngRegistry
from repro.topology import DomainHealthTracker, FailureDomainTree

from .conftest import build_vm


class FixedRttf(RttfPredictor):
    """Every VM is predicted to fail in exactly ``rttf_s`` seconds."""

    def __init__(self, rttf_s: float) -> None:
        self.rttf_s = rttf_s

    def predict_rttf(self, vm) -> float:
        return self.rttf_s


def make_vmc(
    seed=3,
    n_vms=4,
    target=4,
    spread_k=0,
    rack_ids=None,
    columnar=True,
    telemetry=None,
    rttf_s=5.0,
):
    rngs = RngRegistry(seed=seed)
    vms = [
        build_vm(
            rngs,
            name=f"sp/vm{i}",
            rack_id=rack_ids[i] if rack_ids is not None else 0,
        )
        for i in range(n_vms)
    ]
    return VirtualMachineController(
        "sp",
        vms,
        FixedRttf(rttf_s),
        VmcConfig(
            target_active=target,
            rttf_threshold_s=240.0,
            spread_k=spread_k,
            columnar=columnar,
        ),
        telemetry=telemetry,
    )


class TestSpreadCap:
    """One rack, every ACTIVE VM at-risk, no standby replacements."""

    @pytest.mark.parametrize("columnar", [False, True])
    def test_flat_policy_rejuvenates_the_whole_rack(self, columnar):
        vmc = make_vmc(spread_k=0, columnar=columnar)
        report = vmc.process_era(40, 30.0, 0.0)
        # imminent failure (rttf 5s < era 30s): all 4 swap at once
        assert report.rejuvenations_triggered == 4
        assert report.n_active == 0
        assert vmc.spread_deferrals == 0

    @pytest.mark.parametrize("columnar", [False, True])
    def test_spread_cap_keeps_the_rack_serving(self, columnar):
        vmc = make_vmc(spread_k=1, columnar=columnar)
        report = vmc.process_era(40, 30.0, 0.0)
        # the cap lets exactly one swap through; 3 stay ACTIVE
        assert report.rejuvenations_triggered == 1
        assert report.n_active == 3
        assert vmc.spread_deferrals == 3

    def test_cap_is_per_rack_not_global(self):
        vmc = make_vmc(spread_k=1, rack_ids=[0, 0, 1, 1])
        report = vmc.process_era(40, 30.0, 0.0)
        # one swap per rack proceeds
        assert report.rejuvenations_triggered == 2
        assert report.n_active == 2
        assert vmc.spread_deferrals == 2

    def test_deferred_swaps_happen_on_later_eras(self):
        vmc = make_vmc(spread_k=1)
        vmc.process_era(40, 30.0, 0.0)
        total = vmc.total_rejuvenations
        # keep running: as each rejuvenation completes, the next at-risk
        # VM gets its turn -- the cap postpones, never cancels
        for era in range(1, 20):
            vmc.process_era(40, 30.0, era * 30.0)
        assert vmc.total_rejuvenations >= 4
        assert vmc.total_rejuvenations > total

    def test_reactive_path_is_exempt(self):
        vmc = make_vmc(spread_k=1, rttf_s=1e9)
        for vm in vmc.vms_in(VmState.ACTIVE):
            vm.fail()
        report = vmc.process_era(0, 30.0, 0.0)
        # all 4 failed VMs enter rejuvenation despite the cap
        assert report.rejuvenations_triggered == 4
        assert vmc.spread_deferrals == 0

    def test_deferrals_counted_in_telemetry(self):
        telemetry = Telemetry(enabled=True)
        vmc = make_vmc(spread_k=1, telemetry=telemetry)
        vmc.process_era(40, 30.0, 0.0)
        counters = {
            c.name: c.value for c in telemetry.registry.counters()
        }
        assert counters["fd_antiaffinity_deferrals_total"] == 3

    def test_spread_improves_availability_vs_flat(self):
        """The acceptance-criterion comparison, in miniature: identical
        pools, identical at-risk storm -- the spread policy keeps the
        rack serving while the flat policy blacks it out."""
        flat_active = []
        spread_active = []
        for spread_k, sink in ((0, flat_active), (1, spread_active)):
            vmc = make_vmc(spread_k=spread_k)
            for era in range(6):
                sink.append(vmc.process_era(40, 30.0, era * 30.0).n_active)
        assert min(flat_active) == 0
        assert min(spread_active) >= 3


class TestRackIdColumnarRoundTrip:
    def test_adopt_view_release_preserves_rack_id(self):
        rngs = RngRegistry(seed=5)
        vm = build_vm(rngs, name="rt/vm0", rack_id=7)
        table = VmStateTable(2)
        row = table.adopt(vm)
        assert table.rack_id[row] == 7
        assert vm.rack_id == 7  # view reads through the column
        table.release(vm)
        assert vm.rack_id == 7  # plain attribute again after release
        assert vm.__class__.__name__ == "VirtualMachine"

    def test_rack_id_column_scrubbed_after_release(self):
        rngs = RngRegistry(seed=5)
        vm = build_vm(rngs, name="rt/vm1", rack_id=3)
        table = VmStateTable(1)
        row = table.adopt(vm)
        table.release(vm)
        assert table.rack_id[row] == 0


class TestDomainAwareBalancer:
    def _vms(self, rack_ids):
        rngs = RngRegistry(seed=11)
        vms = []
        for i, rack in enumerate(rack_ids):
            vm = build_vm(rngs, name=f"b/vm{i}", rack_id=rack)
            vm.activate()
            vms.append(vm)
        return vms

    def test_routes_away_from_degraded_racks(self):
        tree = FailureDomainTree({"r": (2, 1)})
        health = DomainHealthTracker(tree)
        vms = self._vms([0, 1])
        plain = LocalBalancer().split(100, vms)
        bal = DomainAwareBalancer(health, degraded_penalty=0.25)
        assert bal.split(100, vms) == plain  # nothing degraded yet
        health.record_fault("r/az1", "rack_power_loss")
        shifted = bal.split(100, vms)
        assert shifted["b/vm0"] > plain["b/vm0"]
        assert shifted["b/vm1"] < plain["b/vm1"]
        assert sum(shifted.values()) == 100

    def test_penalty_validation(self):
        tree = FailureDomainTree({"r": (1, 1)})
        health = DomainHealthTracker(tree)
        with pytest.raises(ValueError):
            DomainAwareBalancer(health, degraded_penalty=0.0)
        with pytest.raises(ValueError):
            DomainAwareBalancer(health, degraded_penalty=1.5)
