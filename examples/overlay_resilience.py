"""Overlay resilience demo: link failures, rerouting, and leader takeover.

Sec. III: the controllers are interconnected "via an overlay network, which
selects the path with the smallest latency among two given controllers, and
is able to reroute connections in case of a network link failure.  Among
all the regions VMCs, a leader VMC is automatically elected ... tolerant to
multiple nodes and link failures."

The demo builds the paper's three-region topology, then:

1. fails the Ireland-Frankfurt link -- traffic reroutes via Munich;
2. crashes the leader (Ireland) -- Frankfurt takes over and the control
   loop keeps balancing the two surviving regions;
3. recovers Ireland -- leadership returns, and the region is re-absorbed
   into the balancing.

Run with::

    python examples/overlay_resilience.py
"""

from repro.core import AcmManager, RegionSpec
from repro.experiments.scenarios import three_region_scenario


def main() -> None:
    scenario = three_region_scenario()
    manager = AcmManager(
        regions=list(scenario.regions),
        policy="available-resources",
        seed=5,
        overlay=scenario.build_overlay(),
    )
    loop = manager.loop
    net = loop.overlay
    r1, r2, r3 = loop.regions  # sorted: ireland, frankfurt, munich

    def show(tag, s):
        fr = " ".join(f"{r.split('-')[0]}={s.fractions[r]:.2f}" for r in loop.regions)
        print(f"  era {s.era:3d} [{tag:<18}] leader={s.leader.split('-')[0]:<8} {fr}")

    print("phase 1: healthy mesh")
    for _ in range(20):
        s = loop.run_era()
        if s.era % 10 == 0:
            show("healthy", s)

    print("\nphase 2: Ireland-Frankfurt link fails (reroute via Munich)")
    net.fail_link(r1, r2)
    loop.router.invalidate()
    path, latency = loop.router.route(r1, r2)
    print(f"  new route {r1} -> {r2}: {' -> '.join(path)} ({latency:.0f} ms)")
    for _ in range(20):
        s = loop.run_era()
        if s.era % 10 == 0:
            show("link down", s)

    print("\nphase 3: leader region's controller crashes")
    net.fail_node(r1)
    loop.router.invalidate()
    for _ in range(20):
        s = loop.run_era()
        if s.era % 10 == 0:
            show("leader down", s)
    print(f"  takeovers so far: {loop.election.takeover_count()}")

    print("\nphase 4: Ireland recovers")
    net.restore_node(r1)
    net.restore_link(r1, r2)
    loop.router.invalidate()
    for _ in range(20):
        s = loop.run_era()
        if s.era % 10 == 0:
            show("recovered", s)

    print(f"\nfinal leader: {s.leader}")
    print(f"messages would reroute over {loop.router.route(r1, r2)[0]}")


if __name__ == "__main__":
    main()
