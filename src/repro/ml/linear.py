"""Ordinary least squares and ridge regression.

"Linear regression" is the first model in F2PM's suite (paper ref. [28]).
OLS is solved with :func:`numpy.linalg.lstsq` (SVD-based, rank-robust);
ridge with the regularised normal equations, which are well-conditioned for
``alpha > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor


class LinearRegression(Regressor):
    """Ordinary least-squares linear regression with intercept.

    Attributes
    ----------
    coef_:
        ``(n_features,)`` fitted weights.
    intercept_:
        Fitted bias term.
    """

    def __init__(self) -> None:
        super().__init__()
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        # Center to decouple the intercept; lstsq handles rank deficiency.
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        coef, *_ = np.linalg.lstsq(X - x_mean, y - y_mean, rcond=None)
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_


class RidgeRegression(Regressor):
    """L2-regularised linear regression (Tikhonov).

    Parameters
    ----------
    alpha:
        Regularisation strength; ``alpha = 0`` reduces to OLS on
        well-conditioned problems.  The intercept is not penalised.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        try:
            coef = np.linalg.solve(gram, Xc.T @ yc)
        except np.linalg.LinAlgError:
            coef, *_ = np.linalg.lstsq(gram, Xc.T @ yc, rcond=None)
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_
