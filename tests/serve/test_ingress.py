"""Units for the serve data path and the HTTP dispatch table.

``AcmService.handle_request`` and ``HttpIngress._dispatch`` are both
synchronous, so everything here runs without a socket or a running
clock: build the service, poke the handlers, read the JSON.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.scenarios import two_region_scenario
from repro.serve.clock import WallClock
from repro.serve.ingress import HttpIngress
from repro.serve.service import AcmService, ServeConfig


def make_service(**cfg_kw) -> AcmService:
    cfg = ServeConfig(seed=7, **cfg_kw)
    return AcmService(two_region_scenario(), WallClock(speed=100.0), cfg)


def force_plan(service: AcmService, fractions) -> None:
    """Install the given target fractions on every region's LB row."""
    payload = {
        "fractions": [float(x) for x in fractions],
        "stamp": service.clock.now,
        "era": 0,
    }
    for r in service.regions:
        service._install_row(r, payload)


class TestDataPath:
    def test_round_robin_when_no_region_given(self):
        service = make_service()
        arrivals = []
        for _ in range(4):
            status, body = service.handle_request()
            assert status == 200
            arrivals.append(body["arrival"])
        assert arrivals == service.regions * 2

    def test_unknown_region_falls_back_to_round_robin(self):
        service = make_service()
        status, body = service.handle_request("atlantis")
        assert status == 200
        assert body["arrival"] in service.regions

    def test_forwarding_follows_installed_plan(self):
        service = make_service()
        r1, r2 = service.regions
        force_plan(service, [0.0, 1.0])  # everything to the second region
        for _ in range(20):
            status, body = service.handle_request(r1)
            assert status == 200
            assert body["target"] == r2
            assert body["forwarded"] is True

    def test_admission_sheds_with_429_when_bucket_empty(self):
        service = make_service(admission_rps=1.0, admission_burst_s=2.0)
        region = service.regions[0]
        statuses = [service.handle_request(region)[0] for _ in range(40)]
        assert statuses.count(429) > 0
        assert statuses.count(200) >= 2  # the burst allowance admitted some
        shed = service.telemetry.snapshot()["metrics"]["counters"]
        names = {
            (c["name"], c["labels"].get("region")): c["value"] for c in shed
        }
        assert names[("acm_ingress_shed_total", region)] == statuses.count(429)

    def test_dead_target_fails_over_to_live_region(self):
        service = make_service()
        r1, r2 = service.regions
        force_plan(service, [0.0, 1.0])  # r1's row points at r2...
        service.chaos.region_blackout(r2)  # ...which then goes dark
        status, body = service.handle_request(r1)
        assert status == 200
        assert body["failover_from"] == r2
        assert body["target"] == r1
        assert r2 in service._down_at  # the miss stamped the down time

    def test_all_regions_dark_is_503(self):
        service = make_service()
        for r in service.regions:
            service.chaos.region_blackout(r)
        status, body = service.handle_request(service.regions[0])
        assert status == 503
        assert "no live region" in body["error"]


class TestMttrAccounting:
    def test_install_row_closes_mttr_for_routed_around_region(self):
        service = make_service()
        r1, r2 = service.regions
        service.chaos.region_blackout(r2)
        service._monitor()  # liveness sweep stamps _down_at
        assert r2 in service._down_at
        assert r2 not in service.mttr_s
        force_plan(service, [1.0, 0.0])  # plan routes around the dead r2
        assert service.mttr_s[r2] >= 0.0

    def test_heal_clears_down_bookkeeping(self):
        service = make_service()
        r2 = service.regions[1]
        service.chaos.region_blackout(r2)
        service._monitor()
        service.chaos.region_heal(r2)
        service._monitor()
        assert r2 not in service._down_at


class TestHttpDispatch:
    def _body(self, result) -> dict:
        status, content_type, raw, _headers = result
        assert content_type == "application/json"
        return status, json.loads(raw)

    def test_healthz(self):
        ingress = HttpIngress(make_service())
        status, body = self._body(ingress._dispatch("GET", "/healthz"))
        assert status == 200
        assert body["status"] == "ok"

    def test_route_and_root_are_the_data_path(self):
        ingress = HttpIngress(make_service())
        for path in ("/", "/route"):
            status, body = self._body(ingress._dispatch("GET", path))
            assert status == 200
            assert body["target"] in ingress.service.regions

    def test_route_honours_region_query(self):
        ingress = HttpIngress(make_service())
        region = ingress.service.regions[1]
        status, body = self._body(
            ingress._dispatch("GET", f"/route?region={region}")
        )
        assert status == 200
        assert body["arrival"] == region

    def test_metrics_is_prometheus_text_with_acm_prefix(self):
        ingress = HttpIngress(make_service())
        ingress.service.handle_request()
        status, content_type, raw, _ = ingress._dispatch("GET", "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = raw.decode("utf-8")
        assert any(
            line.startswith("acm_ingress_requests_total")
            for line in text.splitlines()
        )

    def test_plan_and_regions_admin_json(self):
        ingress = HttpIngress(make_service())
        status, plan = self._body(ingress._dispatch("GET", "/plan"))
        assert status == 200
        assert plan["regions"] == ingress.service.regions
        assert pytest.approx(sum(plan["fractions"])) == 1.0
        status, regions = self._body(ingress._dispatch("GET", "/regions"))
        assert status == 200
        for r in ingress.service.regions:
            assert regions["regions"][r]["alive"] is True
            assert regions["regions"][r]["active_vms"] > 0

    def test_chaos_endpoints_require_post_and_known_region(self):
        ingress = HttpIngress(make_service())
        service = ingress.service
        status, _ = self._body(ingress._dispatch("GET", "/chaos/blackout"))
        assert status == 405
        status, _ = self._body(
            ingress._dispatch("POST", "/chaos/blackout?region=nope")
        )
        assert status == 400
        victim = service.regions[1]
        status, body = self._body(
            ingress._dispatch("POST", f"/chaos/blackout?region={victim}")
        )
        assert status == 200
        assert not service.overlay.is_alive(victim)
        status, _ = self._body(
            ingress._dispatch("POST", f"/chaos/heal?region={victim}")
        )
        assert status == 200
        assert service.overlay.is_alive(victim)

    def test_unknown_path_404(self):
        ingress = HttpIngress(make_service())
        status, body = self._body(ingress._dispatch("GET", "/nope"))
        assert status == 404

    def test_handler_exception_is_a_500_not_a_crash(self):
        ingress = HttpIngress(make_service())
        ingress.service.handle_request = None  # force a TypeError inside
        status, body = self._body(ingress._dispatch("GET", "/"))
        assert status == 500
        assert "TypeError" in body["error"]


class TestServiceConfig:
    def test_telemetry_must_be_enabled(self):
        from repro.obs.telemetry import Telemetry

        with pytest.raises(ValueError):
            AcmService(
                two_region_scenario(),
                WallClock(speed=100.0),
                ServeConfig(),
                telemetry=Telemetry(enabled=False),
            )

    def test_initial_plan_rows_are_distributions(self):
        service = make_service()
        for row in service._matrix:
            assert pytest.approx(np.sum(row)) == 1.0
