"""Tests for the ack/retry/dedup reliable channel."""

import pytest

from repro.overlay import MessageBus, OverlayNetwork, ReliableChannel, Router
from repro.sim import Simulator
from repro.sim.rng import RngRegistry


def mesh(n=3, latency=10.0):
    names = [f"r{i}" for i in range(1, n + 1)]
    return OverlayNetwork.full_mesh(
        {(a, b): latency for i, a in enumerate(names) for b in names[i + 1 :]}
    )


class DropFirstN(MessageBus):
    """Bus that silently loses the first N data transmissions."""

    def __init__(self, sim, router, n_drops, drop_kind="rc-data"):
        super().__init__(sim=sim, router=router)
        self.n_drops = n_drops
        self.drop_kind = drop_kind

    def send(self, src, dst, kind, payload, on_outcome=None):
        if kind == self.drop_kind and self.n_drops > 0:
            self.n_drops -= 1
            return True  # accepted, silently lost
        return super().send(src, dst, kind, payload, on_outcome=on_outcome)


def make_channel(net=None, bus_cls=MessageBus, seed=3, **bus_kw):
    net = net or mesh()
    sim = Simulator()
    bus = bus_cls(sim=sim, router=Router(net), **bus_kw)
    rng = RngRegistry(seed=seed).stream("reliable/jitter")
    channel = ReliableChannel(bus, rng)
    return sim, net, bus, channel


class TestHappyPath:
    def test_delivery_and_ack(self):
        sim, net, bus, channel = make_channel()
        got = []
        channel.attach("r1", lambda m: None)
        channel.attach("r2", got.append)
        handle = channel.send("r1", "r2", "rmttf-report", {"rmttf": 410.0})
        assert handle.status == "pending"
        sim.run()
        assert handle.status == "acked"
        assert handle.attempts == 1
        assert handle.acked_at is not None and handle.acked_at > 0
        (msg,) = got
        assert msg.kind == "rmttf-report"
        assert msg.payload == {"rmttf": 410.0}
        assert msg.src == "r1" and msg.dst == "r2"
        assert channel.stats.acked == 1
        assert channel.stats.retries == 0
        assert channel.pending_count() == 0

    def test_ids_are_unique_and_increasing(self):
        sim, net, bus, channel = make_channel()
        channel.attach("r1", lambda m: None)
        channel.attach("r2", lambda m: None)
        h1 = channel.send("r1", "r2", "a", None)
        h2 = channel.send("r1", "r2", "b", None)
        assert h2.msg_id > h1.msg_id


class TestRetries:
    def test_retry_recovers_lost_data(self):
        sim, net, bus, channel = make_channel(bus_cls=DropFirstN, n_drops=2)
        got = []
        channel.attach("r1", lambda m: None)
        channel.attach("r2", got.append)
        handle = channel.send("r1", "r2", "x", 1)
        sim.run()
        assert handle.status == "acked"
        assert handle.attempts == 3  # two losses, third lands
        assert channel.stats.retries == 2
        assert len(got) == 1

    def test_lost_ack_retries_but_delivers_once(self):
        sim, net, bus, channel = make_channel(
            bus_cls=DropFirstN, n_drops=1, drop_kind="rc-ack"
        )
        got = []
        channel.attach("r1", lambda m: None)
        channel.attach("r2", got.append)
        handle = channel.send("r1", "r2", "x", 1)
        sim.run()
        # ack lost -> retransmit -> receiver dedups -> second ack lands
        assert handle.status == "acked"
        assert len(got) == 1
        assert channel.stats.duplicates == 1

    def test_gives_up_after_bounded_retries(self):
        net = mesh()
        net.fail_node("r2")
        sim, _, bus, channel = make_channel(net=net)
        gave_up = []
        channel.on_give_up = gave_up.append
        channel.attach("r1", lambda m: None)
        channel.attach("r2", lambda m: None)
        handle = channel.send("r1", "r2", "x", 1)
        sim.run()
        assert handle.status == "failed"
        assert handle.attempts == channel.max_retries + 1
        assert gave_up == [handle]
        assert channel.stats.gave_up == 1
        assert channel.pending_count() == 0
        # all attempts died on the unreliable bus as no_route drops
        assert bus.drop_counts["no_route"] == channel.max_retries + 1

    def test_backoff_grows_exponentially(self):
        net = mesh()
        net.fail_node("r2")
        sim, _, bus, channel = make_channel(net=net)
        channel.jitter_s = 0.0
        channel.attach("r1", lambda m: None)
        channel.attach("r2", lambda m: None)
        attempts_at = []
        orig = channel._attempt

        def spy(handle, kind, payload):
            attempts_at.append(sim.now)
            orig(handle, kind, payload)

        channel._attempt = spy
        channel.send("r1", "r2", "x", 1)
        sim.run()
        gaps = [b - a for a, b in zip(attempts_at, attempts_at[1:])]
        assert gaps == pytest.approx([0.25, 0.5, 1.0])


class TestDeterminism:
    def test_same_seed_same_timings(self):
        def trace(seed):
            sim, net, bus, channel = make_channel(
                bus_cls=DropFirstN, n_drops=2, seed=seed
            )
            channel.attach("r1", lambda m: None)
            channel.attach("r2", lambda m: None)
            handle = channel.send("r1", "r2", "x", 1)
            sim.run()
            return (handle.attempts, handle.acked_at, sim.fired_count)

        assert trace(11) == trace(11)
        # jitter actually varies across seeds (not a constant schedule)
        assert trace(11)[1] != trace(12)[1]

    def test_validation(self):
        sim, net, bus, channel = make_channel()
        rng = RngRegistry(seed=0).stream("j")
        with pytest.raises(ValueError):
            ReliableChannel(bus, rng, max_retries=-1)
        with pytest.raises(ValueError):
            ReliableChannel(bus, rng, base_timeout_s=0.0)
        with pytest.raises(ValueError):
            ReliableChannel(bus, rng, backoff_factor=0.5)
        with pytest.raises(ValueError):
            ReliableChannel(bus, rng, jitter_s=-1.0)
