"""Tests for linear SVR and kernel LS-SVM."""

import numpy as np
import pytest

from repro.ml import LeastSquaresSVM, LinearSVR
from repro.ml.lssvm import kernel_matrix


class TestLinearSVR:
    def test_recovers_linear_signal(self, linear_data):
        X, y = linear_data
        m = LinearSVR(seed=0).fit(X, y)
        assert m.coef_[0] == pytest.approx(3.0, abs=0.4)
        assert m.coef_[3] == pytest.approx(-2.0, abs=0.4)
        resid = y - m.predict(X)
        assert np.std(resid) < 0.8

    def test_deterministic(self, linear_data):
        X, y = linear_data
        p1 = LinearSVR(seed=3).fit(X, y).predict(X)
        p2 = LinearSVR(seed=3).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_epsilon_tube_ignores_small_noise(self):
        rng = np.random.default_rng(0)
        X = np.linspace(0, 10, 200).reshape(-1, 1)
        y = 2.0 * X[:, 0] + rng.uniform(-0.05, 0.05, 200)
        m = LinearSVR(epsilon=0.1, seed=0).fit(X, y)
        assert m.coef_[0] == pytest.approx(2.0, abs=0.2)

    def test_scale_invariance_of_quality(self, linear_data):
        # y in "hours" vs "seconds" should fit equally well relative to scale
        X, y = linear_data
        m_small = LinearSVR(seed=0).fit(X, y)
        m_big = LinearSVR(seed=0).fit(X, y * 3600.0)
        rel_small = np.std(y - m_small.predict(X)) / np.std(y)
        rel_big = np.std(y * 3600 - m_big.predict(X)) / np.std(y * 3600)
        assert rel_big == pytest.approx(rel_small, abs=0.05)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearSVR(C=0.0)
        with pytest.raises(ValueError):
            LinearSVR(epsilon=-0.1)
        with pytest.raises(ValueError):
            LinearSVR(average_last=0.0)


class TestKernelMatrix:
    def test_linear_kernel(self):
        A = np.array([[1.0, 0.0], [0.0, 2.0]])
        K = kernel_matrix(A, A, "linear", 1.0, 2)
        assert np.allclose(K, A @ A.T)

    def test_rbf_diagonal_is_one(self):
        A = np.random.default_rng(0).normal(size=(5, 3))
        K = kernel_matrix(A, A, "rbf", 0.5, 2)
        assert np.allclose(np.diag(K), 1.0)
        assert np.all(K > 0) and np.all(K <= 1.0)

    def test_rbf_decays_with_distance(self):
        A = np.array([[0.0], [1.0], [10.0]])
        K = kernel_matrix(A, A, "rbf", 1.0, 2)
        assert K[0, 1] > K[0, 2]

    def test_poly_kernel(self):
        A = np.array([[1.0], [2.0]])
        K = kernel_matrix(A, A, "poly", 1.0, 2)
        assert K[0, 1] == pytest.approx((1 + 2.0) ** 2)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            kernel_matrix(np.zeros((1, 1)), np.zeros((1, 1)), "sigmoid", 1.0, 2)


class TestLeastSquaresSVM:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-3, 3, size=(300, 1))
        y = np.sin(X[:, 0]) * 5.0 + rng.normal(0, 0.1, 300)
        m = LeastSquaresSVM(gamma=100.0).fit(X, y)
        resid = y - m.predict(X)
        assert np.std(resid) < 0.5

    def test_linear_kernel_matches_ridge_like_fit(self, linear_data):
        X, y = linear_data
        m = LeastSquaresSVM(gamma=100.0, kernel="linear").fit(X, y)
        assert np.std(y - m.predict(X)) < 0.5

    def test_generalises_not_just_memorises(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-3, 3, size=(300, 1))
        y = np.sin(X[:, 0]) * 5.0
        m = LeastSquaresSVM(gamma=100.0).fit(X, y)
        X_test = rng.uniform(-3, 3, size=(100, 1))
        y_test = np.sin(X_test[:, 0]) * 5.0
        assert np.std(y_test - m.predict(X_test)) < 0.8

    def test_gamma_controls_fit_tightness(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-3, 3, size=(200, 1))
        y = np.sin(X[:, 0]) + rng.normal(0, 0.3, 200)
        loose = LeastSquaresSVM(gamma=0.01).fit(X, y)
        tight = LeastSquaresSVM(gamma=1000.0).fit(X, y)
        err_loose = np.mean((y - loose.predict(X)) ** 2)
        err_tight = np.mean((y - tight.predict(X)) ** 2)
        assert err_tight < err_loose

    def test_n_support_equals_train_size(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        y = X[:, 0]
        m = LeastSquaresSVM().fit(X, y)
        assert m.n_support_ == 50

    def test_n_support_before_fit(self):
        with pytest.raises(RuntimeError):
            _ = LeastSquaresSVM().n_support_

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LeastSquaresSVM(gamma=0.0)
        with pytest.raises(ValueError):
            LeastSquaresSVM(kernel="bogus")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            LeastSquaresSVM(degree=0)
