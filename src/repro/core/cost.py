"""Deployment cost accounting.

The paper motivates heterogeneous multi-cloud deployments economically:
"different cloud providers offer various types of VMs at different costs
... the cost of VMs of the same cloud provider may change depending on the
geographical region ...  Therefore, it could be more convenient to have
more VMs in some regions, or of a given provider, rather than in/of other
ones" (Sec. I).

:class:`CostTracker` turns a control-loop run into a bill: ACTIVE and
REJUVENATING VMs accrue their instance type's hourly rate (a rebooting VM
is still provisioned); STANDBY VMs accrue a configurable idle multiplier
(stopped instances are typically cheaper but not free).  The cost ablation
bench uses this to compare policies per successfully served request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pcam.vm import VmState
from repro.pcam.vmc import VirtualMachineController


@dataclass
class CostTracker:
    """Accumulates deployment cost over control eras.

    Parameters
    ----------
    standby_multiplier:
        Fraction of the full hourly rate a STANDBY VM costs (EBS-backed
        stopped instances still pay for storage; default 25 %).
    """

    standby_multiplier: float = 0.25
    total_usd: float = 0.0
    per_region_usd: dict[str, float] = field(default_factory=dict)
    requests_served: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.standby_multiplier <= 1.0:
            raise ValueError("standby_multiplier must be in [0, 1]")

    def charge_era(
        self,
        vmc: VirtualMachineController,
        dt_s: float,
        requests_served: int = 0,
    ) -> float:
        """Accrue one era's cost for a region; returns the era's charge."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if requests_served < 0:
            raise ValueError("requests_served must be >= 0")
        hours = dt_s / 3600.0
        charge = 0.0
        for vm in vmc.vms:
            rate = vm.itype.hourly_cost
            if vm.state in (VmState.ACTIVE, VmState.REJUVENATING, VmState.FAILED):
                charge += rate * hours
            elif vm.state is VmState.STANDBY:
                charge += rate * hours * self.standby_multiplier
        self.total_usd += charge
        self.per_region_usd[vmc.region_name] = (
            self.per_region_usd.get(vmc.region_name, 0.0) + charge
        )
        self.requests_served += requests_served
        return charge

    def cost_per_million_requests(self) -> float:
        """Normalised efficiency metric (inf before any request)."""
        if self.requests_served == 0:
            return float("inf")
        return self.total_usd / self.requests_served * 1e6

    def summary(self) -> str:
        """One-line human-readable bill."""
        regions = ", ".join(
            f"{r}=${v:.4f}" for r, v in sorted(self.per_region_usd.items())
        )
        return (
            f"total=${self.total_usd:.4f} ({regions}); "
            f"${self.cost_per_million_requests():.2f}/M requests"
        )
