"""Tests for the request-level DES region, including cross-validation
against the fluid model's queueing predictions."""

import numpy as np
import pytest

from repro.pcam.vm import VirtualMachine, VmState
from repro.sim import M3_MEDIUM, PRIVATE_SMALL, RngRegistry, Simulator
from repro.pcam import DesRegion, DesStats
from repro.workload import AnomalyInjector, BrowserPopulation
from repro.workload.browsers import closed_loop_rate


def make_region(n_vms=4, clients=40, itype=PRIVATE_SMALL, seed=1,
                leak_probability=0.10, thread_probability=0.05,
                columnar=True):
    rngs = RngRegistry(seed=seed)
    vms = []
    for i in range(n_vms):
        vm = VirtualMachine(
            f"des/vm{i}",
            itype,
            AnomalyInjector(
                rngs.child(f"vm{i}").stream("a"),
                leak_probability=leak_probability,
                thread_probability=thread_probability,
            ),
        )
        vm.activate()
        vms.append(vm)
    sim = Simulator()
    pop = BrowserPopulation(n_clients=clients, think_time_s=7.0)
    region = DesRegion(sim, vms, pop, rngs.stream("des"), columnar=columnar)
    return sim, region, vms


class TestDesMechanics:
    def test_requests_complete(self):
        _, region, _ = make_region()
        stats = region.run(300.0)
        assert stats.completed > 0
        assert stats.dropped == 0
        assert all(rt >= 0 for rt in stats.response_times)

    def test_throughput_matches_closed_loop_law(self):
        _, region, _ = make_region(n_vms=6, clients=60)
        duration = 800.0
        stats = region.run(duration)
        measured_rate = stats.completed / duration
        expected = closed_loop_rate(60, 7.0, stats.mean_response_time())
        assert measured_rate == pytest.approx(expected, rel=0.1)

    def test_anomalies_accumulate_on_vms(self):
        _, region, vms = make_region()
        region.run(600.0)
        assert sum(vm.leaked_mb for vm in vms) > 0
        assert sum(vm.total_requests for vm in vms) == region.stats.completed

    def test_anomaly_rate_matches_injection_probability(self):
        _, region, vms = make_region(n_vms=6, clients=60, seed=3)
        stats = region.run(800.0)
        threads = sum(vm.stuck_threads for vm in vms)
        # 5% of completed requests leave a stuck thread
        assert threads / stats.completed == pytest.approx(0.05, abs=0.015)

    def test_outage_drops_requests(self):
        sim, region, vms = make_region(n_vms=1, clients=10)
        vms[0].fail()
        stats = region.run(100.0)
        assert stats.dropped > 0
        assert stats.completed == 0

    def test_join_shortest_queue_balances(self):
        _, region, vms = make_region(n_vms=4, clients=80, seed=5)
        region.run(500.0)
        counts = np.array([vm.total_requests for vm in vms])
        assert counts.min() > 0.7 * counts.max()

    def test_deterministic_given_seed(self):
        _, r1, _ = make_region(seed=9)
        _, r2, _ = make_region(seed=9)
        s1 = r1.run(200.0)
        s2 = r2.run(200.0)
        assert s1.completed == s2.completed
        assert s1.response_times == s2.response_times

    def test_validation(self):
        sim, region, _ = make_region()
        with pytest.raises(ValueError):
            region.run(0.0)
        with pytest.raises(ValueError):
            DesRegion(sim, [], region.population, np.random.default_rng(0))

    def test_stats_empty(self):
        s = DesStats()
        assert np.isnan(s.mean_response_time())
        assert np.isnan(s.p95_response_time())


class TestFluidCrossValidation:
    """The DES and the fluid M/M/1 era model must agree on steady state."""

    def test_response_time_matches_mm1_prediction(self):
        # moderate load, negligible degradation horizon: compare the DES
        # mean response time with the healthy VM's analytic M/M/1 value
        n_vms, clients = 6, 60
        _, region, vms = make_region(
            n_vms=n_vms, clients=clients, itype=M3_MEDIUM, seed=7,
            leak_probability=0.0,  # freeze degradation for the comparison
            thread_probability=0.0,
        )
        stats = region.run(3000.0)
        measured = stats.mean_response_time()
        # fixed point of rate <-> response time for the fluid model
        rt = 0.05
        for _ in range(50):
            rate = closed_loop_rate(clients, 7.0, rt) / n_vms
            rt = vms[0].response_time_s(rate)
        assert measured == pytest.approx(rt, rel=0.35)

    def test_leak_accumulation_matches_mean_field(self):
        _, region, vms = make_region(n_vms=4, clients=40, seed=11)
        duration = 1500.0
        stats = region.run(duration)
        measured_leak = sum(vm.leaked_mb for vm in vms)
        expected_per_request = vms[0].injector.expected_leak_rate_mb(1.0)
        assert measured_leak == pytest.approx(
            stats.completed * expected_per_request, rel=0.1
        )

    def test_des_vms_eventually_fail_like_fluid_predicts(self):
        _, region, vms = make_region(n_vms=2, clients=60, seed=13)
        # fluid TTF at the initial per-VM rate
        rate = closed_loop_rate(60, 7.0, 0.1) / 2
        predicted = vms[0].true_time_to_failure_s(rate)
        region.run(predicted * 3)
        assert any(vm.state is VmState.FAILED for vm in vms)


class TestRateAccountingRegression:
    """Pins the per-run rate-accounting fix in :meth:`DesRegion.run`.

    ``run()`` used to divide the *cumulative* completion count by the
    *end-of-run* ACTIVE count, so repeated runs inflated
    ``last_request_rate`` without bound and mid-run failures inflated the
    per-survivor rate.  The parity harness flushed this out; both code
    paths now snapshot the counters at run start.
    """

    @pytest.mark.parametrize("columnar", [True, False])
    def test_rate_uses_only_this_runs_completions(self, columnar):
        _, region, vms = make_region(
            n_vms=3, clients=30, columnar=columnar,
            leak_probability=0.0, thread_probability=0.0,
        )
        duration = 200.0
        region.run(duration)
        first = region.stats.completed
        region.run(duration)
        delta = region.stats.completed - first
        expected = delta / 3 / duration
        for vm in vms:
            assert vm.last_request_rate == pytest.approx(expected)
        # the pre-fix value (cumulative completions) must be
        # distinguishable, or this test would pass vacuously
        cumulative = region.stats.completed / 3 / duration
        assert abs(expected - cumulative) > 1e-9

    @pytest.mark.parametrize("columnar", [True, False])
    def test_rate_divides_by_start_of_run_active_count(self, columnar):
        _, region, vms = make_region(
            n_vms=4, clients=24, seed=2, columnar=columnar,
        )
        # push one VM to the brink so its next leak crosses the budget
        vms[0].leaked_mb = vms[0].anomaly_budget_mb - 0.5
        duration = 300.0
        stats = region.run(duration)
        assert vms[0].state is VmState.FAILED
        survivors = [vm for vm in vms if vm.state is VmState.ACTIVE]
        assert len(survivors) == 3
        # rate is per *starting* ACTIVE VM (4): the failed VM served part
        # of the run, and dividing by the 3 survivors would overstate the
        # load each one saw
        expected = stats.completed / 4 / duration
        for vm in survivors:
            assert vm.last_request_rate == pytest.approx(expected)
