"""The failure-domain tree: region -> availability zone -> rack.

Every rack in the deployment gets a globally unique integer id (its
*rack id*), assigned in region declaration order, then AZ order, then
rack order.  The integer coding is deliberate: the columnar VM state
table stores each VM's rack as one ``int64`` column, so domain-scoped
fault selection and the anti-affinity rejuvenation cap stay array
operations at fleet scale.

Domains are addressed by *path strings*::

    region2                -- a whole region
    region2/az0            -- one availability zone
    region2/az0/rack1      -- a single rack

The default topology is *flat*: one AZ with one rack per region, which
gives every VM of a region rack id equal to the region's single rack.
Flat trees change nothing about scheduling or fault injection -- golden
traces are bit-identical to the pre-topology code.

This module is deliberately dependency-free (stdlib only) so the fleet
job specs can import it for descriptor validation without pulling in
numpy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol

_SHAPE_RE = re.compile(r"(\d+)x(\d+)")


def parse_domain_shape(descriptor: str) -> tuple[int, int]:
    """Parse a per-region domain descriptor into ``(n_azs, racks_per_az)``.

    Accepted forms:

    * ``"flat"`` (or ``""``) -- one AZ, one rack: the default topology;
    * ``"NxM"`` -- N availability zones with M racks each, e.g. ``"2x2"``.

    The descriptor is the value carried by the fleet sweep's ``domains``
    axis, so it must stay short, canonical, and order-free.
    """
    if descriptor in ("", "flat"):
        return (1, 1)
    m = _SHAPE_RE.fullmatch(descriptor)
    if m is None:
        raise ValueError(
            f"bad domain descriptor {descriptor!r}: expected 'flat' or 'NxM'"
        )
    n_azs, racks_per_az = int(m.group(1)), int(m.group(2))
    if n_azs < 1 or racks_per_az < 1:
        raise ValueError(
            f"bad domain descriptor {descriptor!r}: counts must be >= 1"
        )
    return (n_azs, racks_per_az)


@dataclass(frozen=True, slots=True)
class RackInfo:
    """One rack's position in the hierarchy."""

    rack_id: int
    region: str
    az: int
    rack: int

    @property
    def az_path(self) -> str:
        """Path of the rack's availability zone (``region/azN``)."""
        return f"{self.region}/az{self.az}"

    @property
    def path(self) -> str:
        """Full rack path (``region/azN/rackM``)."""
        return f"{self.region}/az{self.az}/rack{self.rack}"


class _SpecLike(Protocol):
    name: str


class FailureDomainTree:
    """Region -> AZ -> rack hierarchy with integer-coded racks.

    Parameters
    ----------
    shape:
        Ordered mapping ``region -> (n_azs, racks_per_az)``.  Region
        order fixes rack-id assignment, so it must be deterministic
        (dict insertion order is the contract, same as region declaration
        order in a scenario).
    """

    def __init__(self, shape: Mapping[str, tuple[int, int]]) -> None:
        if not shape:
            raise ValueError("need at least one region")
        self._shape: dict[str, tuple[int, int]] = {}
        self._racks: list[RackInfo] = []
        self._region_racks: dict[str, list[int]] = {}
        self._path_racks: dict[str, list[int]] = {}
        for region, (n_azs, racks_per_az) in shape.items():
            if n_azs < 1 or racks_per_az < 1:
                raise ValueError(
                    f"region {region!r}: n_azs and racks_per_az must be >= 1"
                )
            self._shape[region] = (int(n_azs), int(racks_per_az))
            ids: list[int] = []
            for az in range(n_azs):
                for rack in range(racks_per_az):
                    info = RackInfo(len(self._racks), region, az, rack)
                    self._racks.append(info)
                    ids.append(info.rack_id)
                    self._path_racks[info.path] = [info.rack_id]
                    self._path_racks.setdefault(info.az_path, []).append(
                        info.rack_id
                    )
            self._region_racks[region] = ids
            self._path_racks[region] = ids

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def flat(cls, regions: Iterable[str]) -> "FailureDomainTree":
        """The default degenerate tree: one AZ with one rack per region."""
        return cls({region: (1, 1) for region in regions})

    @classmethod
    def from_specs(cls, specs: Iterable[_SpecLike]) -> "FailureDomainTree":
        """Build from region specs carrying ``n_azs``/``racks_per_az``.

        Specs without those fields (older callers) get the flat shape.
        """
        return cls(
            {
                spec.name: (
                    getattr(spec, "n_azs", 1),
                    getattr(spec, "racks_per_az", 1),
                )
                for spec in specs
            }
        )

    @classmethod
    def uniform(
        cls, regions: Iterable[str], n_azs: int, racks_per_az: int
    ) -> "FailureDomainTree":
        """Same ``(n_azs, racks_per_az)`` shape for every region."""
        return cls({region: (n_azs, racks_per_az) for region in regions})

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def regions(self) -> tuple[str, ...]:
        """Region names in declaration (rack-id assignment) order."""
        return tuple(self._shape)

    @property
    def n_racks(self) -> int:
        """Total rack count across all regions."""
        return len(self._racks)

    def is_flat(self) -> bool:
        """True when every region has exactly one AZ with one rack."""
        return all(shape == (1, 1) for shape in self._shape.values())

    def rack(self, rack_id: int) -> RackInfo:
        """The :class:`RackInfo` for a global rack id."""
        if not 0 <= rack_id < len(self._racks):
            raise KeyError(f"no rack with id {rack_id}")
        return self._racks[rack_id]

    def rack_path(self, rack_id: int) -> str:
        """Full domain path of a rack id (``region/azN/rackM``)."""
        return self.rack(rack_id).path

    def region_of(self, rack_id: int) -> str:
        """Region owning the given rack id."""
        return self.rack(rack_id).region

    def az_path_of(self, rack_id: int) -> str:
        """AZ path (``region/azN``) owning the given rack id."""
        return self.rack(rack_id).az_path

    def racks_in(self, domain: str) -> tuple[int, ...]:
        """Rack ids under a domain path (region, AZ path, or rack path)."""
        try:
            return tuple(self._path_racks[domain])
        except KeyError:
            raise KeyError(f"unknown failure domain {domain!r}") from None

    def region_of_domain(self, domain: str) -> str:
        """Region a domain path belongs to (identity for region paths)."""
        region = domain.split("/", 1)[0]
        if region not in self._shape:
            raise KeyError(f"unknown failure domain {domain!r}")
        return region

    def domains(self) -> tuple[str, ...]:
        """Every domain path: regions, then AZs, then racks, in id order."""
        out: list[str] = list(self._shape)
        seen: set[str] = set()
        for info in self._racks:
            if info.az_path not in seen:
                seen.add(info.az_path)
                out.append(info.az_path)
        out.extend(info.path for info in self._racks)
        return tuple(out)

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #

    def assign(self, region: str, vm_index: int) -> int:
        """Rack id for the ``vm_index``-th VM of a region.

        Deterministic round-robin across the region's racks: VM *i* lands
        on rack ``i % n_racks(region)``.  With the flat shape this is
        always the region's single rack, so default deployments are
        unchanged.
        """
        if vm_index < 0:
            raise ValueError("vm_index must be >= 0")
        try:
            ids = self._region_racks[region]
        except KeyError:
            raise KeyError(f"unknown region {region!r}") from None
        return ids[vm_index % len(ids)]

    def controller_az(self, region: str) -> str:
        """AZ hosting the region's controller (by convention, ``az0``).

        The VMC and its overlay endpoint live in the first AZ; partitioning
        that AZ therefore cuts the whole region off the mesh, while
        partitioning any other AZ only takes down its VMs.
        """
        if region not in self._shape:
            raise KeyError(f"unknown region {region!r}")
        return f"{region}/az0"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = ", ".join(
            f"{r}={a}x{k}" for r, (a, k) in self._shape.items()
        )
        return f"FailureDomainTree({shape})"
