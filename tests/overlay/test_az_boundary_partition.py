"""Partition/heal convergence when the cut follows an AZ boundary.

Satellite to the failure-domain tentpole: the interesting cuts in a
hierarchical deployment are not arbitrary node subsets but whole
availability zones.  These tests derive the partition group from a
:class:`~repro.topology.domains.FailureDomainTree` -- the five mesh
controllers are placed round-robin over 2 AZs, and the cut severs
exactly the links that cross the AZ boundary -- then assert the same
detector/election/gossip convergence bounds the generic cycle tests
document (``DETECT_BOUND_S`` / ``HEAL_BOUND_S``).
"""

from repro.topology import FailureDomainTree

from .test_partition_heal_cycles import (
    DETECT_BOUND_S,
    GOSSIP_S,
    HEAL_BOUND_S,
    NODES,
    PERIOD_S,
    Mesh,
)

#: One region, two AZs, one rack each; controllers n1..n5 are assigned
#: round-robin exactly like VMs are (tree.assign), so az0 = {n1, n3, n5}
#: and az1 = {n2, n4}.
TREE = FailureDomainTree({"mesh": (2, 1)})


def az_members(az_path: str) -> set[str]:
    racks = set(TREE.racks_in(az_path))
    return {
        node
        for i, node in enumerate(NODES)
        if TREE.assign("mesh", i) in racks
    }


class TestAzBoundaryPartition:
    def test_assignment_splits_the_mesh_on_the_az_boundary(self):
        assert az_members("mesh/az0") == {"n1", "n3", "n5"}
        assert az_members("mesh/az1") == {"n2", "n4"}

    def test_detectors_converge_within_bound_after_az_cut(self):
        mesh = Mesh()
        mesh.settle(PERIOD_S + 0.5)
        group = az_members("mesh/az1")
        cut = mesh.cut(group)
        # the cut is exactly the AZ-crossing links: 3 x 2 pairs
        assert len(cut) == 6
        mesh.settle(DETECT_BOUND_S)
        mesh.assert_views_match_election()
        # each AZ follows its own component minimum
        leaders = set(mesh.local_leaders().values())
        assert leaders == {"n1", "n2"}

    def test_heal_reconverges_within_bound(self):
        mesh = Mesh()
        mesh.settle(PERIOD_S + 0.5)
        cut = mesh.cut(az_members("mesh/az1"))
        mesh.settle(DETECT_BOUND_S)
        mesh.heal(cut)
        mesh.settle(HEAL_BOUND_S)
        mesh.assert_views_match_election()
        assert set(mesh.local_leaders().values()) == {"n1"}
        for det in mesh.detectors.values():
            assert det.suspected_peers() == []
            assert det.alive_view() == NODES

    def test_gossip_reconverges_after_az_heal(self):
        mesh = Mesh()
        for i, node in enumerate(NODES):
            mesh.stores[node].update_local({"az": None, "idx": i})
        cut = mesh.cut(az_members("mesh/az1"))
        # divergent state written on both sides of the AZ boundary
        for node in NODES:
            mesh.stores[node].update_local({"az": "split"})
        mesh.settle(DETECT_BOUND_S)
        assert not mesh.gossip.converged()
        mesh.heal(cut)
        mesh.settle(GOSSIP_S * len(NODES) * 2)
        assert mesh.gossip.converged()
        for node in NODES:
            for region in NODES:
                entry = mesh.stores[node].get(region)
                assert entry is not None
                assert entry.payload["az"] == "split"
