"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; this shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and ``python setup.py develop``) work.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
