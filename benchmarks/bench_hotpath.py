"""Hot-path micro-benchmark of the per-request DES control loop.

Measures sustained **requests/sec** (completed requests per wall-clock
second) and **events/sec** (simulator events dispatched per wall-clock
second) for :class:`repro.core.des_loop.DesControlLoop` at three emulated
browser population scales, and writes the result to ``BENCH_hotpath.json``
at the repository root.

That JSON file is the repo's recorded performance trajectory: every PR
that touches the DES hot path re-runs this script and must not regress
requests/sec by more than the gate tolerance (see
``scripts/bench_gate.py``).

Run it as a script (append ``--check`` to compare against the committed
baseline without rewriting it)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py

The timed region is *only* the era loop (request routing, queueing,
service, completion bookkeeping, era-boundary control cycle); loop
construction is excluded.  The predictor is a constant stub so that the
measurement tracks the request machinery rather than the oracle
predictor's root-finding.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hotpath.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import get_policy  # noqa: E402
from repro.core.des_loop import DesControlLoop  # noqa: E402
from repro.pcam.predictor import RttfPredictor  # noqa: E402
from repro.pcam.vm import VirtualMachine  # noqa: E402
from repro.sim.instances import get_instance_type  # noqa: E402
from repro.sim.rng import RngRegistry  # noqa: E402
from repro.workload.anomalies import AnomalyInjector  # noqa: E402
from repro.workload.browsers import BrowserPopulation  # noqa: E402

#: The three population scales: name -> (clients per region, VM pool
#: scale factor, eras to run).  Client counts keep the paper's 120:72
#: two-region imbalance; pools grow with the population so the system
#: stays in its normal operating regime rather than saturating.
SCALES: dict[str, tuple[tuple[int, int], int, int]] = {
    "small": ((120, 72), 1, 12),
    "medium": ((480, 288), 4, 6),
    "large": ((1920, 1152), 16, 3),
}

BENCH_SEED = 5

#: Repetitions per scale; the recorded wall time is the best of these
#: (standard microbenchmark practice: the minimum is the least noisy
#: estimator of the achievable throughput on a shared machine).
REPEATS = 3

#: The huge tier: one fluid-era region at fleet scale, run twice -- once
#: on the columnar :class:`~repro.pcam.state_table.VmStateTable` path and
#: once on the per-VM-object reference path.  The two are bit-identical
#: (tests/pcam/test_columnar_parity.py), so the ratio is a pure
#: measurement of the struct-of-arrays refactor.
HUGE_N_VMS = 10_000
HUGE_TARGET_ACTIVE = 9_000
HUGE_ERAS = 3
HUGE_REQUESTS_PER_ERA = 200_000

#: Gate floor for the columnar speedup at the huge tier (see
#: ``scripts/bench_gate.py``).  Quiet machines measure ~5.5-6.5x; a
#: loaded host can sink the best interleaved ratio to ~5x, so the floor
#: sits below that while still catching any real loss of the columnar
#: win (a broken fast path reads ~1x).
HUGE_MIN_SPEEDUP = 4.5


class _ConstantPredictor(RttfPredictor):
    """RTTF far above the swap threshold: no rejuvenation churn."""

    def predict_rttf(self, vm: VirtualMachine) -> float:
        return 1e9

    def predict_mttf(self, vm: VirtualMachine) -> float:
        return 1e9


def build_loop(
    scale: str, seed: int = BENCH_SEED, telemetry=None
) -> DesControlLoop:
    """The two-region deployment of the DES-FIG3 bench at ``scale``."""
    (c1, c3), pool_factor, _ = SCALES[scale]
    rngs = RngRegistry(seed=seed)
    m3 = get_instance_type("m3.medium")
    ps = get_instance_type("private.small")

    def pool(name, itype, n):
        return [
            VirtualMachine(
                f"{name}/vm{i}",
                itype,
                AnomalyInjector(rngs.child(f"{name}{i}").stream("a")),
            )
            for i in range(n)
        ]

    regions = {
        "r1": (
            pool("r1", m3, 6 * pool_factor),
            BrowserPopulation(n_clients=c1),
            4 * pool_factor,
        ),
        "r3": (
            pool("r3", ps, 4 * pool_factor),
            BrowserPopulation(n_clients=c3),
            3 * pool_factor,
        ),
    }
    return DesControlLoop(
        regions,
        get_policy("available-resources"),
        _ConstantPredictor(),
        rngs,
        telemetry=telemetry,
    )


def measure_scale(scale: str) -> dict:
    """Time the era loop at one scale; returns the best-of-N record."""
    (c1, c3), _, eras = SCALES[scale]
    wall_s = float("inf")
    for _ in range(REPEATS):
        loop = build_loop(scale)
        t0 = time.perf_counter()
        loop.run(eras)
        wall_s = min(wall_s, time.perf_counter() - t0)
    requests = sum(
        vm.total_requests
        for state in loop._states.values()
        for vm in state.vms
    )
    events = loop.sim.fired_count
    return {
        "clients": [c1, c3],
        "eras": eras,
        "requests": int(requests),
        "events": int(events),
        "wall_s": round(wall_s, 4),
        "requests_per_s": round(requests / wall_s, 1),
        "events_per_s": round(events / wall_s, 1),
    }


def measure_telemetry() -> dict:
    """Small-scale throughput with a telemetry facade attached.

    Three datapoints, measured **interleaved** (plain, disabled, enabled
    back-to-back each repeat, best-of per mode) so the A/B comparison is
    against the same minute of machine weather rather than a plain
    number recorded earlier in the process:

    * ``plain`` -- no facade; the reference the gate compares against;
    * ``disabled`` -- a constructed-but-disabled facade (the default
      production configuration; its cost must stay within the bench
      gate's tolerance of ``plain``);
    * ``enabled`` -- recorded for trend-watching only, never gated,
      since observation is opt-in.
    """
    from repro.obs.telemetry import Telemetry

    (c1, c3), _, eras = SCALES["small"]
    modes = {"plain": None, "disabled": False, "enabled": True}
    wall = {mode: float("inf") for mode in modes}
    loops = {}
    for _ in range(REPEATS):
        for mode, enabled in modes.items():
            tel = None if enabled is None else Telemetry(enabled=enabled)
            loop = build_loop("small", telemetry=tel)
            t0 = time.perf_counter()
            loop.run(eras)
            wall[mode] = min(wall[mode], time.perf_counter() - t0)
            loops[mode] = loop
    out = {}
    for mode, loop in loops.items():
        requests = sum(
            vm.total_requests
            for state in loop._states.values()
            for vm in state.vms
        )
        out[mode] = {
            "clients": [c1, c3],
            "eras": eras,
            "requests": int(requests),
            "wall_s": round(wall[mode], 4),
            "requests_per_s": round(requests / wall[mode], 1),
        }
    return out


class _FlatModel:
    """Constant trained-model stub: isolates the feature-extraction cost."""

    def predict(self, rows):
        import numpy as np

        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        return np.full(rows.shape[0], 1e9)

    def predict_one(self, row):
        return 1e9


def _build_huge_vmc(columnar: bool):
    import numpy as np

    from repro.pcam import (
        TrainedRttfPredictor,
        VirtualMachineController,
        VmcConfig,
    )

    m3 = get_instance_type("m3.medium")
    ps = get_instance_type("private.small")
    vms = [
        VirtualMachine(
            f"vm{i:05d}",
            m3 if i % 2 else ps,
            AnomalyInjector(np.random.default_rng(i)),
        )
        for i in range(HUGE_N_VMS)
    ]
    return VirtualMachineController(
        "fleet",
        vms,
        TrainedRttfPredictor(_FlatModel()),
        VmcConfig(target_active=HUGE_TARGET_ACTIVE, columnar=columnar),
    )


def measure_huge() -> dict:
    """Fleet-scale fluid eras: columnar table vs per-VM-object path.

    Counts **VM-era events/sec** (pool size x eras / wall), the unit of
    control-plane work at this tier: every VM-era pays load accounting, a
    feature-row extraction, an RTTF prediction, failure checks and the
    rejuvenation-threshold scan.  The per-VM anomaly-injection RNG draws
    are inherently per-object (each VM owns its stream) and bound the
    achievable ratio -- the reported speedup is end-to-end ``process_era``
    wall time, not a best-case kernel measurement.

    The two modes are measured **interleaved** (columnar then objects,
    back-to-back, each repeat) and the gated ``speedup`` is the best of
    the per-repeat ratios.  Each ratio therefore compares the two modes
    under the same moment of machine weather; a load spike during one
    mode's phase skews at most one repeat instead of silently sinking
    the single recorded ratio, so ``--check`` holds the huge-tier floor
    even when the baseline is regenerated on a loaded host.
    """
    out: dict = {
        "n_vms": HUGE_N_VMS,
        "target_active": HUGE_TARGET_ACTIVE,
        "eras": HUGE_ERAS,
        "requests_per_era": HUGE_REQUESTS_PER_ERA,
    }
    vm_eras = HUGE_N_VMS * HUGE_ERAS
    walls: dict[str, list[float]] = {"columnar": [], "objects": []}
    for _ in range(REPEATS):
        for key, columnar in (("columnar", True), ("objects", False)):
            vmc = _build_huge_vmc(columnar)
            t0 = time.perf_counter()
            for era in range(HUGE_ERAS):
                vmc.process_era(
                    HUGE_REQUESTS_PER_ERA, 30.0, era * 30.0
                )
            walls[key].append(time.perf_counter() - t0)
    for key, samples in walls.items():
        wall_s = min(samples)
        out[key] = {
            "wall_s": round(wall_s, 4),
            "events_per_s": round(vm_eras / wall_s, 1),
        }
    ratios = [
        obj / col for col, obj in zip(walls["columnar"], walls["objects"])
    ]
    out["speedup_per_repeat"] = [round(r, 2) for r in ratios]
    out["speedup"] = round(max(ratios), 2)
    return out


def run_benchmark() -> dict:
    """Measure every scale; returns the full payload (JSON-ready)."""
    results = {scale: measure_scale(scale) for scale in SCALES}
    return {
        "benchmark": "des_hotpath",
        "seed": BENCH_SEED,
        "unit": "wall-clock throughput of DesControlLoop.run",
        "scales": results,
        "telemetry": measure_telemetry(),
        "huge": measure_huge(),
    }


def main(argv: list[str]) -> int:
    payload = run_benchmark()
    for scale, rec in payload["scales"].items():
        print(
            f"{scale:>7}: {rec['requests_per_s']:>12,.1f} req/s  "
            f"{rec['events_per_s']:>12,.1f} ev/s  "
            f"({rec['requests']} requests, {rec['eras']} eras, "
            f"{rec['wall_s']:.3f}s)"
        )
    for mode, rec in payload["telemetry"].items():
        print(
            f"telemetry {mode:>8}: {rec['requests_per_s']:>12,.1f} req/s  "
            f"(small scale, {rec['wall_s']:.3f}s)"
        )
    huge = payload["huge"]
    print(
        f"   huge: {huge['columnar']['events_per_s']:>12,.1f} VM-eras/s "
        f"columnar  {huge['objects']['events_per_s']:>12,.1f} objects  "
        f"({huge['speedup']:.2f}x, {huge['n_vms']} VMs)"
    )
    if "--check" in argv:
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        from bench_gate import check_against_baseline

        return check_against_baseline(payload, BASELINE_PATH)
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
