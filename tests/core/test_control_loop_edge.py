"""Edge-case tests for the control loop."""

import numpy as np
import pytest

from repro.core import AcmManager, RegionSpec
from repro.core.control_loop import AcmControlLoop, ControlLoopConfig
from repro.core.policy import get_policy
from repro.pcam import OracleRttfPredictor, VirtualMachineController, VmcConfig
from repro.sim import RngRegistry
from repro.workload import BrowserPopulation

from ..pcam.conftest import build_vm


class TestSingleRegion:
    def test_single_region_gets_full_fraction(self):
        mgr = AcmManager(
            regions=[RegionSpec("solo", "m3.medium", 4, 3, 96)],
            policy="available-resources",
            seed=2,
        )
        summaries = mgr.run(10)
        assert all(s.fractions["solo"] == pytest.approx(1.0) for s in summaries)
        assert all(s.forwarded_fraction == pytest.approx(0.0) for s in summaries)
        assert all(s.leader == "solo" for s in summaries)


class TestConservation:
    def test_requests_served_equals_routed_total(self):
        mgr = AcmManager(
            regions=[
                RegionSpec("a", "m3.medium", 6, 4, 128),
                RegionSpec("b", "private.small", 4, 3, 64),
            ],
            policy="available-resources",
            seed=3,
        )
        summaries = mgr.run(20)
        # the loop's per-era totals must match the VMCs' own counters
        total_from_loop = sum(s.total_requests for s in summaries)
        total_from_vms = sum(
            vm.total_requests
            for vmc in mgr.loop.vmcs.values()
            for vm in vmc.vms
        )
        assert total_from_vms == total_from_loop


class TestMismatchedConstruction:
    def test_population_region_mismatch_rejected(self):
        rngs = RngRegistry(seed=1)
        vms = [build_vm(rngs, name="e/vm0")]
        vmcs = {
            "a": VirtualMachineController(
                "a", vms, OracleRttfPredictor(), VmcConfig(target_active=1)
            )
        }
        pops = {"b": BrowserPopulation(n_clients=16)}
        with pytest.raises(ValueError, match="match"):
            AcmControlLoop(
                vmcs, pops, get_policy("uniform"), rngs
            )

    def test_empty_regions_rejected(self):
        rngs = RngRegistry(seed=1)
        with pytest.raises(ValueError, match="at least one"):
            AcmControlLoop({}, {}, get_policy("uniform"), rngs)


class TestAllControllersDown:
    def test_no_live_controller_raises(self):
        mgr = AcmManager(
            regions=[
                RegionSpec("a", "m3.medium", 4, 3, 64),
                RegionSpec("b", "private.small", 4, 3, 48),
            ],
            policy="uniform",
            seed=4,
        )
        mgr.run(2)
        mgr.loop.overlay.fail_node("a")
        mgr.loop.overlay.fail_node("b")
        with pytest.raises(RuntimeError, match="down"):
            mgr.loop.current_leader()


class TestFractionFloorAcrossEras:
    def test_no_region_ever_starved(self):
        """The min-fraction floor keeps every region observable forever,
        even when one region is vastly weaker."""
        mgr = AcmManager(
            regions=[
                RegionSpec("big", "m3.medium", 10, 8, 320),
                RegionSpec("tiny", "private.small", 2, 1, 16),
            ],
            policy="available-resources",
            seed=5,
        )
        mgr.run(60)
        tiny = mgr.traces.series("fraction/tiny")
        assert tiny.min() >= 1e-3 - 1e-12
        # and the tiny region keeps serving requests
        vmc = mgr.loop.vmcs["tiny"]
        assert sum(vm.total_requests for vm in vmc.vms) > 0


class TestEraSummaryInternalConsistency:
    def test_fraction_and_rmttf_keys_match_regions(self):
        mgr = AcmManager(
            regions=[
                RegionSpec("a", "m3.medium", 4, 3, 64),
                RegionSpec("b", "m3.small", 6, 5, 96),
                RegionSpec("c", "private.small", 4, 3, 32),
            ],
            policy="exploration",
            seed=6,
        )
        (s,) = mgr.run(1)
        assert set(s.fractions) == {"a", "b", "c"}
        assert set(s.rmttf) == {"a", "b", "c"}
        assert set(s.per_region_response_s) == {"a", "b", "c"}
        assert set(s.active_vms) == {"a", "b", "c"}
        assert sum(s.fractions.values()) == pytest.approx(1.0)
