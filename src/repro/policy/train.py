"""Round-synchronous policy-head training on the DES fleet.

The trainer alternates two steps until the round budget is spent:

1. **Snapshot.**  The master head's parameters are written as a
   content-addressed checkpoint
   (:func:`~repro.policy.checkpoint.save_head_addressed`), so every
   rollout job's config -- and therefore its
   :class:`~repro.fleet.store.ResultStore` digest -- names the exact
   parameters it ran against.  A killed training run resumes from the
   store without recomputing finished episodes.
2. **Rollout + replay.**  ``episodes_per_round`` episodes (plus the
   static baselines, on the *same* seeds, for a paired regret estimate)
   run through the :class:`~repro.fleet.executor.FleetExecutor`.  Each
   worker loads the snapshot, learns locally through its episode, and
   returns the transition log; the master then replays every episode's
   transitions in spec order.  Replay order depends only on the job
   list, never on completion order, which is what makes training
   **worker-count invariant**: ``--workers 1`` and ``--workers 4``
   produce bit-identical parameters.

Episode seeds derive from one root --
``derive_seed(seed, "policy/train/round<r>/ep<e>")`` -- so the whole
campaign is a pure function of its :class:`TrainConfig`, and the final
checkpoint (written to the stable path ``<out>/policy-head-final.json``)
is byte-identical across same-config runs: the byte-identity acceptance
check of ``repro policy train``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.fleet.executor import FleetExecutor
from repro.fleet.jobs import JobSpec, parse_scenario_key
from repro.fleet.store import ResultStore
from repro.obs.manifest import RunManifest
from repro.policy.checkpoint import (
    head_digest,
    load_head,
    save_head,
    save_head_addressed,
)
from repro.policy.heads import LEARNED_KINDS, build_head
from repro.policy.runtime import PolicyHeadRuntime, RewardConfig
from repro.sim.rng import derive_seed

#: Stable filename of the final frozen checkpoint inside ``out_dir``.
FINAL_CHECKPOINT = "policy-head-final.json"

#: Stable filename of the per-round training history inside ``out_dir``.
HISTORY_FILE = "train-history.json"


# ------------------------------------------------------------------ #
# one episode (runs inside a fleet worker)
# ------------------------------------------------------------------ #


def run_rollout_episode(
    *,
    scenario: str,
    head_spec: str,
    fallback_policy: str,
    eras: int,
    seed: int,
    era_s: float = 30.0,
    load: float = 1.0,
    reward: RewardConfig | None = None,
) -> dict:
    """One training/eval episode: drive the DES with a head, return the
    per-era rewards and the transition log the trainer replays.

    This is the body of ``rollout`` fleet jobs
    (:func:`repro.fleet.jobs._execute_rollout`).  The head resolves
    through the usual spec grammar -- checkpoint paths stay *trainable*
    here, so the worker keeps learning through its own episode (the
    exploration that generates informative transitions) while the master
    only trusts the returned log.
    """
    from repro.experiments.runner import run_policy_experiment
    from repro.fleet.jobs import build_scenario

    scn = build_scenario(scenario, load)
    head = load_head(head_spec)
    # episode isolation: any sampling stream is a pure function of the
    # episode seed, never of worker identity or wall clock
    head.reseed(derive_seed(seed, "policy-head"))
    runtime = PolicyHeadRuntime(head, reward=reward or RewardConfig())
    result = run_policy_experiment(
        scn,
        fallback_policy,
        eras=eras,
        seed=seed,
        era_s=era_s,
        policy_head=runtime,
    )
    stats = result.head_stats
    return {
        "scenario": scn.name,
        "head_spec": head_spec,
        "head": head.name,
        "kind": head.kind,
        "seed": int(seed),
        "eras": int(eras),
        "mean_reward": stats["mean_reward"],
        "availability": stats["availability"],
        "cost_per_mreq": stats["cost_per_mreq"],
        "mean_threshold_delta_s": stats["mean_threshold_delta_s"],
        "rewards": [float(r) for r in runtime.rewards],
        # already JSON-able: heads log transitions via .tolist()
        "transitions": list(head.transitions),
    }


# ------------------------------------------------------------------ #
# the campaign
# ------------------------------------------------------------------ #


@dataclass(frozen=True)
class TrainConfig:
    """Everything one training campaign is a pure function of."""

    head_kind: str = "bandit"
    #: scenario key, optionally drifted ("three-region+drift2.5" is the
    #: regime the learned heads are meant to win on)
    scenario: str = "three-region+drift2.5"
    #: the static policy used for hold/fallback modes inside episodes
    fallback_policy: str = "sensible-routing"
    #: static heads run on the same seeds each round for paired regret
    baselines: tuple[str, ...] = (
        "static:sensible-routing",
        "static:available-resources",
    )
    rounds: int = 3
    episodes_per_round: int = 4
    eras: int = 40
    era_s: float = 30.0
    load: float = 1.0
    seed: int = 7
    workers: int = 1
    out_dir: str = "out/policy"

    def __post_init__(self) -> None:
        if self.head_kind not in LEARNED_KINDS:
            raise ValueError(
                f"head_kind must be one of {LEARNED_KINDS}, "
                f"got {self.head_kind!r}"
            )
        parse_scenario_key(self.scenario)  # raises on garbage
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.episodes_per_round < 1:
            raise ValueError("episodes_per_round must be >= 1")
        if self.eras < 10:
            raise ValueError("eras must be >= 10 (assessment minimum)")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def as_dict(self) -> dict:
        return {
            "head_kind": self.head_kind,
            "scenario": self.scenario,
            "fallback_policy": self.fallback_policy,
            "baselines": list(self.baselines),
            "rounds": self.rounds,
            "episodes_per_round": self.episodes_per_round,
            "eras": self.eras,
            "era_s": self.era_s,
            "load": self.load,
            "seed": self.seed,
        }


@dataclass
class TrainResult:
    """What one training campaign produced."""

    config: TrainConfig
    #: the trained head (left trainable; the checkpoint is what eval uses)
    head: object
    #: stable path of the final checkpoint (byte-identical across runs)
    checkpoint: Path
    #: content digest of the final parameters
    digest: str
    #: one row per round: mean reward, baselines, regret, checkpoint
    history: list[dict] = field(default_factory=list)
    #: fleet bookkeeping (store hits let a resumed run skip episodes)
    store_hits: int = 0
    executed: int = 0

    @property
    def regret_curve(self) -> list[float]:
        """Per-round regret vs the best static baseline (paired seeds)."""
        return [row["regret"] for row in self.history]


def _round_jobs(
    cfg: TrainConfig, rnd: int, snapshot: Path
) -> tuple[list[JobSpec], list[str]]:
    """The round's job list: learned episodes first, then baselines.

    Returns (jobs, head specs aligned with jobs).  The learned episodes
    and every baseline share the per-episode seeds, so the regret
    estimate is paired.
    """
    jobs: list[JobSpec] = []
    specs: list[str] = []
    heads = [str(snapshot)] + list(cfg.baselines)
    for spec in heads:
        for ep in range(cfg.episodes_per_round):
            cell = f"policy/train/round{rnd}/ep{ep}"
            jobs.append(
                JobSpec(
                    kind="rollout",
                    scenario=cfg.scenario,
                    policy=cfg.fallback_policy,
                    load=float(cfg.load),
                    seed=derive_seed(cfg.seed, cell),
                    replicate=ep,
                    eras=cfg.eras,
                    era_s=cfg.era_s,
                    policy_head=spec,
                )
            )
            specs.append(spec)
    return jobs, specs


def train_policy_head(
    cfg: TrainConfig,
    progress: Callable[[str], None] | None = None,
) -> TrainResult:
    """Run one round-synchronous training campaign (see module docstring)."""

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    out = Path(cfg.out_dir)
    ckpt_dir = out / "checkpoints"
    store = ResultStore(out / "store")
    head = build_head(cfg.head_kind)
    executor = FleetExecutor(workers=cfg.workers, store=store, resume=True)

    history: list[dict] = []
    store_hits = 0
    executed = 0
    for rnd in range(cfg.rounds):
        snapshot = save_head_addressed(head, ckpt_dir)
        jobs, specs = _round_jobs(cfg, rnd, snapshot)
        outcome = executor.run(jobs)
        store_hits += outcome.store_hits
        executed += outcome.executed
        if not outcome.ok:
            failures = "; ".join(
                f"{d}: {m}" for d, m in sorted(outcome.failures.items())
            )
            raise RuntimeError(
                f"training round {rnd} had failed episodes: {failures}"
            )

        # replay in spec order: completion order (and so the worker
        # count) never reaches the parameters
        learned: list[dict] = []
        baseline_rewards: dict[str, list[float]] = {
            b: [] for b in cfg.baselines
        }
        for spec, payload in zip(specs, outcome.payloads):
            if spec == str(snapshot):
                head.replay(payload["transitions"])
                learned.append(payload)
            else:
                baseline_rewards[spec].append(payload["mean_reward"])

        learned_mean = float(
            np.mean([p["mean_reward"] for p in learned])
        )
        baseline_means = {
            b: float(np.mean(v)) for b, v in baseline_rewards.items()
        }
        # no baselines configured -> regret is 0 by convention
        best_static = (
            max(baseline_means.values()) if baseline_means else learned_mean
        )
        row = {
            "round": rnd,
            "checkpoint": snapshot.name,
            "mean_reward": learned_mean,
            "availability": float(
                np.mean([p["availability"] for p in learned])
            ),
            "cost_per_mreq": float(
                np.mean([p["cost_per_mreq"] for p in learned])
            ),
            "baselines": baseline_means,
            "regret": best_static - learned_mean,
        }
        history.append(row)
        say(
            f"round {rnd}: reward {learned_mean:.4f} "
            f"(best static {best_static:.4f}, "
            f"regret {row['regret']:+.4f})"
        )

    # the deliverable: a frozen-loadable checkpoint at a stable path,
    # byte-identical across same-config runs
    final = save_head(head, out / FINAL_CHECKPOINT)
    digest = head_digest(head)
    manifest = RunManifest.build(
        seed=cfg.seed, config=cfg.as_dict(), final_digest=digest
    )
    history_doc = {
        "manifest": manifest.as_dict(),
        "config": cfg.as_dict(),
        "final_checkpoint": final.name,
        "final_digest": digest,
        "rounds": history,
    }
    (out / HISTORY_FILE).write_text(
        json.dumps(history_doc, indent=1, sort_keys=True) + "\n"
    )
    say(f"final checkpoint {final} [{digest}]")
    return TrainResult(
        config=cfg,
        head=head,
        checkpoint=final,
        digest=digest,
        history=history,
        store_hits=store_hits,
        executed=executed,
    )


def load_history(out_dir: str | Path) -> dict:
    """The ``train-history.json`` document of a finished campaign."""
    return json.loads((Path(out_dir) / HISTORY_FILE).read_text())
