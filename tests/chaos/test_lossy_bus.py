"""Tests for the loss/jitter-injecting message bus."""

import pytest

from repro.chaos import LossyBus
from repro.overlay import OverlayNetwork, Router
from repro.sim import Simulator
from repro.sim.rng import RngRegistry


def make_bus(seed=7, **kw):
    net = OverlayNetwork.full_mesh({("r1", "r2"): 10.0, ("r2", "r3"): 10.0})
    sim = Simulator()
    bus = LossyBus(
        sim=sim,
        router=Router(net),
        rng=RngRegistry(seed=seed).stream("chaos/network"),
        **kw,
    )
    return sim, net, bus


class TestLoss:
    def test_zero_loss_is_a_plain_bus(self):
        sim, net, bus = make_bus()
        got = []
        bus.register("r2", got.append)
        assert bus.send("r1", "r2", "x", 1)
        sim.run()
        assert len(got) == 1
        assert bus.chaos_dropped == 0

    def test_loss_rate_is_roughly_honoured(self):
        sim, net, bus = make_bus(loss_probability=0.3)
        got = []
        bus.register("r2", got.append)
        for _ in range(500):
            assert bus.send("r1", "r2", "x", 1)  # always "accepted"
        sim.run()
        assert bus.chaos_dropped == 500 - len(got)
        assert 0.2 < bus.chaos_dropped / 500 < 0.4
        assert bus.drop_counts["chaos_loss"] == bus.chaos_dropped

    def test_lost_messages_report_outcome(self):
        sim, net, bus = make_bus(loss_probability=1.0 - 1e-12)
        bus.register("r2", lambda m: None)
        outcomes = []
        bus.send("r1", "r2", "x", 1, on_outcome=lambda m, o: outcomes.append(o))
        assert outcomes == ["chaos_loss"]

    def test_total_loss_starves_receiver(self):
        sim, net, bus = make_bus(loss_probability=1.0 - 1e-12)
        got = []
        bus.register("r2", got.append)
        for _ in range(20):
            bus.send("r1", "r2", "x", 1)
        sim.run()
        assert got == []

    def test_same_seed_same_losses(self):
        def losses(seed):
            sim, net, bus = make_bus(seed=seed, loss_probability=0.5)
            bus.register("r2", lambda m: None)
            pattern = [bus.send("r1", "r2", "x", i) for i in range(50)]
            sim.run()
            return (bus.chaos_dropped, bus.delivered_count)

        assert losses(13) == losses(13)
        assert losses(13) != losses(14)


class TestJitter:
    def test_jitter_delays_but_delivers(self):
        sim, net, bus = make_bus(jitter_ms=100.0)
        got = []
        bus.register("r2", lambda m: got.append(sim.now))
        bus.send("r1", "r2", "x", 1)
        sim.run()
        (at,) = got
        # base path latency 10 ms plus up to 100 ms of jitter
        assert 0.01 < at <= 0.11
        assert bus.chaos_delayed == 1

    def test_rng_required_once_enabled(self):
        net = OverlayNetwork.full_mesh({("r1", "r2"): 10.0})
        sim = Simulator()
        bus = LossyBus(sim=sim, router=Router(net), loss_probability=0.5)
        bus.register("r2", lambda m: None)
        with pytest.raises(RuntimeError, match="rng"):
            bus.send("r1", "r2", "x", 1)
