"""The distributed control plane: detectors + gossip + the MAPE loop.

The basic :class:`~repro.core.control_loop.AcmControlLoop` reads liveness
and elects its leader from the overlay *oracle* (the live topology graph),
which is the right abstraction level for the policy study.  This module
composes the real distributed machinery underneath it, as Figure 1 draws:

* every controller runs a :class:`~repro.overlay.heartbeat.HeartbeatDetector`
  and derives its *local* leader from its own detector view;
* every controller publishes its region's era state (RMTTF, fraction,
  pool size) into a :class:`~repro.overlay.state_sync.StateStore`,
  disseminated by anti-entropy gossip -- so whichever controller takes
  over as leader holds warm state;
* the message traffic (heartbeats + gossip) shares one bus per overlay,
  with a per-node handler multiplexer.

:class:`DistributedControlPlane` advances the simulator between control
eras so the background protocols run *in the same simulated time* as the
loop, and reports when the decentralised leader view disagrees with the
oracle (it may, transiently, right after failures -- that window is
exactly the detector timeout, and the tests measure it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.control_loop import AcmControlLoop, EraSummary
from repro.obs.telemetry import Telemetry
from repro.overlay.heartbeat import HeartbeatDetector, build_detector_mesh
from repro.overlay.messaging import Message, MessageBus
from repro.overlay.network import OverlayNetwork
from repro.overlay.reliable import ACK_KIND, DATA_KIND, ReliableChannel
from repro.overlay.routing import Router
from repro.overlay.state_sync import GossipSync, StateStore
from repro.sim.engine import Simulator


class ReliableTransport:
    """Carries the MAPE control traffic over a :class:`ReliableChannel`.

    Plugged into :class:`~repro.core.control_loop.AcmControlLoop` via its
    ``transport`` hook, this replaces the loop's oracle exchange with real
    messages on the plane's bus: slave VMCs send their ``lastRMTTF`` to
    the leader (Algorithm 1) and the leader pushes each slave its new
    fraction (Algorithm 3), with acks, dedup, and bounded retries
    underneath.  Each exchange opens a fixed window of simulated time
    (``window_s``) during which the plane's simulator runs, so retries and
    acks resolve *inside* the era that issued them; what has not arrived
    when the window closes counts as missing for that era (and feeds the
    loop's degradation ladder).

    Parameters
    ----------
    channel:
        The reliable channel shared by all controller nodes.
    regions:
        All region names (transport registers an application handler for
        each).
    overlay:
        Liveness source: a dead controller neither sends reports nor
        installs fractions.
    window_s:
        Simulated seconds granted to each gather/push exchange.  The
        default covers a full retry ladder of the channel's defaults
        (0.25 + 0.5 + 1.0 s backoff plus jitter and path latencies).
    """

    def __init__(
        self,
        channel: ReliableChannel,
        regions: list[str],
        overlay: OverlayNetwork,
        window_s: float = 3.0,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.channel = channel
        self.sim = channel.sim
        self.regions = list(regions)
        self.overlay = overlay
        self.window_s = float(window_s)
        self._report_inbox: dict[str, float] = {}
        for node in self.regions:
            self.channel.register(node, self._make_app_handler(node))

    def _make_app_handler(self, node: str) -> Callable[[Message], None]:
        def handle(msg: Message) -> None:
            if msg.kind == "rmttf-report":
                self._report_inbox[msg.payload["region"]] = msg.payload[
                    "rmttf"
                ]
            # "fractions" pushes need no receive-side action here: the
            # loop owns the global fraction state, and the ack (observed
            # by the sender) is what marks a region as installed.

        return handle

    # -- the AcmControlLoop transport interface ------------------------- #

    def gather_reports(
        self, leader: str, raw_reports: dict[str, float]
    ) -> dict[str, float]:
        """Algorithm 1's report collection, over real messages.

        Returns region -> lastRMTTF for every report that *arrived at the
        leader* within the exchange window (the leader's own report is
        local and always present).
        """
        self._report_inbox = {}
        for region in sorted(raw_reports):
            if region == leader or not self.overlay.is_alive(region):
                continue
            self.channel.send(
                region,
                leader,
                "rmttf-report",
                {"region": region, "rmttf": raw_reports[region]},
            )
        self.sim.run_until(self.sim.now + self.window_s)
        received = dict(self._report_inbox)
        received[leader] = raw_reports[leader]
        return received

    def push_fractions(
        self, leader: str, fractions: dict[str, float]
    ) -> set[str]:
        """Algorithm 3's fraction distribution, over real messages.

        Returns the regions whose push was *acknowledged* within the
        window -- the leader's definition of "installed".
        """
        handles = {}
        for region in sorted(fractions):
            if region == leader:
                continue
            handles[region] = self.channel.send(
                leader,
                region,
                "fractions",
                {"region": region, "fraction": fractions[region]},
            )
        self.sim.run_until(self.sim.now + self.window_s)
        return {
            region
            for region, handle in handles.items()
            if handle.status == "acked"
        }


@dataclass(frozen=True, slots=True)
class PlaneEraReport:
    """One era's view of the distributed control plane."""

    summary: EraSummary
    oracle_leader: str
    detector_leaders: dict[str, str]
    views_agree: bool
    #: worst-case staleness (in eras) of any live node's view of any live
    #: region; with continuous updates the vectors are never *identical*,
    #: so freshness-within-a-bound is the meaningful convergence notion.
    max_staleness_eras: int

    @property
    def gossip_fresh(self) -> bool:
        """Every live node's view lags every live region by <= 3 eras."""
        return self.max_staleness_eras <= 3


class DistributedControlPlane:
    """Runs the overlay's distributed services alongside the control loop.

    Parameters
    ----------
    loop:
        The configured control loop (its overlay and router are reused).
    heartbeat_period_s, detector_timeout_s:
        Failure-detector tuning; the timeout bounds how long a dead
        leader keeps being followed.
    gossip_period_s:
        Anti-entropy round interval.
    bus_factory:
        Optional ``(sim, router) -> MessageBus`` constructor; lets chaos
        campaigns put a :class:`repro.chaos.lossy.LossyBus` under *all*
        plane traffic (heartbeats, gossip, and control messages).
    reliable_control:
        When True, move the loop's VMC->leader RMTTF reports and
        leader->VMC fraction pushes onto a :class:`ReliableChannel` over
        this plane's bus (installs a :class:`ReliableTransport` as the
        loop's transport).
    control_window_s:
        Exchange window of the reliable transport (see
        :class:`ReliableTransport`).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade.  The
        plane's simulator becomes the telemetry clock (it is the finest
        time source of a combined run), the plane's bus and reliable
        channel mirror their counters into the registry, and leader-view
        disagreements leave flight events.
    """

    def __init__(
        self,
        loop: AcmControlLoop,
        heartbeat_period_s: float = 5.0,
        detector_timeout_s: float = 15.0,
        gossip_period_s: float = 10.0,
        bus_factory: Callable[[Simulator, Router], MessageBus] | None = None,
        reliable_control: bool = False,
        control_window_s: float = 3.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.loop = loop
        self._obs = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self.sim = Simulator(telemetry=telemetry)
        self.bus = (
            bus_factory(self.sim, loop.router)
            if bus_factory is not None
            else MessageBus(sim=self.sim, router=loop.router, telemetry=telemetry)
        )
        nodes = list(loop.regions)
        self.detectors: dict[str, HeartbeatDetector] = build_detector_mesh(
            nodes,
            self.sim,
            self.bus,
            period_s=heartbeat_period_s,
            timeout_s=detector_timeout_s,
            register=False,
            start=False,
        )
        self.stores = {n: StateStore(n) for n in nodes}
        self.gossip = GossipSync(
            self.stores,
            self.sim,
            self.bus,
            period_s=gossip_period_s,
            register=False,
        )
        self.channel: ReliableChannel | None = None
        self.transport: ReliableTransport | None = None
        if reliable_control:
            self.channel = ReliableChannel(
                self.bus,
                loop.rngs.stream("reliable/jitter"),
                telemetry=telemetry,
            )
            self.transport = ReliableTransport(
                self.channel,
                nodes,
                loop.overlay,
                window_s=control_window_s,
            )
            loop.transport = self.transport
        # one bus registration per node, demultiplexing by message kind
        for node in nodes:
            self.bus.register(node, self._make_mux(node))
        for det in self.detectors.values():
            det.start()
        self.gossip.start()
        self.reports: list[PlaneEraReport] = []

    def _make_mux(self, node: str):
        gossip_handler = self.gossip.make_handler(node)
        detector = self.detectors[node]
        channel_handler = (
            self.channel.make_bus_handler(node)
            if self.channel is not None
            else None
        )

        def mux(msg: Message) -> None:
            if msg.kind == "heartbeat":
                detector.on_message(msg)
            elif msg.kind == "state-gossip":
                gossip_handler(msg)
            elif channel_handler is not None and msg.kind in (
                DATA_KIND,
                ACK_KIND,
            ):
                channel_handler(msg)

        return mux

    # ------------------------------------------------------------------ #

    def run_era(self) -> PlaneEraReport:
        """One control era with the background protocols running.

        Order within the era: background traffic first (heartbeats and
        gossip for the era's duration), then the loop's MAPE cycle, then
        each region publishes its fresh state for the next gossip rounds.
        """
        era_s = self.loop.config.era_s
        self.sim.run_until(self.sim.now + era_s)
        summary = self.loop.run_era()
        for region in self.loop.regions:
            if self.loop.overlay.is_alive(region):
                self.stores[region].update_local(
                    {
                        "rmttf": summary.rmttf[region],
                        "fraction": summary.fractions[region],
                        "active_vms": summary.active_vms[region],
                        "era": summary.era,
                    }
                )
        detector_leaders = {
            n: det.local_leader()
            for n, det in self.detectors.items()
            if self.loop.overlay.is_alive(n)
        }
        views = set(detector_leaders.values())
        live = [r for r in self.loop.regions if self.loop.overlay.is_alive(r)]
        staleness = 0
        for node in live:
            for region in live:
                entry = self.stores[node].get(region)
                if entry is None:
                    staleness = max(staleness, summary.era + 1)
                else:
                    staleness = max(
                        staleness, summary.era - entry.payload["era"]
                    )
        report = PlaneEraReport(
            summary=summary,
            oracle_leader=summary.leader,
            detector_leaders=detector_leaders,
            views_agree=(
                len(views) == 1 and views == {summary.leader}
            ),
            max_staleness_eras=int(staleness),
        )
        if self._obs is not None:
            self._obs.gauge("plane_max_staleness_eras").set(staleness)
            if not report.views_agree:
                self._obs.counter("plane_view_disagreements_total").inc()
                self._obs.event(
                    "election.view_disagreement",
                    era=summary.era,
                    oracle=summary.leader,
                    views=sorted(views),
                )
        self.reports.append(report)
        return report

    def run(self, n_eras: int) -> list[PlaneEraReport]:
        """Run several eras; returns the per-era plane reports."""
        if n_eras < 1:
            raise ValueError("n_eras must be >= 1")
        return [self.run_era() for _ in range(n_eras)]

    # ------------------------------------------------------------------ #

    def state_view(self, node: str) -> dict[str, dict]:
        """What ``node`` currently believes about every region."""
        return {
            region: entry.payload
            for region, entry in self.stores[node].snapshot().items()
        }

    def agreement_fraction(self) -> float:
        """Share of eras where detector views matched the oracle leader."""
        if not self.reports:
            return float("nan")
        return sum(r.views_agree for r in self.reports) / len(self.reports)
