"""Prediction-drift tracking: predicted vs realized RTTF per life.

A deployed F2PM model was fitted on profiling data; the workload it
serves can drift away from that regime (anomaly rates change, the model
server misbehaves).  The only ground truth available online is the same
signal the label collector uses: when a VM life ends, every earlier
prediction for that VM can be scored against the realized time-to-event.

Scoring is censoring-aware:

* a life ending in **failure** yields exact realized RTTFs -- the life's
  score is the mean absolute percentage error of its predictions;
* a life ending in **rejuvenation** only bounds the truth from below
  (the VM demonstrably survived until the restart) -- the life's score
  counts only *under*-predictions relative to that bound; a prediction
  at or above the bound is consistent with the censored observation and
  scores zero.

A healthy predictor therefore scores ~0 even when PCAM rejuvenates
everything proactively, while an over-predicting (drifted or corrupted)
model is caught by the hard failures it causes.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class DriftTracker:
    """Rolling per-life MAPE between predicted and realized RTTF.

    Parameters
    ----------
    window_lives:
        Completed lives in the rolling drift window.
    floor_s:
        Relative errors are computed against ``max(realized, floor_s)``
        so near-zero realized RTTFs do not blow the percentage up.
    """

    def __init__(self, window_lives: int = 12, floor_s: float = 30.0) -> None:
        if window_lives < 1:
            raise ValueError("window_lives must be >= 1")
        if floor_s <= 0:
            raise ValueError("floor_s must be positive")
        self.window_lives = int(window_lives)
        self.floor_s = float(floor_s)
        self._pending: dict[str, list[tuple[float, float]]] = {}
        self._window: deque[float] = deque(maxlen=self.window_lives)
        #: all per-life scores ever computed, in completion order
        self.life_scores: list[float] = []

    def observe(self, key: str, time: float, predicted: float) -> None:
        """Record one prediction for later scoring (non-finite dropped)."""
        if np.isfinite(predicted):
            self._pending.setdefault(key, []).append(
                (float(time), float(predicted))
            )

    def life_end(self, key: str, end_time: float, reason: str) -> float | None:
        """Score the life's predictions; returns its MAPE (or ``None``).

        ``None`` means no prediction was pending for this VM.
        """
        pending = self._pending.pop(key, None)
        if not pending:
            return None
        errors = []
        for t, predicted in pending:
            realized = end_time - t
            if realized <= 0:
                continue
            if reason == "failure":
                err = abs(predicted - realized)
            else:  # censored: only a prediction below the bound is wrong
                err = max(realized - predicted, 0.0)
            errors.append(err / max(realized, self.floor_s))
        if not errors:
            return None
        score = float(np.mean(errors))
        self._window.append(score)
        self.life_scores.append(score)
        return score

    def discard(self, key: str) -> None:
        """Drop pending predictions for a VM leaving the pool unscored."""
        self._pending.pop(key, None)

    @property
    def lives_scored(self) -> int:
        """Lives currently inside the rolling window."""
        return len(self._window)

    def rolling(self) -> float | None:
        """Mean per-life MAPE over the rolling window (``None`` if empty)."""
        if not self._window:
            return None
        return float(np.mean(self._window))

    def reset_window(self) -> None:
        """Restart the rolling window (hysteresis after a fallback fires)."""
        self._window.clear()
