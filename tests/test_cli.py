"""Tests for the command-line interface and the top-level package API."""

import pytest

import repro
from repro.cli import build_parser, main


class TestPackageApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        assert callable(repro.AcmManager)
        assert callable(repro.RegionSpec)
        assert callable(repro.get_policy)


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--eras", "50"])
        assert args.command == "fig3"
        assert args.eras == 50

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.regions == 3
        assert "sensible-routing" in args.policies

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_regions(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--regions", "5"])


class TestUnifiedSeedOption:
    """Every seeded subcommand shares one --seed definition (same
    default, same semantics) via `repro.cli.add_seed_option`."""

    SEEDED_INVOCATIONS = [
        ["fig3"],
        ["fig4"],
        ["compare"],
        ["export", "fig3"],
        ["plot", "fig3"],
        ["reproduce"],
        ["robustness", "fig3"],
        ["chaos", "smoke"],
        ["sweep"],
        ["models"],
        ["policy", "train"],
        ["policy", "eval"],
    ]

    def test_documented_default_everywhere(self):
        from repro.cli import DEFAULT_SEED

        parser = build_parser()
        for argv in self.SEEDED_INVOCATIONS:
            args = parser.parse_args(argv)
            assert args.seed == DEFAULT_SEED, argv

    def test_override_parses_everywhere(self):
        parser = build_parser()
        for argv in self.SEEDED_INVOCATIONS:
            args = parser.parse_args(argv + ["--seed", "123"])
            assert args.seed == 123, argv


class TestSweepCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.replicates == 3
        assert not args.resume and not args.dry_run and not args.gc
        assert "available-resources" in args.policies

    def test_dry_run_lists_jobs_without_executing(self, capsys, tmp_path):
        rc = main(
            ["sweep", "--scenarios", "two-region", "--policies",
             "uniform", "--loads", "0.25", "--replicates", "2",
             "--eras", "12", "--dry-run",
             "--store", str(tmp_path / "store")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 cells x 2 replicates = 2 jobs" in out
        assert "policy/two-region/uniform/load0.25/rep0" in out
        assert not (tmp_path / "store").exists()

    def test_invalid_spec_exits_2(self, capsys):
        rc = main(["sweep", "--scenarios", "mars", "--dry-run"])
        assert rc == 2
        assert "invalid sweep spec" in capsys.readouterr().err

    def test_run_resume_and_gc(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        base = [
            "sweep", "--scenarios", "two-region", "--policies", "uniform",
            "--loads", "0.25", "--replicates", "1", "--eras", "12",
            "--store", store,
        ]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "1 executed, 0 store hits" in out
        assert "| cell |" in out

        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 1 store hits" in out

        # an edited spec plus --gc prunes the now-stale entry
        edited = [
            "sweep", "--scenarios", "two-region", "--policies", "uniform",
            "--loads", "0.5", "--replicates", "1", "--eras", "12",
            "--store", store, "--dry-run", "--gc",
        ]
        # gc runs only on real invocations; drop dry-run
        edited.remove("--dry-run")
        assert main(edited + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "gc: pruned 1 stale store entries" in out

    def test_csv_export_embeds_manifest(self, tmp_path):
        from repro.sim.tracing import read_csv_manifest

        csv_path = str(tmp_path / "cells.csv")
        rc = main(
            ["sweep", "--scenarios", "two-region", "--policies",
             "uniform", "--loads", "0.25", "--replicates", "1",
             "--eras", "12", "--store", str(tmp_path / "store"),
             "--csv", csv_path]
        )
        assert rc == 0
        manifest = read_csv_manifest(csv_path)
        assert manifest is not None
        assert manifest["seed"] == 7


class TestChaosSuite:
    def test_chaos_all_parses(self):
        args = build_parser().parse_args(
            ["chaos", "all", "--workers", "2"]
        )
        assert args.campaign == "all"
        assert args.workers == 2


class TestExecution:
    def test_compare_runs(self, capsys):
        rc = main(
            [
                "compare",
                "--regions",
                "2",
                "--eras",
                "30",
                "--policies",
                "uniform",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig3-two-regions" in out
        assert "uniform" in out

    @pytest.mark.slow
    def test_models_runs(self, capsys):
        rc = main(["models", "--seed", "3", "--instance-type", "m3.small"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rep-tree" in out
        assert "selected features" in out


class TestExport:
    def test_export_writes_csv_per_policy(self, tmp_path):
        prefix = str(tmp_path / "tr")
        rc = main(
            ["export", "fig3", "--eras", "15", "--seed", "2",
             "--prefix", prefix]
        )
        assert rc == 0
        from repro.sim import TraceRecorder

        path = f"{prefix}_fig3_available-resources.csv"
        rec = TraceRecorder.from_csv(path)
        assert "rmttf/region1-ireland" in rec.names()
        assert len(rec.series("response_time")) == 15

    def test_export_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export"])


class TestPlanCommand:
    def test_plan_prints_recommendation(self, capsys):
        rc = main(["plan", "--rate", "30", "--target", "600"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ACTIVE" in out and "STANDBY" in out
        assert "expected RMTTF" in out

    def test_plan_requires_rate_and_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestRobustnessCommand:
    def test_robustness_runs_and_reports(self, capsys):
        rc = main(
            ["robustness", "fig3", "--eras", "60", "--seeds", "7"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed" in out and "ALL PASS" in out
