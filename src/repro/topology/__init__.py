"""Hierarchical failure domains: region -> availability zone -> rack.

The paper's ACM treats failures as independent per-VM events.  Real
multi-cloud fleets fail in correlated blocks -- a rack loses power, an AZ
partitions -- so this package adds the topology layer those faults need:
:class:`FailureDomainTree` describes the hierarchy and assigns every VM a
rack, and :class:`DomainHealthTracker` aggregates fault and availability
state per domain for the control plane.
"""

from repro.topology.domains import (
    FailureDomainTree,
    RackInfo,
    parse_domain_shape,
)
from repro.topology.health import DomainHealthTracker

__all__ = [
    "DomainHealthTracker",
    "FailureDomainTree",
    "RackInfo",
    "parse_domain_shape",
]
