"""Reactive VM-pool resizing -- Sec. V.

"during the execution of this Algorithm, each local VMC controller uses the
ML-based prediction models ... to determine ... whether the clients directly
connected to the region are experiencing a Response Time which is over a
pre-defined threshold.  In this case, the system adds new VMs to the pool
...  If the RMTTF of a cloud region becomes less (more) than a given
threshold, then the local controller can activate new VMs (deactivate some
active VMs) by using MTTF prediction models to evaluate the expected RMTTF
as a result of the VM activation (deactivation)."

:class:`Autoscaler` implements both triggers.  The expected-RMTTF model it
uses for sizing is the mean-field relation the whole reproduction is built
on: per-VM load scales as ``1/n_active``, so RMTTF scales roughly as
``n_active`` -- adding a VM multiplies the expected RMTTF by
``(n+1)/n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rt_predictor import ResponseTimePredictor
from repro.pcam.vmc import EraReport, VirtualMachineController


@dataclass(frozen=True, slots=True)
class AutoscaleConfig:
    """Autoscaler thresholds.

    Parameters
    ----------
    response_time_threshold_s:
        ADDVMS trigger: grow when predicted client response time exceeds
        this (the paper's "pre-defined threshold").
    rmttf_low_s:
        Grow when the region RMTTF falls below this.
    rmttf_high_s:
        Shrink when the region RMTTF rises above this (and the response
        time has headroom).
    cooldown_eras:
        Minimum eras between consecutive scaling actions per region
        (prevents thrash on noisy signals).
    headroom_factor:
        Load multiplier for the *predicted* response-time trigger
        (Sec. V): grow when the forecast at ``headroom_factor x`` the
        current rate would violate the threshold, i.e. before the
        measured response time actually crosses it.
    """

    response_time_threshold_s: float = 0.8
    rmttf_low_s: float = 300.0
    rmttf_high_s: float = 3000.0
    cooldown_eras: int = 5
    headroom_factor: float = 1.25

    def __post_init__(self) -> None:
        if self.response_time_threshold_s <= 0:
            raise ValueError("response_time_threshold_s must be positive")
        if self.rmttf_low_s < 0 or self.rmttf_high_s <= self.rmttf_low_s:
            raise ValueError(
                "need 0 <= rmttf_low_s < rmttf_high_s"
            )
        if self.cooldown_eras < 0:
            raise ValueError("cooldown_eras must be >= 0")
        if self.headroom_factor < 1.0:
            raise ValueError("headroom_factor must be >= 1")


class Autoscaler:
    """Per-region reactive scaling decisions.

    Stateless apart from per-region cooldown counters; the actual pool
    mutation happens through
    :meth:`repro.pcam.vmc.VirtualMachineController.set_target_active`.
    """

    def __init__(self, config: AutoscaleConfig | None = None) -> None:
        self.config = config or AutoscaleConfig()
        self._cooldown: dict[str, int] = {}
        self.scale_up_count = 0
        self.scale_down_count = 0
        self._rt_predictors: dict[str, ResponseTimePredictor] = {}
        self._era_s: float = 30.0

    def attach_rt_prediction(
        self,
        regions: dict[str, float],
        era_s: float,
        forgetting: float = 0.98,
    ) -> None:
        """Enable the Sec. V *predicted* response-time trigger.

        Parameters
        ----------
        regions:
            region name -> nominal per-VM capacity (requests/second); one
            online :class:`ResponseTimePredictor` is created per region.
        era_s:
            Control-era length, to turn served counts into rates.
        """
        if era_s <= 0:
            raise ValueError("era_s must be positive")
        self._era_s = float(era_s)
        self._rt_predictors = {
            region: ResponseTimePredictor(capacity, forgetting=forgetting)
            for region, capacity in regions.items()
        }

    def expected_rmttf_after(
        self, current_rmttf: float, n_active: int, delta: int
    ) -> float:
        """Mean-field expected RMTTF after changing the pool by ``delta``.

        RMTTF ~ n_active (per-VM load halves when the pool doubles), so the
        projection is ``rmttf * (n + delta) / n``.
        """
        if n_active < 1:
            raise ValueError("n_active must be >= 1")
        if n_active + delta < 1:
            raise ValueError("cannot scale below one active VM")
        return current_rmttf * (n_active + delta) / n_active

    def decide(
        self, vmc: VirtualMachineController, report: EraReport, rmttf: float
    ) -> int:
        """Return the pool delta (-1, 0, +1) for this region this era.

        Grow when either trigger fires and a STANDBY VM exists to absorb
        the growth; shrink only when RMTTF is high *and* response time has
        at least 2x headroom (never trade an SLA violation for savings).
        """
        cfg = self.config
        region = vmc.region_name

        # feed the online response-time model even during cooldown, so it
        # keeps learning the load curve
        predicted_violation = False
        predictor = self._rt_predictors.get(region)
        if predictor is not None and report.n_active >= 1:
            rate = report.requests_served / self._era_s
            predictor.observe(rate, report.n_active, report.response_time_s)
            predicted_violation = predictor.would_violate(
                rate * cfg.headroom_factor,
                report.n_active,
                cfg.response_time_threshold_s,
            )

        remaining = self._cooldown.get(region, 0)
        if remaining > 0:
            self._cooldown[region] = remaining - 1
            return 0

        n_active = report.n_active
        can_grow = report.n_standby > 0
        wants_grow = (
            report.response_time_s > cfg.response_time_threshold_s
            or predicted_violation
            or rmttf < cfg.rmttf_low_s
        )
        if wants_grow and can_grow:
            projected = self.expected_rmttf_after(rmttf, max(n_active, 1), +1)
            if projected > rmttf:  # always true; kept for the paper's
                self._cooldown[region] = cfg.cooldown_eras  # "evaluate" step
                self.scale_up_count += 1
                return +1

        wants_shrink = (
            rmttf > cfg.rmttf_high_s
            and report.response_time_s < cfg.response_time_threshold_s / 2
            and n_active > 1
        )
        if wants_shrink:
            projected = self.expected_rmttf_after(rmttf, n_active, -1)
            if projected > cfg.rmttf_low_s:
                self._cooldown[region] = cfg.cooldown_eras
                self.scale_down_count += 1
                return -1
        return 0

    def apply(
        self, vmc: VirtualMachineController, report: EraReport, rmttf: float
    ) -> int:
        """Decide and actuate; returns the applied delta."""
        delta = self.decide(vmc, report, rmttf)
        if delta != 0:
            vmc.set_target_active(vmc.target_active + delta)
        return delta
