"""The controller overlay network.

Sec. III: "the interconnection among the various controllers is actuated
via an overlay network, which selects the path with the smallest latency
among two given controllers, and is able to reroute connections in case of
a network link failure.  Among all the regions VMCs, a leader VMC is
automatically elected using the algorithm in [33], which has been shown to
be tolerant to multiple nodes and link failures."

* :mod:`repro.overlay.network` -- the latency-weighted overlay graph with
  link/node failure and repair;
* :mod:`repro.overlay.routing` -- smallest-latency path selection with
  rerouting around failures;
* :mod:`repro.overlay.election` -- failure-tolerant leader election (in the
  spirit of Avresky & Natchev's dynamic-reconfiguration algorithm);
* :mod:`repro.overlay.messaging` -- latency-accurate message delivery
  between controllers on top of the simulator.
"""

from repro.overlay.election import LeaderElection
from repro.overlay.heartbeat import HeartbeatDetector, build_detector_mesh
from repro.overlay.messaging import Message, MessageBus
from repro.overlay.network import OverlayNetwork
from repro.overlay.reliable import ChannelStats, ReliableChannel, SendHandle
from repro.overlay.state_sync import GossipSync, StateEntry, StateStore
from repro.overlay.routing import NoRouteError, Router

__all__ = [
    "ReliableChannel",
    "SendHandle",
    "ChannelStats",
    "OverlayNetwork",
    "Router",
    "NoRouteError",
    "LeaderElection",
    "HeartbeatDetector",
    "build_detector_mesh",
    "GossipSync",
    "StateStore",
    "StateEntry",
    "MessageBus",
    "Message",
]
