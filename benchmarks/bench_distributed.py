"""DIST -- the decentralised control plane's overhead and accuracy.

Figure 1 shows "commands / features / state / global system state" flowing
over the overlay.  This bench runs the full distributed composition
(heartbeat detectors + anti-entropy gossip + the MAPE loop) and measures:

* leader-view accuracy: how often the decentralised detector views agree
  with the oracle leader (should be ~always when healthy);
* state freshness: how stale any controller's view of any region gets;
* message cost: bus messages per control era (the overhead of running the
  protocols).
"""

from repro.core import AcmManager, RegionSpec
from repro.core.distributed import DistributedControlPlane


def build_plane(seed=61, **kw):
    mgr = AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", 6, 4, 128),
            RegionSpec("region2", "m3.small", 8, 6, 192),
            RegionSpec("region3", "private.small", 4, 3, 64),
        ],
        policy="available-resources",
        seed=seed,
    )
    return mgr, DistributedControlPlane(mgr.loop, **kw)


def test_distributed_plane_accuracy_and_cost(benchmark):
    mgr, plane = build_plane()
    reports = plane.run(40)
    agreement = plane.agreement_fraction()
    worst_staleness = max(r.max_staleness_eras for r in reports[5:])
    msgs_per_era = plane.bus.delivered_count / len(reports)
    print(
        f"\ndistributed control plane over {len(reports)} eras:\n"
        f"  leader-view agreement : {agreement:.2%}\n"
        f"  worst state staleness : {worst_staleness} eras\n"
        f"  bus messages per era  : {msgs_per_era:.1f}"
    )
    assert agreement > 0.9
    assert worst_staleness <= 3
    # 3 nodes x (2 heartbeats + ~1 gossip push) x (30s era / 5s period):
    # the protocol cost stays bounded
    assert msgs_per_era < 60

    def unit():
        m, p = build_plane()
        p.run(5)
        return p

    benchmark(unit)


def test_distributed_leader_failover_latency(benchmark):
    """After the leader crashes, detector views re-converge within the
    detector timeout (15 s < one 30 s era)."""
    mgr, plane = build_plane(heartbeat_period_s=5.0, detector_timeout_s=15.0)
    plane.run(8)
    mgr.loop.overlay.fail_node("region1")
    mgr.loop.router.invalidate()
    plane.detectors["region1"].stop()
    reports = plane.run(2)
    last = reports[-1]
    assert all(
        leader == "region2" for leader in last.detector_leaders.values()
    )
    print(
        "\nfailover: all survivor views switched to region2 within "
        f"{(len(reports)) * mgr.loop.config.era_s:.0f}s of the crash"
    )

    def unit():
        m, p = build_plane()
        p.run(3)
        return p

    benchmark(unit)
