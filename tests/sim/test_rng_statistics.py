"""Statistical quality tests for the named RNG streams.

Determinism is tested elsewhere; these tests check that distinct streams
are statistically *independent* and individually uniform -- the property
that justifies giving every VM its own anomaly stream.
"""

import numpy as np
from scipy import stats

from repro.sim import RngRegistry


def test_streams_uncorrelated():
    r = RngRegistry(seed=123)
    a = r.stream("alpha").random(20_000)
    b = r.stream("beta").random(20_000)
    corr = np.corrcoef(a, b)[0, 1]
    assert abs(corr) < 0.02


def test_child_registries_uncorrelated():
    root = RngRegistry(seed=123)
    a = root.child("region1").stream("anomalies").random(20_000)
    b = root.child("region2").stream("anomalies").random(20_000)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.02


def test_stream_uniformity_chi_square():
    r = RngRegistry(seed=7)
    x = r.stream("uniformity").random(50_000)
    counts, _ = np.histogram(x, bins=20, range=(0.0, 1.0))
    chi2, p = stats.chisquare(counts)
    assert p > 0.001  # not detectably non-uniform


def test_lagged_autocorrelation_small():
    r = RngRegistry(seed=11)
    x = r.stream("auto").random(50_000)
    x = x - x.mean()
    for lag in (1, 2, 7):
        ac = float(np.dot(x[:-lag], x[lag:]) / np.dot(x, x))
        assert abs(ac) < 0.02, lag


def test_similar_names_give_distinct_streams():
    """Name hashing must separate near-identical names (vm1 vs vm10)."""
    r = RngRegistry(seed=3)
    draws = {
        name: tuple(r.fresh(name).integers(0, 2**31, 8))
        for name in ("vm1", "vm10", "vm11", "vm1 ", "Vm1")
    }
    values = list(draws.values())
    assert len(set(values)) == len(values)


def test_exponential_sampling_moments():
    """Workload think-time draws have the right first two moments."""
    r = RngRegistry(seed=17)
    x = r.stream("think").exponential(7.0, size=100_000)
    assert abs(x.mean() - 7.0) / 7.0 < 0.02
    assert abs(x.std() - 7.0) / 7.0 < 0.02
