"""The glue between a policy head and the ACM control loop.

:class:`PolicyHeadRuntime` owns everything head-related that happens
inside one deployment run, so :class:`~repro.core.control_loop
.AcmControlLoop` only grows two duck-typed calls:

* ``plan(...)`` at the Plan step (``normal`` mode only) -- builds the
  per-region :class:`~repro.policy.features.PolicyObservation`, asks the
  head for an action, applies the rejuvenation-threshold deltas to each
  region's discipline, and zeroes dead regions through the same
  :func:`~repro.core.policy.renormalize_live` helper the serve path
  uses;
* ``settle(...)`` after the era's bookkeeping -- charges the era's cost
  (:class:`~repro.core.cost.CostTracker`), computes the shared reward

  ``reward = availability - lambda_cost * $/kreq - mu_slo * SLO-violation``

  feeds it to the head (train mode) and to the
  :class:`~repro.policy.guard.RewardGuard` (when configured), and emits
  ``policy_*`` telemetry.  Everything is bit-invisible when telemetry is
  disabled, and the entire runtime is absent (``None``) in plain runs --
  the golden-trace guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import CostTracker
from repro.core.policy import renormalize_live
from repro.pcam.rejuvenation import RttfThresholdRejuvenation
from repro.policy.features import PolicyObservation, region_features
from repro.policy.guard import RewardGuard
from repro.policy.heads import PolicyAction, PolicyHead


class RewardConfig:
    """Weights of the per-era reward (see module docstring).

    ``lambda_cost`` multiplies the deployment's dollars per *thousand*
    served requests (the natural per-era scale of the paper's testbed:
    around $0.01-0.05/kreq); ``mu_slo`` multiplies the clipped relative
    SLA excess ``min(max(rt/sla - 1, 0), 1)``.
    """

    def __init__(
        self,
        lambda_cost: float = 1.0,
        mu_slo: float = 0.5,
        sla_s: float = 1.0,
    ) -> None:
        if sla_s <= 0:
            raise ValueError("sla_s must be positive")
        self.lambda_cost = float(lambda_cost)
        self.mu_slo = float(mu_slo)
        self.sla_s = float(sla_s)

    def as_dict(self) -> dict:
        return {
            "lambda_cost": self.lambda_cost,
            "mu_slo": self.mu_slo,
            "sla_s": self.sla_s,
        }


class PolicyHeadRuntime:
    """Per-run head state machine bound to one control loop."""

    def __init__(
        self,
        head: PolicyHead,
        reward: RewardConfig | None = None,
        guard: RewardGuard | None = None,
    ) -> None:
        self.head = head
        self.reward_cfg = reward or RewardConfig()
        self.guard = guard
        self.loop = None
        #: Per-era shared rewards, availability, and cost (for payloads).
        self.rewards: list[float] = []
        self.availability: list[float] = []
        self.threshold_deltas: list[float] = []
        self._action: PolicyAction | None = None
        self._last_cost_per_kreq: np.ndarray | None = None
        self._fallback_announced = False

    # ------------------------------------------------------------------ #

    def bind(self, loop) -> None:
        """Attach to a control loop (called from the loop's ``__init__``)."""
        self.loop = loop
        self.cost = CostTracker()
        self.regions: list[str] = loop.regions
        n = len(self.regions)
        self._targets = np.array(
            [max(loop.vmcs[r].target_active, 1) for r in self.regions],
            dtype=float,
        )
        self._pool_sizes = [len(loop.vmcs[r].vms) for r in self.regions]
        self._base_thresholds: dict[str, float] = {}
        for r in self.regions:
            disc = loop.vmcs[r].discipline
            if isinstance(disc, RttfThresholdRejuvenation):
                self._base_thresholds[r] = disc.threshold_s
        self._last_cost_per_kreq = np.zeros(n)
        self._tel = loop._tel
        self._obs_on = loop._obs_on

    @property
    def fallback_engaged(self) -> bool:
        """True once the reward guard has tripped (sticky)."""
        return self.guard is not None and self.guard.engaged

    # ------------------------------------------------------------------ #

    def plan(
        self,
        *,
        era: int,
        prev_fractions: np.ndarray,
        rmttf: np.ndarray,
        global_rate: float,
        reports: dict,
        per_region_rt: dict[str, float],
    ) -> np.ndarray:
        """The head-driven Plan step; returns the planned fractions."""
        loop = self.loop
        total_served = max(
            sum(reports[r].requests_served for r in self.regions), 1
        )
        rows = []
        for j, r in enumerate(self.regions):
            rep = reports[r]
            vmc = loop.vmcs[r]
            rows.append(
                region_features(
                    rmttf_s=float(rmttf[j]),
                    fraction=float(prev_fractions[j]),
                    load_share=rep.requests_served / total_served,
                    failures=rep.failures,
                    rejuvenations=rep.rejuvenations_triggered,
                    n_vms=self._pool_sizes[j],
                    response_time_s=per_region_rt[r],
                    sla_s=self.reward_cfg.sla_s,
                    total_capacity=vmc.total_capacity(),
                    healthy_capacity=vmc.healthy_capacity(),
                    cost_per_kreq=float(self._last_cost_per_kreq[j]),
                )
            )
        obs = PolicyObservation(
            regions=tuple(self.regions),
            features=np.stack(rows),
            prev_fractions=np.asarray(prev_fractions, dtype=float),
            rmttf=np.asarray(rmttf, dtype=float),
            global_rate=float(global_rate),
        )
        action = self.head.act(obs)
        self._action = action
        self._apply_thresholds(action)
        planned = action.fractions
        alive = np.array(
            [loop.overlay.is_alive(r) for r in self.regions], dtype=bool
        )
        if not alive.all():
            live = renormalize_live(planned, alive)
            if live is not None:
                planned = live
        if self._obs_on:
            for j, r in enumerate(self.regions):
                self._tel.gauge("policy_threshold_delta_s", region=r).set(
                    float(action.threshold_deltas[j])
                )
        return planned

    def _apply_thresholds(self, action: PolicyAction) -> None:
        for j, r in enumerate(self.regions):
            base = self._base_thresholds.get(r)
            if base is None:
                continue  # non-threshold discipline: delta has no target
            disc = self.loop.vmcs[r].discipline
            disc.threshold_s = max(0.0, base + float(action.threshold_deltas[j]))
        self.threshold_deltas.append(
            float(np.mean(action.threshold_deltas))
        )

    # ------------------------------------------------------------------ #

    def settle(self, summary, reports: dict, dt_s: float) -> float:
        """Era epilogue: cost, reward, learning, guard, telemetry."""
        cfg = self.reward_cfg
        era_usd = 0.0
        for j, r in enumerate(self.regions):
            rep = reports[r]
            charge = self.cost.charge_era(
                self.loop.vmcs[r], dt_s, requests_served=rep.requests_served
            )
            era_usd += charge
            self._last_cost_per_kreq[j] = (
                charge / max(rep.requests_served, 1) * 1000.0
            )
        availability = float(
            np.mean(
                np.minimum(
                    np.array(
                        [reports[r].n_active for r in self.regions],
                        dtype=float,
                    )
                    / self._targets,
                    1.0,
                )
            )
        )
        total_requests = max(summary.total_requests, 1)
        cost_per_kreq = era_usd / total_requests * 1000.0
        slo_violation = min(
            max(summary.response_time_s / cfg.sla_s - 1.0, 0.0), 1.0
        )
        reward = (
            availability
            - cfg.lambda_cost * cost_per_kreq
            - cfg.mu_slo * slo_violation
        )
        self.rewards.append(reward)
        self.availability.append(availability)
        self.head.observe_reward(reward)
        if self.guard is not None:
            engaged = self.guard.observe(reward)
            if engaged and not self._fallback_announced:
                self._fallback_announced = True
                # hand the disciplines back their configured thresholds:
                # the static fallback policy must run the paper's PCAM
                for r, base in self._base_thresholds.items():
                    self.loop.vmcs[r].discipline.threshold_s = base
                if self._obs_on:
                    self._tel.counter("policy_fallbacks_total").inc()
                    self._tel.event(
                        "policy.fallback_engaged",
                        era=summary.era,
                        head=self.head.name,
                        reward=reward,
                        baseline=self.guard.baseline,
                    )
        if self._obs_on:
            self._tel.gauge("policy_reward").set(reward)
            self._tel.gauge("policy_availability").set(availability)
            self._tel.counter("policy_eras_total").inc()
        return reward

    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Run-level summary for payloads and reports (JSON-able)."""
        return {
            "head": self.head.name,
            "eras": len(self.rewards),
            "mean_reward": (
                float(np.mean(self.rewards)) if self.rewards else 0.0
            ),
            "availability": (
                float(np.mean(self.availability))
                if self.availability
                else 0.0
            ),
            "cost_usd": float(self.cost.total_usd),
            "cost_per_mreq": (
                float(self.cost.cost_per_million_requests())
                if self.cost.requests_served
                else 0.0
            ),
            "mean_threshold_delta_s": (
                float(np.mean(self.threshold_deltas))
                if self.threshold_deltas
                else 0.0
            ),
            "fallback_engaged": self.fallback_engaged,
        }
