"""Differential parity harness: scalar vs columnar VM state.

The columnar :class:`~repro.pcam.state_table.VmStateTable` path was built
against one contract: *same seed -> bit-identical behaviour* with the
per-VM-object reference implementation.  This module is the harness that
enforces it.  Every test builds two deployments from identically-seeded
RNG registries -- one with ``columnar=False`` (the scalar reference), one
with ``columnar=True`` -- drives both through the same scenario, and
compares era reports, per-VM mutable state, capacities and traces
**exactly** (``==`` on floats, no tolerance).

A divergence here is a bookkeeping bug in one of the two paths, not noise:
both paths consume the same RNG streams in the same order, so any drift
means an operation was reordered, an accumulation changed its numeric
association, or per-VM state leaked across slots.  The fuzz driver at the
bottom sweeps randomized scenarios (pool mix, predictor, discipline,
balancer, churn and crash storms) to flush out exactly that class of bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.predictor import CorruptiblePredictor
from repro.pcam import (
    ConservativeRttfPredictor,
    LocalBalancer,
    NoRejuvenation,
    OracleRttfPredictor,
    PeriodicRejuvenation,
    TrainedRttfPredictor,
    TrendAwareRttfPredictor,
    VirtualMachine,
    VirtualMachineController,
    VmcConfig,
    VmState,
)
from repro.sim import M3_MEDIUM, PRIVATE_SMALL, RngRegistry
from repro.workload import AnomalyInjector

#: Per-VM fields that must stay bit-identical between the two paths.
MUTABLE_FIELDS = (
    "leaked_mb",
    "stuck_threads",
    "uptime_s",
    "last_request_rate",
    "last_response_time_s",
    "total_requests",
    "rejuvenation_count",
    "failure_count",
)


class _LinModel:
    """Deterministic stand-in for a trained F2PM model.

    A fixed linear read-out over the feature row -- enough to make the
    predicted RTTF depend on the columnar feature extraction, so any
    feature-matrix divergence surfaces as a prediction divergence.
    """

    def predict(self, rows):
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        return 900.0 - 0.5 * rows[:, 1] - 4.0 * rows[:, 6] - 0.2 * rows[:, 0]

    def predict_one(self, row):
        return float(self.predict(row)[0])


def _pool(rngs: RngRegistry, n: int, mixer, **vm_kw) -> list[VirtualMachine]:
    return [
        VirtualMachine(
            f"vm{i:03d}",
            M3_MEDIUM if mixer(i) else PRIVATE_SMALL,
            AnomalyInjector(rngs.child(f"vm{i:03d}").stream("a")),
            **vm_kw,
        )
        for i in range(n)
    ]


def _snapshot(vm: VirtualMachine) -> dict:
    state = {name: getattr(vm, name) for name in MUTABLE_FIELDS}
    state["state"] = vm.state
    return state


def _assert_pools_equal(
    scalar: VirtualMachineController,
    columnar: VirtualMachineController,
    era: int,
) -> None:
    assert [vm.name for vm in scalar.vms] == [vm.name for vm in columnar.vms]
    for s_vm, c_vm in zip(scalar.vms, columnar.vms):
        s_snap, c_snap = _snapshot(s_vm), _snapshot(c_vm)
        assert s_snap == c_snap, (
            f"era {era}: VM {s_vm.name} diverged: {s_snap} != {c_snap}"
        )
    assert scalar.total_capacity() == columnar.total_capacity()
    assert scalar.healthy_capacity() == columnar.healthy_capacity()
    assert scalar.stats() == columnar.stats()


def _make_pair(seed: int, n_vms: int, build):
    """Build (scalar, columnar) VMCs from identically-seeded registries."""
    out = []
    for columnar in (False, True):
        rngs = RngRegistry(seed=seed)
        vms = _pool(rngs, n_vms, lambda i: i % 2 == 0)
        out.append(build(rngs, vms, columnar))
    return out[0], out[1]


# --------------------------------------------------------------------- #
# steady-state parity
# --------------------------------------------------------------------- #


def test_vmc_era_parity_oracle():
    """60 high-load eras with failures + rejuvenations stay bit-identical."""

    def build(rngs, vms, columnar):
        return VirtualMachineController(
            "r1",
            vms,
            OracleRttfPredictor(),
            VmcConfig(target_active=4, columnar=columnar),
        )

    scalar, columnar = _make_pair(7, 8, build)
    for era in range(60):
        rep_s = scalar.process_era(4000, 30.0, era * 30.0)
        rep_c = columnar.process_era(4000, 30.0, era * 30.0)
        assert rep_s == rep_c, f"era {era}: {rep_s} != {rep_c}"
        _assert_pools_equal(scalar, columnar, era)
    # the scenario must actually exercise the lifecycle machinery
    assert scalar.total_rejuvenations > 0
    assert scalar.total_failures > 0


@pytest.mark.parametrize(
    "predictor_kind",
    ["trained", "trend", "conservative", "corruptible", "corruptible-stale"],
)
def test_vmc_era_parity_predictor_variants(predictor_kind):
    """Every predictor stack sees identical features on both paths."""

    def make_predictor():
        if predictor_kind == "trained":
            return TrainedRttfPredictor(_LinModel(), floor_s=5.0)
        if predictor_kind == "trend":
            return TrendAwareRttfPredictor(_LinModel(), window=3)
        if predictor_kind == "conservative":
            return ConservativeRttfPredictor(
                TrainedRttfPredictor(_LinModel()), margin=0.7
            )
        inner = TrainedRttfPredictor(_LinModel(), floor_s=5.0)
        mode = "stale" if predictor_kind.endswith("stale") else "off"
        return CorruptiblePredictor(inner, mode=mode)

    def build(rngs, vms, columnar):
        return VirtualMachineController(
            "r1",
            vms,
            make_predictor(),
            VmcConfig(
                target_active=3, rttf_threshold_s=400.0, columnar=columnar
            ),
        )

    scalar, columnar = _make_pair(11, 6, build)
    for era in range(40):
        rep_s = scalar.process_era(3000, 30.0, era * 30.0)
        rep_c = columnar.process_era(3000, 30.0, era * 30.0)
        assert rep_s == rep_c, f"era {era}: {predictor_kind} diverged"
        _assert_pools_equal(scalar, columnar, era)


@pytest.mark.parametrize("kind", ["periodic", "none"])
def test_vmc_era_parity_disciplines(kind):
    """Periodic/no-rejuvenation disciplines vectorise identically."""
    disc = (
        PeriodicRejuvenation(period_s=150.0)
        if kind == "periodic"
        else NoRejuvenation()
    )

    def build(rngs, vms, columnar):
        return VirtualMachineController(
            "r1",
            vms,
            OracleRttfPredictor(),
            VmcConfig(target_active=3, columnar=columnar),
            discipline=disc,
        )

    scalar, columnar = _make_pair(13, 6, build)
    for era in range(40):
        rep_s = scalar.process_era(2500, 30.0, era * 30.0)
        rep_c = columnar.process_era(2500, 30.0, era * 30.0)
        assert rep_s == rep_c
        _assert_pools_equal(scalar, columnar, era)


@pytest.mark.parametrize("discipline", ["uniform", "capacity"])
@pytest.mark.parametrize("stochastic", [False, True])
def test_vmc_era_parity_balancers(discipline, stochastic):
    """Both balancer disciplines, deterministic and multinomial splits."""

    def build(rngs, vms, columnar):
        rng = rngs.child("bal").stream("split") if stochastic else None
        return VirtualMachineController(
            "r1",
            vms,
            OracleRttfPredictor(),
            VmcConfig(target_active=3, columnar=columnar),
            balancer=LocalBalancer(discipline, rng=rng),
        )

    scalar, columnar = _make_pair(17, 6, build)
    for era in range(30):
        rep_s = scalar.process_era(2000, 30.0, era * 30.0)
        rep_c = columnar.process_era(2000, 30.0, era * 30.0)
        assert rep_s == rep_c
        _assert_pools_equal(scalar, columnar, era)


# --------------------------------------------------------------------- #
# churn + chaos parity
# --------------------------------------------------------------------- #


def _fail_by_name(vmc: VirtualMachineController, names: list[str]) -> None:
    by_name = {vm.name: vm for vm in vmc.vms}
    for name in names:
        by_name[name].fail()


def test_vmc_parity_under_chaos_and_churn():
    """Crash storms, autoscaling and add/remove churn stay in lockstep.

    The scripted events mirror what a chaos campaign does, applied
    symmetrically to both pools; the columnar side also compacts its
    table mid-run, which must be invisible to behaviour.
    """

    def build(rngs, vms, columnar):
        return VirtualMachineController(
            "r1",
            vms,
            OracleRttfPredictor(),
            VmcConfig(target_active=4, columnar=columnar),
        )

    scalar, columnar = _make_pair(23, 8, build)
    storm_rng = np.random.default_rng(23)
    added = 0
    for era in range(50):
        if era % 9 == 4:  # crash storm: fail ~half the ACTIVE pool
            active = sorted(
                vm.name for vm in scalar.vms_in(VmState.ACTIVE)
            )
            if active:
                k = max(1, len(active) // 2)
                picks = storm_rng.choice(
                    len(active), size=k, replace=False
                )
                victims = [active[i] for i in sorted(int(i) for i in picks)]
                _fail_by_name(scalar, victims)
                _fail_by_name(columnar, victims)
        if era % 11 == 7:  # autoscale up/down
            target = 3 if scalar.target_active == 4 else 4
            scalar.set_target_active(target)
            columnar.set_target_active(target)
        if era % 13 == 6:  # provision a fresh standby into both pools
            added += 1
            for vmc, seed_tag in ((scalar, "s"), (columnar, "c")):
                # per-pool registry children would diverge; give the pair
                # identically-seeded injectors instead
                rng = np.random.default_rng(1000 + added)
                vmc.add_vm(
                    VirtualMachine(
                        f"new{added:02d}",
                        PRIVATE_SMALL,
                        AnomalyInjector(rng),
                    )
                )
        if era % 17 == 15:  # decommission a non-ACTIVE VM, if any
            removable = [
                vm.name
                for vm in scalar.vms
                if vm.state is not VmState.ACTIVE
            ]
            if removable:
                scalar.remove_vm(removable[0])
                columnar.remove_vm(removable[0])
        if era % 19 == 10:
            columnar.compact_table()

        rep_s = scalar.process_era(4000, 30.0, era * 30.0)
        rep_c = columnar.process_era(4000, 30.0, era * 30.0)
        assert rep_s == rep_c, f"era {era}: {rep_s} != {rep_c}"
        _assert_pools_equal(scalar, columnar, era)
    assert added > 0 and scalar.total_failures > 0


# --------------------------------------------------------------------- #
# seeded fuzz driver
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(6))
def test_vmc_parity_fuzz(seed):
    """Randomized scenario sweep; any drift is a real bookkeeping bug."""
    fuzz = np.random.default_rng(seed)
    n_vms = int(fuzz.integers(3, 11))
    target = int(fuzz.integers(1, n_vms + 1))
    rejuvenation_time_s = float(fuzz.choice([0.0, 45.0, 120.0]))
    threshold_s = float(fuzz.choice([120.0, 240.0, 500.0]))
    discipline = fuzz.choice(["threshold", "periodic", "none"])
    balancer_kind = fuzz.choice(["capacity", "uniform"])
    predictor_kind = fuzz.choice(["oracle", "trained", "trend"])
    n_eras = int(fuzz.integers(25, 60))
    loads = fuzz.integers(0, 6000, size=n_eras)
    storm_eras = set(
        int(e) for e in fuzz.choice(n_eras, size=3, replace=False)
    )
    storm_rng = np.random.default_rng(seed + 7919)

    def build(rngs, vms, columnar):
        if predictor_kind == "trained":
            predictor = TrainedRttfPredictor(_LinModel(), floor_s=1.0)
        elif predictor_kind == "trend":
            predictor = TrendAwareRttfPredictor(_LinModel(), window=4)
        else:
            predictor = OracleRttfPredictor()
        disc = None
        if discipline == "periodic":
            disc = PeriodicRejuvenation(period_s=200.0)
        elif discipline == "none":
            disc = NoRejuvenation()
        return VirtualMachineController(
            "fuzz",
            vms,
            predictor,
            VmcConfig(
                rttf_threshold_s=threshold_s,
                target_active=target,
                columnar=columnar,
            ),
            balancer=LocalBalancer(balancer_kind),
            discipline=disc,
        )

    def make(columnar):
        rngs = RngRegistry(seed=seed * 31 + 5)
        vms = _pool(
            rngs,
            n_vms,
            lambda i: i % 3 != 0,
            rejuvenation_time_s=rejuvenation_time_s,
        )
        return build(rngs, vms, columnar)

    scalar, columnar = make(False), make(True)
    for era in range(n_eras):
        if era in storm_eras:
            active = sorted(
                vm.name for vm in scalar.vms_in(VmState.ACTIVE)
            )
            if active:
                k = int(storm_rng.integers(1, len(active) + 1))
                picks = storm_rng.choice(len(active), size=k, replace=False)
                victims = [active[i] for i in sorted(int(i) for i in picks)]
                _fail_by_name(scalar, victims)
                _fail_by_name(columnar, victims)
        rep_s = scalar.process_era(int(loads[era]), 30.0, era * 30.0)
        rep_c = columnar.process_era(int(loads[era]), 30.0, era * 30.0)
        assert rep_s == rep_c, (
            f"seed {seed} era {era}: scenario "
            f"(n={n_vms} t={target} {predictor_kind}/{discipline}/"
            f"{balancer_kind}) diverged"
        )
        _assert_pools_equal(scalar, columnar, era)


# --------------------------------------------------------------------- #
# request-granular layers: DES region and DES control loop
# --------------------------------------------------------------------- #


def _build_des_region(seed: int, columnar: bool):
    from repro.pcam import DesRegion
    from repro.sim.engine import Simulator
    from repro.workload import BrowserPopulation

    rngs = RngRegistry(seed=seed)
    vms = _pool(rngs, 5, lambda i: i % 2 == 0)
    for vm in vms[:3]:
        vm.activate()
    sim = Simulator()
    region = DesRegion(
        sim,
        vms,
        BrowserPopulation(n_clients=60),
        rngs.child("des").stream("events"),
        columnar=columnar,
    )
    return region


def test_des_region_parity():
    """Request-granular DES: JSQ picks, completions and failures match."""
    scalar = _build_des_region(3, columnar=False)
    columnar = _build_des_region(3, columnar=True)
    for _ in range(3):  # repeated run() calls share cumulative stats
        stats_s = scalar.run(60.0)
        stats_c = columnar.run(60.0)
        assert stats_s.completed == stats_c.completed
        assert stats_s.dropped == stats_c.dropped
        assert stats_s.response_times == stats_c.response_times
        for s_vm, c_vm in zip(scalar.vms, columnar.vms):
            assert _snapshot(s_vm) == _snapshot(c_vm)
    assert scalar.stats.completed > 0


def _build_des_loop(seed: int, columnar: bool):
    from repro.core import get_policy
    from repro.core.des_loop import DesControlLoop
    from repro.workload import BrowserPopulation

    rngs = RngRegistry(seed=seed)

    def pool(region, itype, n):
        return [
            VirtualMachine(
                f"{region}/vm{i}",
                itype,
                AnomalyInjector(rngs.child(f"{region}{i}").stream("a")),
            )
            for i in range(n)
        ]

    regions = {
        "r1": (pool("r1", M3_MEDIUM, 6), BrowserPopulation(n_clients=120), 4),
        "r3": (pool("r3", PRIVATE_SMALL, 4), BrowserPopulation(n_clients=72), 3),
    }
    return DesControlLoop(
        regions,
        get_policy("available-resources"),
        OracleRttfPredictor(),
        rngs,
        columnar=columnar,
    )


def test_des_loop_parity():
    """Full request-level MAPE loop: every trace series stays identical."""
    scalar = _build_des_loop(9, columnar=False)
    columnar = _build_des_loop(9, columnar=True)
    scalar.run(8)
    columnar.run(8)
    s_series = scalar.traces.matching("")
    c_series = columnar.traces.matching("")
    assert sorted(s_series) == sorted(c_series)
    for name in s_series:
        assert list(s_series[name].times) == list(c_series[name].times), name
        assert list(s_series[name].values) == list(c_series[name].values), name
    assert scalar.total_rejuvenations == columnar.total_rejuvenations
    assert scalar.total_failures == columnar.total_failures
    for region in scalar.region_names:
        s_state = scalar._states[region]
        c_state = columnar._states[region]
        assert list(s_state.life) == list(c_state.life)
        assert s_state.active_slots == c_state.active_slots
        for s_vm, c_vm in zip(s_state.vms, c_state.vms):
            assert _snapshot(s_vm) == _snapshot(c_vm)
