"""Tests for derived trend features."""

import numpy as np
import pytest

from repro.ml.derived import (
    augment_runs_with_slopes,
    derived_feature_names,
    slope_features,
)
from repro.ml import LinearRegression


class TestSlopeFeatures:
    def test_constant_series_zero_slope(self):
        t = np.arange(10.0)
        X = np.full((10, 2), 5.0)
        s = slope_features(t, X)
        assert np.allclose(s, 0.0)

    def test_linear_series_recovers_rate(self):
        t = np.arange(10.0) * 2.0  # dt = 2
        X = (3.0 * t).reshape(-1, 1)  # slope 3 in time units
        s = slope_features(t, X, window=4)
        assert np.allclose(s[4:], 3.0)

    def test_first_sample_slope_zero(self):
        t = np.arange(5.0)
        X = np.random.default_rng(0).normal(size=(5, 3))
        s = slope_features(t, X)
        assert np.allclose(s[0], 0.0)

    def test_window_shorter_history_used_at_start(self):
        t = np.arange(5.0)
        X = t.reshape(-1, 1) ** 2  # accelerating
        s = slope_features(t, X, window=3)
        # sample 1 uses window 1: slope = (1-0)/1 = 1
        assert s[1, 0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            slope_features(np.arange(3.0), np.zeros((4, 1)))
        with pytest.raises(ValueError, match="window"):
            slope_features(np.arange(3.0), np.zeros((3, 1)), window=0)


class TestAugmentedDataset:
    def make_runs(self, n_runs=3, k=30):
        rng = np.random.default_rng(1)
        runs = []
        for _ in range(n_runs):
            times = np.arange(k) * 10.0
            leak_rate = rng.uniform(0.5, 2.0)
            feats = np.column_stack(
                [leak_rate * times, rng.normal(size=k)]
            )
            failure = float(times[-1] + 10.0)
            runs.append((times, feats, failure))
        return runs

    def test_schema_doubles(self):
        ds = augment_runs_with_slopes(self.make_runs(), ("mem", "noise"))
        assert ds.feature_names == ("mem", "noise", "slope:mem", "slope:noise")
        assert ds.n_features == 4

    def test_names_helper(self):
        assert derived_feature_names(("a",)) == ("a", "slope:a")

    def test_slopes_improve_prediction_when_rate_varies(self):
        """RTTF depends on the *leak rate*, which only the slope sees."""
        rng = np.random.default_rng(2)
        runs = []
        for _ in range(24):
            leak_rate = rng.uniform(0.5, 4.0)
            budget = 1000.0
            t_fail = budget / leak_rate
            times = np.linspace(0, t_fail * 0.95, 25)
            feats = np.column_stack(
                [leak_rate * times, rng.normal(size=25)]
            )
            runs.append((times, feats, t_fail))
        from repro.ml.dataset import Dataset

        plain = Dataset.from_run_traces(runs, ("mem", "noise"))
        rich = augment_runs_with_slopes(runs, ("mem", "noise"))
        m_plain = LinearRegression().fit(plain.X, plain.y)
        m_rich = LinearRegression().fit(rich.X, rich.y)
        err_plain = np.std(plain.y - m_plain.predict(plain.X))
        err_rich = np.std(rich.y - m_rich.predict(rich.X))
        assert err_rich < err_plain

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            augment_runs_with_slopes([], ("a",))
