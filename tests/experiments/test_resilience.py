"""Acceptance tests for the resilience campaign suite (``repro chaos``)."""

import math

import pytest

from repro.cli import CHAOS_CAMPAIGNS, main
from repro.experiments.resilience import (
    CAMPAIGNS,
    recovery_bound_eras,
    report_campaign,
    run_campaign,
)


class TestRegistry:
    def test_expected_campaigns_registered(self):
        assert set(CAMPAIGNS) == {
            "rolling-link-flaps",
            "message-loss",
            "leader-kill",
            "blackout-heal",
            "rack-blackout-flashcrowd",
            "az-partition",
            "smoke",
        }

    def test_cli_choices_match_registry(self):
        assert set(CHAOS_CAMPAIGNS) == set(CAMPAIGNS)

    def test_unknown_campaign_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            run_campaign("nope")
        with pytest.raises(ValueError, match="at least 4"):
            run_campaign("smoke", eras=2)


class TestSmoke:
    def test_smoke_recovers(self):
        result = run_campaign("smoke", seed=7)
        assert result.recovered
        assert result.message_stats["sent"] > 0
        assert result.message_stats["chaos_dropped"] > 0
        assert len(result.fault_log) == 4

    def test_report_renders(self):
        result = run_campaign("smoke", seed=7)
        text = report_campaign(result)
        assert "recovered: YES" in text
        assert "campaign : smoke" in text
        assert "MTTR" in text


class TestReplay:
    def test_seeded_campaign_replays_bit_identically(self):
        """Same campaign + same seed => same fault schedule, same
        degradation timeline, same message telemetry, same final mix."""
        a = run_campaign("leader-kill", eras=20, seed=11)
        b = run_campaign("leader-kill", eras=20, seed=11)
        assert a.fault_log == b.fault_log
        assert a.degradation == b.degradation
        assert a.leaders == b.leaders
        assert a.healthy == b.healthy
        assert a.message_stats == b.message_stats
        assert a.final_fractions == b.final_fractions

    def test_different_seeds_differ(self):
        a = run_campaign("message-loss", eras=12, seed=11)
        b = run_campaign("message-loss", eras=12, seed=12)
        # the scripted schedule is seed-independent ...
        assert [e.kind for e in a.fault_log] == [
            e.kind for e in b.fault_log
        ]
        # ... but the stochastic loss pattern is not
        assert a.message_stats != b.message_stats


class TestCampaignBehaviour:
    def test_rolling_flaps_are_fully_masked(self):
        """A full mesh reroutes around any single link failure."""
        result = run_campaign("rolling-link-flaps", eras=24, seed=7)
        assert result.availability == 1.0
        assert result.degraded_eras == 0
        assert any(e.kind == "fail_link" for e in result.fault_log)

    def test_message_loss_is_masked_by_retries(self):
        result = run_campaign("message-loss", seed=7)
        stats = result.message_stats
        assert stats["chaos_dropped"] > 0
        assert stats["retries"] > 0
        assert stats["acked"] > 0.8 * stats["sent"]
        assert result.degraded_eras <= 3
        assert result.recovered

    def test_leader_kill_recovers_within_documented_bound(self):
        """After the leader dies (under 30% loss), the surviving regions
        re-elect and resume normal planning within the detector bound."""
        result = run_campaign("leader-kill", seed=7)
        kill_era = next(
            era
            for era, kinds in result.era_faults.items()
            if "crash_node" in kinds
        )
        bound = recovery_bound_eras(era_s=result.era_s)
        window = range(kill_era + 1, kill_era + 1 + bound)
        assert any(
            result.views_agree[e]
            and result.degradation[e] == "normal"
            for e in window
        ), (
            f"control plane did not re-converge within {bound} eras: "
            f"agree={[result.views_agree[e] for e in window]} "
            f"modes={[result.degradation[e] for e in window]}"
        )
        # leadership moved off the dead node and the run ends recovered
        assert result.leaders[kill_era + 1] != "region1"
        assert result.recovered
        # fractions stay a valid mix throughout the outage
        assert sum(result.final_fractions.values()) == pytest.approx(1.0)

    def test_blackout_heal_reports_unavailability_and_mttr(self):
        result = run_campaign("blackout-heal", seed=7)
        assert result.unavailability_windows
        assert result.unavailable_eras > 0
        assert math.isfinite(result.mttr_s) and result.mttr_s > 0
        assert result.recovered
        dark_era = next(
            era
            for era, kinds in result.era_faults.items()
            if "region_blackout" in kinds
        )
        assert not result.healthy[dark_era]


class TestHierarchicalCampaigns:
    def test_rack_blackout_flashcrowd_reports_domains(self):
        result = run_campaign("rack-blackout-flashcrowd", seed=7)
        assert result.recovered
        kinds = [e.kind for e in result.fault_log]
        assert "flash_crowd" in kinds
        assert "rack_power_loss" in kinds
        assert "domain_heal" in kinds
        assert "flash_crowd_end" in kinds
        # per-domain availability covers the whole hierarchy
        assert result.domain_availability["region1"] == 1.0
        assert "region1/az0/rack0" in result.domain_availability
        assert result.domain_faults == {"region1/az0/rack0": 1}
        text = report_campaign(result)
        assert "domains  :" in text
        assert "anti-affinity" in text

    def test_az_partition_recovers_and_tracks_the_az(self):
        result = run_campaign("az-partition", seed=7)
        assert result.recovered
        kinds = [e.kind for e in result.fault_log]
        assert kinds.count("az_partition") == 1
        assert kinds.count("az_heal") == 1
        assert result.domain_faults == {"region2/az1": 1}
        # region-level service never dropped: the other AZ kept serving
        assert result.domain_availability["region2"] == 1.0

    def test_flat_campaigns_report_no_domains(self):
        result = run_campaign("smoke", seed=7)
        assert result.domain_availability == {}
        assert result.domain_faults == {}
        assert result.spread_deferrals == 0
        assert "domains  :" not in report_campaign(result)

    def test_hierarchical_campaign_replays_bit_identically(self):
        a = run_campaign("rack-blackout-flashcrowd", seed=13)
        b = run_campaign("rack-blackout-flashcrowd", seed=13)
        assert a.fault_log == b.fault_log
        assert a.healthy == b.healthy
        assert a.domain_availability == b.domain_availability
        assert a.domain_mttr_s == b.domain_mttr_s
        assert a.spread_deferrals == b.spread_deferrals
        assert a.final_fractions == b.final_fractions


class TestCli:
    def test_chaos_smoke_exit_code_and_output(self, capsys):
        assert main(["chaos", "smoke", "--eras", "8", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "campaign : smoke" in out
        assert "recovered: YES" in out

    def test_chaos_list(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in CAMPAIGNS:
            assert name in out
