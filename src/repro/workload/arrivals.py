"""Open arrival processes.

Complementing the closed-loop browsers, the experiment harness sometimes
needs *open* request streams (e.g. for stressing a single VM during F2PM
profiling, or for the autoscaling demo where the global rate ramps).  Two
processes are provided:

* :class:`PoissonArrivals` -- homogeneous Poisson with optional rate ramps;
* :class:`BatchArrivals` -- deterministic era-batched arrivals used by the
  fluid control-loop simulation (how many requests fall in an era of length
  ``dt`` at rate ``lambda``, with Poisson-distributed counts).
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class PoissonArrivals:
    """Homogeneous (or piecewise-varying) Poisson arrival sampler.

    Parameters
    ----------
    rate:
        Either a constant rate (requests/second) or a callable
        ``rate(t) -> float`` for time-varying workloads; the time-varying
        case is sampled by thinning against ``rate_max``.
    rng:
        Dedicated random stream.
    rate_max:
        Upper bound of a callable rate (required in that case).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate: float | Callable[[float], float],
        rate_max: float | None = None,
    ) -> None:
        self._rng = rng
        if callable(rate):
            if rate_max is None or rate_max <= 0:
                raise ValueError(
                    "rate_max (positive) is required for a callable rate"
                )
            self._rate_fn = rate
            self._rate_max = float(rate_max)
        else:
            if rate < 0:
                raise ValueError("rate must be >= 0")
            self._rate_fn = None
            self._rate_const = float(rate)

    def next_interarrival(self, now: float = 0.0) -> float:
        """Sample the time until the next arrival after ``now``.

        Constant-rate path draws one exponential; the time-varying path uses
        Lewis-Shedler thinning.  Returns ``inf`` for zero rate.
        """
        if self._rate_fn is None:
            if self._rate_const == 0.0:
                return float("inf")
            return float(self._rng.exponential(1.0 / self._rate_const))
        t = now
        while True:
            t += float(self._rng.exponential(1.0 / self._rate_max))
            if self._rng.random() <= self._rate_fn(t) / self._rate_max:
                return t - now

    def sample_window(self, t_start: float, t_end: float) -> np.ndarray:
        """All arrival instants in ``[t_start, t_end)`` (sorted array)."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        out = []
        t = t_start
        while True:
            dt = self.next_interarrival(t)
            t += dt
            if t >= t_end:
                break
            out.append(t)
        return np.asarray(out, dtype=float)


class MmppArrivals:
    """Two-state Markov-modulated Poisson process (bursty workloads).

    The process alternates between a *base* state (rate ``rate_low``) and a
    *burst* state (rate ``rate_high``); sojourn times in each state are
    exponential.  Used by the burst-robustness ablation: ACM's policies
    must keep converging when the offered load is not smooth.

    Parameters
    ----------
    rng:
        Dedicated random stream.
    rate_low, rate_high:
        Arrival rates of the two states (``rate_high >= rate_low >= 0``).
    mean_sojourn_low_s, mean_sojourn_high_s:
        Expected time spent in each state per visit.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate_low: float,
        rate_high: float,
        mean_sojourn_low_s: float = 300.0,
        mean_sojourn_high_s: float = 60.0,
    ) -> None:
        if rate_low < 0 or rate_high < rate_low:
            raise ValueError("need 0 <= rate_low <= rate_high")
        if mean_sojourn_low_s <= 0 or mean_sojourn_high_s <= 0:
            raise ValueError("sojourn times must be positive")
        self._rng = rng
        self.rate_low = float(rate_low)
        self.rate_high = float(rate_high)
        self.mean_sojourn_low_s = float(mean_sojourn_low_s)
        self.mean_sojourn_high_s = float(mean_sojourn_high_s)
        self._in_burst = False
        self._state_until = float(
            rng.exponential(self.mean_sojourn_low_s)
        )
        self._now = 0.0

    @property
    def in_burst(self) -> bool:
        """Whether the process is currently in the burst state."""
        return self._in_burst

    def current_rate(self) -> float:
        """Arrival rate of the current state."""
        return self.rate_high if self._in_burst else self.rate_low

    def mean_rate(self) -> float:
        """Long-run average rate (stationary mixture of the two states)."""
        p_high = self.mean_sojourn_high_s / (
            self.mean_sojourn_low_s + self.mean_sojourn_high_s
        )
        return p_high * self.rate_high + (1 - p_high) * self.rate_low

    def advance(self, dt: float) -> float:
        """Advance the modulating chain by ``dt`` and return the *expected*
        arrival count over the interval (integrating across state flips).

        Suitable for the fluid control loop: feed the returned mean into a
        Poisson draw (see :meth:`count`).
        """
        if dt < 0:
            raise ValueError("dt must be >= 0")
        remaining = dt
        expected = 0.0
        while remaining > 0:
            in_state = min(remaining, self._state_until - self._now)
            expected += in_state * self.current_rate()
            self._now += in_state
            remaining -= in_state
            if self._now >= self._state_until:
                self._in_burst = not self._in_burst
                sojourn = (
                    self.mean_sojourn_high_s
                    if self._in_burst
                    else self.mean_sojourn_low_s
                )
                self._state_until = self._now + float(
                    self._rng.exponential(sojourn)
                )
        return expected

    def count(self, dt: float) -> int:
        """Poisson arrival count for the next ``dt`` seconds."""
        mean = self.advance(dt)
        if mean <= 0:
            return 0
        return int(self._rng.poisson(mean))


class BatchArrivals:
    """Era-batched arrival counts for the fluid simulation.

    At each control era of length ``dt`` the fluid model needs "how many
    requests arrived at region i" rather than individual instants; counts
    are Poisson(rate * dt), which preserves the stochastic variability the
    policies must cope with while avoiding per-request events.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def count(self, rate: float, dt: float) -> int:
        """Poisson-distributed request count for an era."""
        if rate < 0:
            raise ValueError("rate must be >= 0")
        if dt < 0:
            raise ValueError("dt must be >= 0")
        mean = rate * dt
        if mean == 0.0:
            return 0
        # Normal approximation above 1e6 keeps the sampler O(1) and avoids
        # numpy's slow path for huge Poisson means.
        if mean > 1e6:
            return max(0, int(round(self._rng.normal(mean, np.sqrt(mean)))))
        return int(self._rng.poisson(mean))

    def split(
        self, total: int, fractions: np.ndarray
    ) -> np.ndarray:
        """Multinomially split ``total`` requests by the forward plan.

        The global forward plan sends fraction ``f_i`` of requests to
        region ``i``; individual requests are routed independently, hence
        multinomial counts.
        """
        fractions = np.asarray(fractions, dtype=float)
        if total < 0:
            raise ValueError("total must be >= 0")
        if fractions.ndim != 1 or fractions.size == 0:
            raise ValueError("fractions must be a non-empty 1-D array")
        if np.any(fractions < -1e-12):
            raise ValueError("fractions must be non-negative")
        s = fractions.sum()
        if s <= 0:
            raise ValueError("fractions must sum > 0")
        return self._rng.multinomial(total, np.maximum(fractions, 0.0) / s)
