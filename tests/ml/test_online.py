"""Tests for the online model lifecycle (repro.ml.online)."""

import numpy as np
import pytest

from repro.ml import Dataset
from repro.ml.features import FEATURE_NAMES
from repro.ml.online import (
    DriftTracker,
    OnlineLifecycle,
    OnlineLifecycleConfig,
    PeriodicRetrainer,
    StreamingLabelCollector,
)
from repro.ml.toolchain import F2PMToolchain
from repro.obs.telemetry import Telemetry
from repro.pcam.predictor import (
    ConservativeRttfPredictor,
    OracleRttfPredictor,
    TrainedRttfPredictor,
)

N_FEATURES = len(FEATURE_NAMES)


def _row(fill=1.0):
    return np.full(N_FEATURES, fill)


class TestStreamingLabelCollector:
    def test_life_end_labels_buffered_samples(self):
        col = StreamingLabelCollector()
        for i in range(4):
            col.observe("r1/vm0", time=30.0 * i, features=_row(i), uptime_s=30.0 * i)
        labelled = col.life_end("r1/vm0", end_time=150.0, reason="failure")
        assert labelled == 4
        assert col.n_runs == 1
        assert col.lives_total == 1
        # retro-labels are realized time-to-event at each sample instant
        ds = col.dataset()
        assert ds is not None
        np.testing.assert_allclose(ds.y, [150.0, 120.0, 90.0, 60.0])

    def test_samples_at_or_after_end_time_excluded(self):
        col = StreamingLabelCollector()
        col.observe("k", time=0.0, features=_row(), uptime_s=0.0)
        col.observe("k", time=100.0, features=_row(), uptime_s=100.0)
        assert col.life_end("k", end_time=100.0, reason="failure") == 1

    def test_rejuvenation_labels_filterable(self):
        col = StreamingLabelCollector(label_rejuvenations=False)
        col.observe("k", time=0.0, features=_row(), uptime_s=0.0)
        assert col.life_end("k", end_time=60.0, reason="rejuvenation") == 0
        assert col.n_runs == 0
        # lives are still counted even when their labels are dropped
        assert col.lives_total == 1

    def test_runs_filter_by_reason(self):
        col = StreamingLabelCollector()
        col.observe("a", time=0.0, features=_row(), uptime_s=0.0)
        col.life_end("a", end_time=50.0, reason="failure")
        col.observe("b", time=0.0, features=_row(), uptime_s=0.0)
        col.life_end("b", end_time=50.0, reason="rejuvenation")
        assert len(col.runs()) == 2
        assert len(col.runs(reasons=("failure",))) == 1

    def test_unknown_reason_rejected(self):
        col = StreamingLabelCollector()
        with pytest.raises(ValueError, match="reason"):
            col.life_end("k", end_time=1.0, reason="retired")

    def test_uptime_rewind_clears_stale_buffer(self):
        # a missed life boundary (e.g. autoscale retirement + reuse of the
        # name) must not produce labels straddling two lives
        col = StreamingLabelCollector()
        col.observe("k", time=0.0, features=_row(), uptime_s=0.0)
        col.observe("k", time=30.0, features=_row(), uptime_s=30.0)
        col.observe("k", time=60.0, features=_row(), uptime_s=0.0)  # rewind
        assert col.life_end("k", end_time=90.0, reason="failure") == 1

    def test_discard_drops_inflight_buffer(self):
        col = StreamingLabelCollector()
        col.observe("k", time=0.0, features=_row(), uptime_s=0.0)
        col.discard("k")
        assert col.life_end("k", end_time=50.0, reason="failure") == 0

    def test_run_budget_evicts_oldest(self):
        col = StreamingLabelCollector(max_runs=2)
        for i in range(3):
            col.observe(f"vm{i}", time=0.0, features=_row(i), uptime_s=0.0)
            col.life_end(f"vm{i}", end_time=10.0 * (i + 1), reason="failure")
        assert col.n_runs == 2
        assert col.lives_total == 3
        assert col.labelled_samples_total == 3  # monotone, survives eviction
        # the oldest life (end_time 10) was evicted
        assert [run[2] for run in col.runs()] == [20.0, 30.0]

    def test_per_life_sample_budget_keeps_most_recent(self):
        col = StreamingLabelCollector(max_life_samples=3)
        for i in range(6):
            col.observe("k", time=float(i), features=_row(i), uptime_s=float(i))
        assert col.life_end("k", end_time=10.0, reason="failure") == 3
        ds = col.dataset()
        np.testing.assert_allclose(ds.y, [7.0, 6.0, 5.0])

    def test_dataset_none_when_empty(self):
        assert StreamingLabelCollector().dataset() is None

    def test_derived_schema_doubles_columns(self):
        col = StreamingLabelCollector()
        rng = np.random.default_rng(0)
        for i in range(5):
            col.observe(
                "k", time=30.0 * i,
                features=rng.normal(size=N_FEATURES), uptime_s=30.0 * i,
            )
        col.life_end("k", end_time=300.0, reason="failure")
        levels = col.dataset(schema="levels")
        derived = col.dataset(schema="derived", window=3)
        assert levels.X.shape[1] == N_FEATURES
        assert derived.X.shape[1] == 2 * N_FEATURES
        with pytest.raises(ValueError, match="schema"):
            col.dataset(schema="wavelets")


class TestDriftTracker:
    def test_failure_life_scores_exact_mape(self):
        tracker = DriftTracker(floor_s=30.0)
        tracker.observe("k", time=0.0, predicted=200.0)  # realized 100
        tracker.observe("k", time=50.0, predicted=75.0)  # realized 50
        score = tracker.life_end("k", end_time=100.0, reason="failure")
        # |200-100|/100 = 1.0 ; |75-50|/max(50, 30) = 0.5
        assert score == pytest.approx(0.75)
        assert tracker.rolling() == pytest.approx(0.75)

    def test_rejuvenation_only_penalises_under_prediction(self):
        tracker = DriftTracker(floor_s=30.0)
        # over-predicting the censored bound is consistent with it
        tracker.observe("a", time=0.0, predicted=500.0)
        assert tracker.life_end("a", 100.0, "rejuvenation") == pytest.approx(0.0)
        # under-predicting the bound is a real error
        tracker.observe("b", time=0.0, predicted=40.0)
        assert tracker.life_end("b", 100.0, "rejuvenation") == pytest.approx(0.6)

    def test_non_finite_predictions_dropped(self):
        tracker = DriftTracker()
        tracker.observe("k", time=0.0, predicted=float("nan"))
        assert tracker.life_end("k", 100.0, "failure") is None

    def test_rolling_window_and_reset(self):
        tracker = DriftTracker(window_lives=2)
        for i, pred in enumerate([100.0, 200.0, 300.0]):
            tracker.observe(f"vm{i}", time=0.0, predicted=pred)
            tracker.life_end(f"vm{i}", end_time=100.0, reason="failure")
        assert tracker.lives_scored == 2  # window holds the last two
        assert len(tracker.life_scores) == 3  # full history kept
        assert tracker.rolling() == pytest.approx((1.0 + 2.0) / 2)
        tracker.reset_window()
        assert tracker.rolling() is None
        assert len(tracker.life_scores) == 3

    def test_discard_drops_pending(self):
        tracker = DriftTracker()
        tracker.observe("k", time=0.0, predicted=100.0)
        tracker.discard("k")
        assert tracker.life_end("k", 100.0, "failure") is None


class TestPeriodicRetrainer:
    @pytest.fixture
    def retrainer(self):
        return PeriodicRetrainer(
            F2PMToolchain(max_features=4, cv_folds=3),
            seed=11,
            model_name="rep-tree",
        )

    def test_rejects_tiny_dataset(self, retrainer, linear_dataset):
        tiny = Dataset(
            linear_dataset.X[:4], linear_dataset.y[:4], FEATURE_NAMES
        )
        with pytest.raises(ValueError, match="too small"):
            retrainer.retrain(tiny)
        assert retrainer.count == 0

    def test_retrain_is_seed_deterministic(self, retrainer, linear_dataset):
        twin = PeriodicRetrainer(
            F2PMToolchain(max_features=4, cv_folds=3),
            seed=11,
            model_name="rep-tree",
        )
        a = retrainer.retrain(linear_dataset)
        b = twin.retrain(linear_dataset)
        assert retrainer.count == twin.count == 1
        np.testing.assert_array_equal(
            a.predict(linear_dataset.X), b.predict(linear_dataset.X)
        )


class TestOnlineLifecycle:
    @pytest.fixture
    def trained_predictor(self, linear_dataset):
        toolchain = F2PMToolchain(max_features=4, cv_folds=3)
        model = toolchain.train_best(
            linear_dataset, np.random.default_rng(0), model_name="rep-tree"
        )
        return TrainedRttfPredictor(model)

    def test_bind_walks_wrapper_chain(self, trained_predictor):
        wrapped = ConservativeRttfPredictor(trained_predictor, margin=0.8)
        lc = OnlineLifecycle(OnlineLifecycleConfig(retrain_interval_eras=5))
        lc.bind(wrapped)
        assert lc._target is trained_predictor
        assert lc._margins == [wrapped]
        assert lc.retrainer is not None
        # the retraining suite is restricted to the deployed family
        assert set(lc.retrainer.toolchain.suite) == {"rep-tree"}

    def test_bind_oracle_disables_retraining(self):
        lc = OnlineLifecycle(OnlineLifecycleConfig(retrain_interval_eras=5))
        lc.bind(OracleRttfPredictor())
        assert lc._target is None
        assert lc.retrainer is None
        lc.end_era(30.0)  # must be a no-op, not a crash
        assert lc.retrains == 0

    def _feed_lives(self, lc, n_lives, samples_per_life, rng):
        """Synthesise ``n_lives`` completed failure lives through the hooks."""

        class _FakeVm:
            def __init__(self, name, uptime_s):
                self.name = name
                self.uptime_s = uptime_s

        class _FakeSample:
            def __init__(self, time, features):
                self.time = time
                self.features = features

        t = 0.0
        for life in range(n_lives):
            name = f"vm{life}"
            for i in range(samples_per_life):
                vm = _FakeVm(name, uptime_s=30.0 * i)
                sample = _FakeSample(t, rng.normal(size=N_FEATURES))
                lc.observe_era(
                    "r1", t, [vm], [sample], np.array([500.0 - t % 400])
                )
                t += 30.0
            lc.observe_life_end("r1", name, t, "failure")

    def test_end_era_retrains_on_schedule_and_hot_swaps(
        self, trained_predictor
    ):
        lc = OnlineLifecycle(
            OnlineLifecycleConfig(
                retrain_interval_eras=2, min_new_samples=8, cv_folds=3
            ),
            seed=5,
        )
        lc.bind(trained_predictor)
        before = trained_predictor.model
        self._feed_lives(lc, n_lives=4, samples_per_life=5,
                         rng=np.random.default_rng(1))
        lc.end_era(30.0)
        assert lc.retrains == 0  # era 1: off the schedule
        lc.end_era(60.0)
        assert lc.retrains == 1
        assert trained_predictor.model is not before  # hot-swapped in place

    def test_retrain_gated_on_new_samples(self, trained_predictor):
        lc = OnlineLifecycle(
            OnlineLifecycleConfig(
                retrain_interval_eras=1, min_new_samples=1000
            ),
            seed=5,
        )
        lc.bind(trained_predictor)
        self._feed_lives(lc, n_lives=3, samples_per_life=5,
                         rng=np.random.default_rng(1))
        lc.end_era(30.0)
        assert lc.retrains == 0

    def test_fallback_tightens_margins_with_floor(self):
        inner = ConservativeRttfPredictor(OracleRttfPredictor(), margin=0.8)
        lc = OnlineLifecycle(
            OnlineLifecycleConfig(
                drift_threshold=0.5,
                min_drift_lives=1,
                margin_tighten=0.5,
                margin_floor=0.3,
            )
        )
        lc.bind(inner)

        def bad_life(name):
            lc.drift.observe(name, time=0.0, predicted=1000.0)
            lc.observe_life_end("r1", name.split("/", 1)[1], 100.0, "failure")

        # keys must match what observe_life_end derives from (region, vm)
        bad_life("r1/vm0")
        assert lc.fallbacks == 1
        assert inner.margin == pytest.approx(0.4)
        # hysteresis: the window restarts, the same life can't re-trip it
        assert lc.drift.rolling() is None
        bad_life("r1/vm1")
        assert lc.fallbacks == 2
        assert inner.margin == pytest.approx(0.3)  # floored, not 0.2
        bad_life("r1/vm2")
        assert inner.margin == pytest.approx(0.3)

    def test_freeze_on_drift_stops_retraining(self, trained_predictor):
        lc = OnlineLifecycle(
            OnlineLifecycleConfig(
                retrain_interval_eras=1,
                min_new_samples=1,
                drift_threshold=0.5,
                min_drift_lives=1,
                freeze_on_drift=True,
            ),
            seed=5,
        )
        lc.bind(trained_predictor)
        self._feed_lives(lc, n_lives=4, samples_per_life=5,
                         rng=np.random.default_rng(1))
        # those synthetic lives over-predict wildly -> fallback freezes
        assert lc.frozen
        before = trained_predictor.model
        lc.end_era(30.0)
        assert lc.retrains == 0
        assert trained_predictor.model is before

    def test_telemetry_exports_lifecycle_metrics(self, trained_predictor):
        tel = Telemetry(enabled=True)
        lc = OnlineLifecycle(
            OnlineLifecycleConfig(retrain_interval_eras=1, min_new_samples=8),
            seed=5,
            telemetry=tel,
        )
        lc.bind(trained_predictor)
        self._feed_lives(lc, n_lives=4, samples_per_life=5,
                         rng=np.random.default_rng(1))
        lc.end_era(30.0)
        snap = tel.snapshot()
        counters = {m["name"] for m in snap["metrics"]["counters"]}
        gauges = {m["name"] for m in snap["metrics"]["gauges"]}
        assert "ml_lives_total" in counters
        assert "ml_labelled_samples_total" in counters
        assert "ml_retrains_total" in counters
        assert "ml_drift_mape" in gauges
        assert "ml_dataset_samples" in gauges
        kinds = {e["kind"] for e in snap["events"]["events"]}
        assert "ml.life_end" in kinds
        assert "ml.retrain" in kinds

    def test_stats_shape(self, trained_predictor):
        lc = OnlineLifecycle(seed=5)
        lc.bind(trained_predictor)
        stats = lc.stats()
        for key in (
            "eras", "retrains", "lives_total", "labelled_samples_total",
            "dataset_samples", "rolling_drift_mape", "retrain_history",
            "fallbacks", "frozen", "margins",
        ):
            assert key in stats

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnlineLifecycleConfig(retrain_interval_eras=-1)
        with pytest.raises(ValueError):
            OnlineLifecycleConfig(margin_tighten=1.5)
        with pytest.raises(ValueError):
            OnlineLifecycleConfig(drift_threshold=0.0)
