"""Content-addressed policy-head checkpoints.

A checkpoint is a head's :meth:`~repro.policy.heads.PolicyHead.to_doc`
document serialised as sorted-key JSON.  The digest of that document
(:func:`repro.obs.manifest.config_digest`, the same hash that keys the
fleet's result store) names the file -- so identical parameters produce
identical paths *and* identical bytes, which is what the trainer's
resume logic and the ``repro policy train`` byte-identity acceptance
test rely on.  No timestamps, hostnames, or float formatting ambiguity
ever enter the file.

Head *specs* -- the strings carried by CLI flags and the fleet's
``policy_head`` job axis -- resolve through :func:`load_head`:

* ``"static:<policy-name>"`` -> a frozen
  :class:`~repro.policy.heads.StaticPolicyHead` over the named policy;
* ``"frozen:<path>"`` -> the checkpoint at ``path``, frozen;
* ``"<path>"`` -> the checkpoint at ``path`` in its saved mode
  (trainable -- rollout workers keep learning locally).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.manifest import config_digest
from repro.policy.heads import PolicyHead, StaticPolicyHead, head_from_doc


def doc_bytes(doc: dict) -> bytes:
    """Canonical serialisation: sorted keys, newline-terminated."""
    return (json.dumps(doc, sort_keys=True, indent=1) + "\n").encode()


def head_digest(head: PolicyHead) -> str:
    """Content digest of a head's parameters."""
    return config_digest(head.to_doc())


def save_head(head: PolicyHead, path: Path | str) -> Path:
    """Write a head's checkpoint to an explicit path (atomic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(doc_bytes(head.to_doc()))
    os.replace(tmp, path)
    return path


def save_head_addressed(head: PolicyHead, directory: Path | str) -> Path:
    """Write a content-addressed checkpoint: ``<dir>/head-<digest>.json``."""
    directory = Path(directory)
    return save_head(head, directory / f"head-{head_digest(head)}.json")


def load_checkpoint(path: Path | str) -> PolicyHead:
    """Rebuild a head from a checkpoint file."""
    doc = json.loads(Path(path).read_text())
    return head_from_doc(doc)


def load_head(spec: str, frozen: bool = False) -> PolicyHead:
    """Resolve a head spec string (see module docstring).

    ``frozen=True`` freezes whatever comes back (eval semantics);
    static heads are frozen by construction.
    """
    if not spec:
        raise ValueError("empty policy-head spec")
    if spec.startswith("static:"):
        return StaticPolicyHead(spec.split(":", 1)[1])
    if spec.startswith("frozen:"):
        head = load_checkpoint(spec.split(":", 1)[1])
        head.freeze()
        return head
    head = load_checkpoint(spec)
    if frozen:
        head.freeze()
    return head
