"""SLO-aware admission control (ROADMAP item 5, SNIPPETS Snippet 2).

Per-region service-level objectives (p95 latency target, queue-depth
threshold, rolling error budget) are evaluated over a rolling time
window and fed into a deterministic priority ladder -- kill-switch >
manual override > adaptive > default -- with hysteresis bands (separate
enter/exit thresholds) and a minimum dwell time so the control signal
cannot oscillate era to era.

Two consumers share the machinery:

- the serve ingress (``repro.serve.service``) sheds with HTTP 429 +
  ``Retry-After`` while a region's ladder sits at ``degraded``;
- the sim-side MAPE loop (``repro.core.control_loop``) shapes the
  planned forward fractions away from degraded regions via
  :class:`SloController`.

Everything here is pure stdlib + numpy and imports nothing from the
core/serve layers, so either side can depend on it freely.
"""

from repro.slo.evaluator import (
    SloConfig,
    SloEvaluator,
    SloStatus,
    nearest_rank_quantile,
    parse_slo_spec,
)
from repro.slo.ladder import (
    LEVEL_CODES,
    LEVEL_DEGRADED,
    LEVEL_NORMAL,
    SOURCE_ADAPTIVE,
    SOURCE_DEFAULT,
    SOURCE_KILL_SWITCH,
    SOURCE_MANUAL,
    Decision,
    PriorityLadder,
)
from repro.slo.controller import SloController

__all__ = [
    "Decision",
    "LEVEL_CODES",
    "LEVEL_DEGRADED",
    "LEVEL_NORMAL",
    "PriorityLadder",
    "SOURCE_ADAPTIVE",
    "SOURCE_DEFAULT",
    "SOURCE_KILL_SWITCH",
    "SOURCE_MANUAL",
    "SloConfig",
    "SloController",
    "SloEvaluator",
    "SloStatus",
    "nearest_rank_quantile",
    "parse_slo_spec",
]
