"""Tests for graceful degradation and the reliable control transport."""

import numpy as np
import pytest

from repro.core import AcmManager, RegionSpec
from repro.core.degradation import DegradationConfig, DegradationTracker
from repro.core.distributed import DistributedControlPlane
from repro.chaos import CorruptiblePredictor, LossyBus
from repro.sim.rng import RngRegistry


def make_manager(seed=31, **kw):
    return AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", 8, 5, 160,
                       rejuvenation_time_s=60.0),
            RegionSpec("region3", "private.small", 6, 4, 96,
                       rejuvenation_time_s=60.0),
        ],
        policy="available-resources",
        seed=seed,
        **kw,
    )


def make_manager3(seed=41):
    return AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", 6, 4, 128),
            RegionSpec("region2", "m3.small", 8, 6, 192),
            RegionSpec("region3", "private.small", 4, 3, 64),
        ],
        policy="available-resources",
        seed=seed,
    )


class TestTracker:
    def test_full_reports_stay_normal(self):
        tracker = DegradationTracker(["a", "b", "c"])
        for era in range(5):
            assert tracker.observe(era, {"a", "b", "c"}) == "normal"

    def test_brief_hiccup_is_forgiven(self):
        tracker = DegradationTracker(
            ["a", "b", "c"], DegradationConfig(stale_after_eras=2)
        )
        tracker.observe(0, {"a", "b", "c"})
        # b and c go quiet; their last reports stay fresh for 2 eras
        assert tracker.observe(1, {"a"}) == "normal"
        assert tracker.observe(2, {"a"}) == "normal"
        assert tracker.observe(3, {"a", "b", "c"}) == "normal"
        assert tracker.consecutive_degraded == 0

    def test_quorum_loss_holds_then_falls_back(self):
        tracker = DegradationTracker(
            ["a", "b", "c"],
            DegradationConfig(stale_after_eras=1, fallback_after_eras=3),
        )
        tracker.observe(0, {"a", "b", "c"})
        assert tracker.observe(1, {"a"}) == "normal"  # b, c still fresh
        assert tracker.observe(2, {"a"}) == "hold"
        assert tracker.observe(3, {"a"}) == "hold"
        assert tracker.observe(4, {"a"}) == "fallback"
        assert tracker.observe(5, {"a"}) == "fallback"

    def test_recovery_is_immediate(self):
        tracker = DegradationTracker(
            ["a", "b"],
            DegradationConfig(stale_after_eras=0, fallback_after_eras=2),
        )
        tracker.observe(0, {"a"})
        tracker.observe(1, {"a"})
        assert tracker.mode == "fallback"
        assert tracker.observe(2, {"a", "b"}) == "normal"

    def test_leader_alone_is_majority_of_one(self):
        tracker = DegradationTracker(["a"])
        assert tracker.observe(0, {"a"}) == "normal"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DegradationConfig(quorum_fraction=1.0)
        with pytest.raises(ValueError):
            DegradationConfig(stale_after_eras=-1)
        with pytest.raises(ValueError):
            DegradationConfig(fallback_after_eras=0)
        with pytest.raises(ValueError):
            DegradationTracker([])


class TestLoopDegradation:
    def test_healthy_run_never_degrades(self):
        loop = make_manager().loop
        summaries = loop.run(20)
        assert all(s.degradation == "normal" for s in summaries)
        assert set(loop.traces.series("degradation").values) == {0.0}

    def test_partition_walks_the_ladder(self):
        loop = make_manager().loop
        loop.run(10)
        loop.overlay.fail_link("region1", "region3")
        loop.router.invalidate()
        modes = [s.degradation for s in loop.run(12)]
        cfg = loop.degradation.config
        # grace eras first (stale reports still fresh), then hold, then
        # fallback after the configured number of degraded eras
        assert modes[: cfg.stale_after_eras] == ["normal"] * cfg.stale_after_eras
        first_hold = cfg.stale_after_eras
        assert modes[first_hold] == "hold"
        first_fallback = first_hold + cfg.fallback_after_eras - 1
        assert modes[first_fallback] == "fallback"
        assert modes[-1] == "fallback"

    def test_hold_freezes_fractions_exactly(self):
        loop = make_manager().loop
        loop.run(10)
        loop.overlay.fail_link("region1", "region3")
        loop.router.invalidate()
        summaries = loop.run(8)
        held = [s for s in summaries if s.degradation == "hold"]
        assert len(held) >= 2
        for a, b in zip(held, held[1:]):
            assert a.fractions == b.fractions

    def test_fallback_installs_capacity_split(self):
        loop = make_manager().loop
        loop.run(10)
        loop.overlay.fail_link("region1", "region3")
        loop.router.invalidate()
        summaries = loop.run(12)
        last = summaries[-1]
        assert last.degradation == "fallback"
        caps = {r: loop.vmcs[r].healthy_capacity() for r in loop.regions}
        expected = caps["region3"] / sum(caps.values())
        assert last.fractions["region3"] == pytest.approx(expected, abs=0.01)

    def test_heal_resumes_policy(self):
        loop = make_manager().loop
        loop.run(10)
        loop.overlay.fail_link("region1", "region3")
        loop.router.invalidate()
        loop.run(12)
        loop.overlay.restore_link("region1", "region3")
        loop.router.invalidate()
        summaries = loop.run(3)
        assert all(s.degradation == "normal" for s in summaries)

    def test_nan_reports_degrade_instead_of_crashing(self):
        """A predictor emitting NaN must not reach the policy simplex."""
        mgr = make_manager()
        loop = mgr.loop
        corruptibles = {}
        for region, vmc in loop.vmcs.items():
            vmc.predictor = corruptibles[region] = CorruptiblePredictor(
                vmc.predictor
            )
        loop.run(10)
        for pred in corruptibles.values():
            pred.set_mode("nan")
        summaries = loop.run(12)  # must not raise
        assert summaries[-1].degradation in ("hold", "fallback")
        for s in summaries:
            assert all(np.isfinite(v) for v in s.rmttf.values())
            assert all(np.isfinite(v) for v in s.fractions.values())
        # healing the predictors heals the plane
        for pred in corruptibles.values():
            pred.set_mode("off")
        assert loop.run(1)[0].degradation == "normal"

    def test_degradation_trace_recorded(self):
        loop = make_manager().loop
        loop.run(5)
        loop.overlay.fail_link("region1", "region3")
        loop.router.invalidate()
        loop.run(12)
        values = loop.traces.series("degradation").values
        assert 0.0 in values and 1.0 in values and 2.0 in values


class TestReliableTransport:
    def make_plane(self, seed=41, loss=0.0, **kw):
        mgr = make_manager3(seed=seed)
        bus_factory = None
        if loss > 0.0:
            chaos_rng = mgr.rngs.stream("chaos/network")

            def bus_factory(sim, router):
                return LossyBus(
                    sim=sim,
                    router=router,
                    rng=chaos_rng,
                    loss_probability=loss,
                )

        plane = DistributedControlPlane(
            mgr.loop,
            bus_factory=bus_factory,
            reliable_control=True,
            **kw,
        )
        return mgr, plane

    def test_clean_network_matches_oracle_exchange(self):
        """Over a healthy overlay the reliable transport gathers every
        report and installs every fraction, just like the oracle."""
        mgr, plane = self.make_plane()
        reports = plane.run(10)
        assert all(r.summary.degradation == "normal" for r in reports)
        stats = plane.channel.stats
        # 2 reports + 2 pushes per era, all acked, none retried
        assert stats.sent == 4 * 10
        assert stats.acked == stats.sent
        assert stats.retries == 0
        assert stats.gave_up == 0

    def test_lossy_network_retries_and_still_converges(self):
        mgr, plane = self.make_plane(loss=0.3)
        reports = plane.run(15)
        stats = plane.channel.stats
        assert stats.retries > 0  # losses happened and were masked
        # the ack/retry layer keeps the control plane effectively healthy
        degraded = [
            r for r in reports if r.summary.degradation != "normal"
        ]
        assert len(degraded) <= 3
        assert stats.acked > stats.sent * 0.8

    def test_partition_starves_transport_and_degrades(self):
        mgr, plane = self.make_plane()
        plane.run(5)
        loop = mgr.loop
        # cut region3 off from both other regions
        loop.overlay.fail_link("region1", "region3")
        loop.overlay.fail_link("region2", "region3")
        loop.router.invalidate()
        reports = plane.run(10)
        # 2 of 3 regions still report: quorum holds, the loop stays normal
        assert all(r.summary.degradation == "normal" for r in reports)
        assert plane.channel.stats.gave_up > 0  # region3 pushes failed
        # region3 kept its last installed fraction (renormalised mix)
        assert reports[-1].summary.fractions["region3"] > 0.0

    def test_fraction_installs_tracked_per_region(self):
        mgr, plane = self.make_plane()
        plane.run(3)
        transport = plane.transport
        acked = transport.push_fractions(
            "region1", {"region1": 0.5, "region2": 0.3, "region3": 0.2}
        )
        assert acked == {"region2", "region3"}
        mgr.loop.overlay.fail_node("region3")
        mgr.loop.router.invalidate()
        acked = transport.push_fractions(
            "region1", {"region1": 0.5, "region2": 0.3, "region3": 0.2}
        )
        assert acked == {"region2"}
