"""REP-Tree: regression tree with Reduced-Error Pruning.

The model the paper actually deploys: "Based on our previous results in [26],
we selected REP Tree as a ML model for predicting the MTTF" (Sec. VI-A).

A REP-Tree (after Weka's ``REPTree``) grows a fast variance-reduction tree
on a *grow* subset, then applies bottom-up reduced-error pruning against a
held-out *prune* subset: any internal node whose collapse does not increase
squared error on the prune set becomes a leaf.  This controls the over-fit
that plain CART exhibits on noisy failure traces.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.tree import TreeNode, build_tree, tree_predict


def _prune(node: TreeNode, X: np.ndarray, y: np.ndarray) -> float:
    """Bottom-up reduced-error pruning.

    Returns the prune-set SSE of the (possibly collapsed) subtree.  When the
    prune set routed to a node is empty we keep the subtree (no evidence to
    prune on) and report zero error.
    """
    if node.is_leaf:
        return float(((y - node.value) ** 2).sum())
    assert node.left is not None and node.right is not None
    mask = X[:, node.feature] <= node.threshold
    subtree_sse = _prune(node.left, X[mask], y[mask]) + _prune(
        node.right, X[~mask], y[~mask]
    )
    if y.size == 0:
        return subtree_sse
    leaf_sse = float(((y - node.value) ** 2).sum())
    if leaf_sse <= subtree_sse:
        node.make_leaf()
        return leaf_sse
    return subtree_sse


class REPTree(Regressor):
    """Reduced-Error-Pruning regression tree.

    Parameters
    ----------
    max_depth, min_samples_split, min_samples_leaf, min_sse_decrease:
        Growth controls, as in :class:`repro.ml.tree.RegressionTree`.
    prune_fraction:
        Fraction of the training data held out for pruning (Weka default
        uses one of three folds; 1/3 here).  Set to 0 to disable pruning.
    seed:
        Seed of the internal grow/prune shuffling, for reproducibility.
    """

    def __init__(
        self,
        max_depth: int = 18,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        min_sse_decrease: float = 0.0,
        prune_fraction: float = 1.0 / 3.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 <= prune_fraction < 1.0:
            raise ValueError(
                f"prune_fraction must be in [0, 1), got {prune_fraction}"
            )
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_sse_decrease = float(min_sse_decrease)
        self.prune_fraction = float(prune_fraction)
        self.seed = int(seed)
        self.root_: TreeNode | None = None
        self.pruned_leaves_: int = 0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n = y.size
        n_prune = int(round(n * self.prune_fraction))
        if n_prune == 0 or n - n_prune < 2 * self.min_samples_leaf:
            grow_X, grow_y = X, y
            prune_X = np.empty((0, X.shape[1]))
            prune_y = np.empty(0)
        else:
            rng = np.random.Generator(np.random.PCG64(self.seed))
            perm = rng.permutation(n)
            prune_idx, grow_idx = perm[:n_prune], perm[n_prune:]
            grow_X, grow_y = X[grow_idx], y[grow_idx]
            prune_X, prune_y = X[prune_idx], y[prune_idx]

        self.root_ = build_tree(
            grow_X,
            grow_y,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_sse_decrease=self.min_sse_decrease,
        )
        leaves_before = self.root_.count_leaves()
        if prune_y.size:
            _prune(self.root_, prune_X, prune_y)
        self.pruned_leaves_ = leaves_before - self.root_.count_leaves()

    def _predict(self, X: np.ndarray) -> np.ndarray:
        assert self.root_ is not None
        return tree_predict(self.root_, X)

    def depth(self) -> int:
        """Depth of the pruned tree."""
        if self.root_ is None:
            raise RuntimeError("tree not fitted")
        return self.root_.depth()

    def n_leaves(self) -> int:
        """Leaf count of the pruned tree."""
        if self.root_ is None:
            raise RuntimeError("tree not fitted")
        return self.root_.count_leaves()
