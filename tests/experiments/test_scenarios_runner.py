"""Tests for the evaluation scenarios and the experiment runner."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_POLICIES,
    compare_policies,
    make_trained_predictor,
    run_policy_experiment,
    three_region_scenario,
    two_region_scenario,
)
from repro.experiments.runner import paper_shape_holds
from repro.sim import INSTANCE_CATALOG


class TestScenarios:
    def test_two_region_matches_paper(self):
        sc = two_region_scenario()
        by_name = {r.name: r for r in sc.regions}
        assert set(by_name) == {"region1-ireland", "region3-munich"}
        assert by_name["region1-ireland"].instance_type == "m3.medium"
        assert by_name["region1-ireland"].n_vms == 6
        assert by_name["region3-munich"].instance_type == "private.small"
        assert by_name["region3-munich"].n_vms == 4

    def test_three_region_matches_paper(self):
        sc = three_region_scenario()
        by_name = {r.name: r for r in sc.regions}
        assert by_name["region2-frankfurt"].instance_type == "m3.small"
        assert by_name["region2-frankfurt"].n_vms == 12

    def test_client_counts_in_paper_range_and_different(self):
        sc = three_region_scenario()
        counts = [r.clients for r in sc.regions]
        assert all(16 <= c <= 512 for c in counts)
        assert len(set(counts)) == len(counts)

    def test_instance_types_exist_in_catalog(self):
        for sc in (two_region_scenario(), three_region_scenario()):
            for t in sc.instance_types():
                assert t in INSTANCE_CATALOG

    def test_overlay_built_with_latencies(self):
        sc = three_region_scenario()
        net = sc.build_overlay()
        assert set(net.nodes()) == {r.name for r in sc.regions}
        assert net.link_latency("region1-ireland", "region2-frankfurt") == 25.0
        assert net.link_latency("region2-frankfurt", "region3-munich") == 15.0

    def test_paper_policies_tuple(self):
        assert PAPER_POLICIES == (
            "sensible-routing",
            "available-resources",
            "exploration",
        )


class TestRunner:
    def test_run_policy_experiment_produces_figure_series(self):
        res = run_policy_experiment(
            two_region_scenario(), "available-resources", eras=40, seed=2
        )
        assert res.policy == "available-resources"
        assert len(res.traces.series("rmttf/region1-ireland")) == 40
        assert len(res.traces.series("fraction/region3-munich")) == 40
        assert len(res.traces.series("response_time")) == 40
        assert res.assessment.sla_met

    def test_eras_floor(self):
        with pytest.raises(ValueError):
            run_policy_experiment(two_region_scenario(), "uniform", eras=5)

    def test_compare_runs_all_policies(self):
        results = compare_policies(
            two_region_scenario(), eras=30, seed=2
        )
        assert set(results) == set(PAPER_POLICIES)

    def test_paper_shape_holds_requires_all_policies(self):
        results = compare_policies(
            two_region_scenario(),
            policies=("sensible-routing",),
            eras=30,
        )
        with pytest.raises(ValueError, match="missing"):
            paper_shape_holds(results)

    def test_same_seed_reproducible(self):
        r1 = run_policy_experiment(
            two_region_scenario(), "exploration", eras=30, seed=4
        )
        r2 = run_policy_experiment(
            two_region_scenario(), "exploration", eras=30, seed=4
        )
        assert np.allclose(
            r1.traces.series("rmttf/region1-ireland").values,
            r2.traces.series("rmttf/region1-ireland").values,
        )


class TestTrainedPredictorPath:
    @pytest.fixture(scope="class")
    def predictor(self):
        return make_trained_predictor(
            ["m3.medium", "private.small"],
            seed=1,
            profile_rates=(4.0, 8.0, 16.0),
            runs_per_rate=2,
            sample_period_s=15.0,
        )

    def test_trained_model_quality(self, predictor):
        # the REP-Tree must have real skill on the profiling data
        assert predictor.model.name == "rep-tree"
        assert predictor.model.report.r2 > 0.5

    def test_feature_selection_happened(self, predictor):
        assert 0 < len(predictor.model.feature_names) <= 8

    def test_ml_in_the_loop_runs(self, predictor):
        res = run_policy_experiment(
            two_region_scenario(),
            "available-resources",
            eras=40,
            seed=2,
            predictor=predictor,
        )
        assert res.assessment.sla_met
        assert res.assessment.total_failures <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            make_trained_predictor([])
