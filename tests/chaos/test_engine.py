"""Tests for the chaos engine: primitives, scheduling, replayability."""

import math

import pytest

from repro.chaos import ChaosEngine, CorruptiblePredictor, FaultEvent, LossyBus
from repro.overlay import OverlayNetwork, Router
from repro.pcam import (
    OracleRttfPredictor,
    VirtualMachineController,
    VmcConfig,
    VmState,
)
from repro.sim import Simulator
from repro.sim.rng import RngRegistry

from ..pcam.conftest import build_vm


def mesh():
    return OverlayNetwork.full_mesh(
        {("r1", "r2"): 10.0, ("r2", "r3"): 10.0, ("r1", "r3"): 30.0}
    )


def make_vmc(rngs, region="r1", n_vms=6, target=4):
    vms = [build_vm(rngs, name=f"{region}/vm{i}") for i in range(n_vms)]
    return VirtualMachineController(
        region, vms, OracleRttfPredictor(), VmcConfig(target_active=target)
    )


def make_engine(seed=5, **surfaces):
    sim = Simulator()
    rng = RngRegistry(seed=seed).stream("chaos")
    return sim, ChaosEngine(sim, rng, **surfaces)


class TestOverlayPrimitives:
    def test_link_fault_reroutes_and_logs(self):
        net = mesh()
        router = Router(net)
        sim, engine = make_engine(overlay=net, router=router)
        assert router.latency("r1", "r3") == 20.0  # via r2
        engine.fail_link("r1", "r2")
        assert router.latency("r1", "r3") == 30.0  # direct, rerouted
        engine.restore_link("r1", "r2")
        assert router.latency("r1", "r3") == 20.0
        assert [e.kind for e in engine.log] == ["fail_link", "restore_link"]
        assert engine.log[0].target == "r1--r2"

    def test_partition_and_heal(self):
        net = mesh()
        sim, engine = make_engine(overlay=net, router=Router(net))
        cut = engine.partition({"r3"})
        assert sorted(cut) == [("r1", "r3"), ("r2", "r3")]
        assert net.is_partitioned()
        engine.heal_partition(cut)
        assert not net.is_partitioned()

    def test_crash_and_restore_node(self):
        net = mesh()
        sim, engine = make_engine(overlay=net, router=Router(net))
        engine.crash_node("r1")
        assert not net.is_alive("r1")
        engine.restore_node("r1")
        assert net.is_alive("r1")

    def test_missing_surface_raises(self):
        sim, engine = make_engine()
        with pytest.raises(RuntimeError, match="overlay"):
            engine.fail_link("r1", "r2")
        with pytest.raises(RuntimeError, match="VMC"):
            engine.vm_crash_storm("r1", 0.5)
        with pytest.raises(RuntimeError, match="LossyBus"):
            engine.set_message_loss(0.3)
        with pytest.raises(RuntimeError, match="predictor"):
            engine.corrupt_predictor("nan")


class TestPcamPrimitives:
    def test_crash_storm_kills_fraction_of_active(self):
        rngs = RngRegistry(seed=9)
        vmc = make_vmc(rngs)
        sim, engine = make_engine(vmcs={"r1": vmc})
        victims = engine.vm_crash_storm("r1", 0.5)
        assert len(victims) == 2  # half of 4 ACTIVE
        assert len(vmc.vms_in(VmState.FAILED)) == 2
        assert engine.log[0].detail == tuple(victims)

    def test_crash_storm_is_seed_deterministic(self):
        def storm(seed):
            vmc = make_vmc(RngRegistry(seed=1))
            sim, engine = make_engine(seed=seed, vmcs={"r1": vmc})
            return engine.vm_crash_storm("r1", 0.5)

        assert storm(5) == storm(5)

    def test_blackout_and_heal(self):
        net = mesh()
        rngs = RngRegistry(seed=9)
        vmc = make_vmc(rngs)
        sim, engine = make_engine(
            overlay=net, router=Router(net), vmcs={"r1": vmc}
        )
        engine.region_blackout("r1")
        assert not net.is_alive("r1")
        assert vmc.vms_in(VmState.ACTIVE) == []
        assert len(vmc.vms_in(VmState.FAILED)) == 4
        engine.region_heal("r1")
        assert net.is_alive("r1")
        # crashed VMs recover through the VMC's reactive path
        vmc.process_era(0, dt=60.0, now=0.0)
        assert vmc.vms_in(VmState.FAILED) == []

    def test_fraction_validation(self):
        rngs = RngRegistry(seed=9)
        sim, engine = make_engine(vmcs={"r1": make_vmc(rngs)})
        with pytest.raises(ValueError):
            engine.vm_crash_storm("r1", 0.0)
        with pytest.raises(ValueError):
            engine.vm_crash_storm("r1", 1.5)


class TestTransportAndPredictorPrimitives:
    def test_message_loss_knob(self):
        net = mesh()
        sim = Simulator()
        bus = LossyBus(
            sim=sim,
            router=Router(net),
            rng=RngRegistry(seed=2).stream("chaos/network"),
        )
        engine = ChaosEngine(sim, RngRegistry(seed=2).stream("chaos"), bus=bus)
        engine.set_message_loss(0.3)
        assert bus.loss_probability == 0.3
        engine.set_latency_jitter(50.0)
        assert bus.jitter_ms == 50.0
        with pytest.raises(ValueError):
            engine.set_message_loss(1.0)

    def test_predictor_corruption_modes(self):
        rngs = RngRegistry(seed=9)
        vmc = make_vmc(rngs)
        corruptible = CorruptiblePredictor(vmc.predictor)
        vmc.predictor = corruptible
        vm = vmc.vms_in(VmState.ACTIVE)[0]
        vm.last_request_rate = 2.0

        healthy = corruptible.predict_rttf(vm)
        assert math.isfinite(healthy) and healthy > 0

        sim, engine = make_engine(predictors={"r1": corruptible})
        engine.corrupt_predictor("nan")
        assert math.isnan(corruptible.predict_rttf(vm))
        assert math.isnan(corruptible.predict_mttf(vm))
        engine.corrupt_predictor("zero")
        assert corruptible.predict_rttf(vm) == 0.0
        engine.corrupt_predictor("stale")
        vm.leaked_mb += 500.0  # state changed, prediction must not
        assert corruptible.predict_rttf(vm) == healthy
        engine.corrupt_predictor("off")
        assert corruptible.predict_rttf(vm) != healthy
        with pytest.raises(ValueError):
            engine.corrupt_predictor("bogus")


class TestScheduling:
    def test_at_applies_on_the_sim_clock(self):
        net = mesh()
        sim, engine = make_engine(overlay=net, router=Router(net))
        engine.at(120.0, engine.fail_link, "r1", "r2")
        engine.at(240.0, engine.restore_link, "r1", "r2")
        sim.run_until(120.0)
        assert not net.link_is_up("r1", "r2")
        sim.run_until(240.0)
        assert net.link_is_up("r1", "r2")
        assert [(e.time, e.kind) for e in engine.log] == [
            (120.0, "fail_link"),
            (240.0, "restore_link"),
        ]

    def test_link_flap_every(self):
        net = mesh()
        sim, engine = make_engine(overlay=net, router=Router(net))
        engine.link_flap_every(
            "r1", "r2", period_s=100.0, down_s=30.0, until_s=350.0
        )
        sim.run_until(1000.0)
        fails = [e.time for e in engine.log if e.kind == "fail_link"]
        heals = [e.time for e in engine.log if e.kind == "restore_link"]
        assert fails == [100.0, 200.0, 300.0]
        assert heals == [130.0, 230.0, 330.0]
        assert net.link_is_up("r1", "r2")

    def test_poisson_flaps_are_seed_deterministic(self):
        def schedule(seed):
            net = mesh()
            sim, engine = make_engine(seed=seed, overlay=net, router=Router(net))
            n = engine.poisson_link_flaps(
                [("r1", "r2"), ("r2", "r3")],
                rate_hz=1 / 200.0,
                down_s=20.0,
                until_s=3600.0,
            )
            sim.run()
            return n, [(e.time, e.kind, e.target) for e in engine.log]

        n1, log1 = schedule(21)
        n2, log2 = schedule(21)
        assert n1 > 0
        assert log1 == log2
        assert schedule(22)[1] != log1


class TestFaultLogReplay:
    def test_campaign_fault_log_is_bit_identical(self):
        """Same seed, same campaign script => byte-for-byte same log."""

        def run(seed):
            net = mesh()
            rngs = RngRegistry(seed=seed)
            vmc = make_vmc(rngs)
            sim = Simulator()
            engine = ChaosEngine(
                sim,
                rngs.stream("chaos"),
                overlay=net,
                router=Router(net),
                vmcs={"r1": vmc},
            )
            engine.at(60.0, engine.vm_crash_storm, "r1", 0.5)
            engine.at(120.0, engine.crash_node, "r2")
            engine.poisson_link_flaps(
                [("r1", "r3")], rate_hz=1 / 300.0, down_s=15.0, until_s=1800.0
            )
            engine.at(900.0, engine.restore_node, "r2")
            sim.run()
            return engine.log

        log_a, log_b = run(33), run(33)
        assert log_a == log_b
        assert all(isinstance(e, FaultEvent) for e in log_a)
        # the log is ordered by the simulator clock
        assert [e.time for e in log_a] == sorted(e.time for e in log_a)
