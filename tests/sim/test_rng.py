"""Tests for deterministic named RNG streams."""

import numpy as np
import pytest

from repro.sim import RngRegistry


def test_same_seed_same_name_reproduces():
    a = RngRegistry(seed=7).stream("arrivals").random(16)
    b = RngRegistry(seed=7).stream("arrivals").random(16)
    assert np.array_equal(a, b)


def test_different_names_differ():
    r = RngRegistry(seed=7)
    a = r.stream("arrivals").random(16)
    b = r.stream("anomalies").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("s").random(16)
    b = RngRegistry(seed=2).stream("s").random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_stateful():
    r = RngRegistry(seed=0)
    g1 = r.stream("x")
    g2 = r.stream("x")
    assert g1 is g2
    first = g1.random()
    second = g2.random()
    assert first != second  # shared position advanced


def test_fresh_restarts_stream():
    r = RngRegistry(seed=0)
    a = r.stream("x").random(4)
    b = r.fresh("x").random(4)
    assert np.array_equal(a, b)


def test_adding_stream_does_not_perturb_existing():
    r1 = RngRegistry(seed=3)
    a_before = r1.stream("a").random(8)

    r2 = RngRegistry(seed=3)
    _ = r2.stream("zzz").random(8)  # extra stream created first
    a_after = r2.stream("a").random(8)
    assert np.array_equal(a_before, a_after)


def test_child_registries_are_disjoint_and_deterministic():
    root = RngRegistry(seed=11)
    c1 = root.child("region1").stream("anomalies").random(8)
    c2 = root.child("region2").stream("anomalies").random(8)
    c1_again = RngRegistry(seed=11).child("region1").stream("anomalies").random(8)
    assert not np.array_equal(c1, c2)
    assert np.array_equal(c1, c1_again)


def test_names_sorted():
    r = RngRegistry(seed=0)
    r.stream("b")
    r.stream("a")
    assert r.names() == ["a", "b"]


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngRegistry(seed="42")  # type: ignore[arg-type]


def test_seed_property():
    assert RngRegistry(seed=99).seed == 99
