"""AcmManager -- the top-level façade of the reproduction.

Wires together everything a deployment needs: per-region VM pools built
from the instance catalog, anomaly injectors with disjoint random streams,
an RTTF predictor (a trained F2PM model or the oracle), browser
populations, the controller overlay, and the closed control loop.

This is the public entry point used by the examples and the benchmark
harness::

    manager = AcmManager(
        regions=[
            RegionSpec("region1", "m3.medium", n_vms=6, target_active=4,
                       clients=160),
            RegionSpec("region3", "private.small", n_vms=4, target_active=3,
                       clients=96),
        ],
        policy="available-resources",
        seed=7,
    )
    summaries = manager.run(eras=200)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.autoscale import Autoscaler, AutoscaleConfig
from repro.core.control_loop import AcmControlLoop, ControlLoopConfig, EraSummary
from repro.core.cost import CostTracker, cost_model_for, effective_usd_per_req
from repro.core.costaware import CostAwarePolicy
from repro.core.policy import Policy, get_policy
from repro.ml.online.lifecycle import OnlineLifecycle, OnlineLifecycleConfig
from repro.obs.telemetry import Telemetry
from repro.overlay.network import OverlayNetwork
from repro.pcam.predictor import OracleRttfPredictor, RttfPredictor
from repro.pcam.vm import FailurePolicy, VirtualMachine
from repro.pcam.vmc import VirtualMachineController, VmcConfig
from repro.sim.instances import get_instance_type
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder
from repro.topology.domains import FailureDomainTree
from repro.workload.anomalies import (
    DEFAULT_LEAK_PROBABILITY,
    DEFAULT_THREAD_PROBABILITY,
    AnomalyInjector,
)
from repro.workload.browsers import BrowserPopulation
from repro.workload.tpcw import MIX_SHOPPING, RequestMix


@dataclass(frozen=True)
class RegionSpec:
    """Declarative description of one cloud region.

    Parameters
    ----------
    name:
        Region identifier ("region1").
    instance_type:
        Catalog name of the VM shape hosted in this region.
    n_vms:
        Total VM pool (ACTIVE + STANDBY).
    target_active:
        ACTIVE pool size the VMC maintains.
    clients:
        Emulated browsers connected to this region's LB (paper: [16, 512]).
    rttf_threshold_s:
        Proactive-rejuvenation threshold of this region's VMC.
    rejuvenation_time_s:
        Restart duration of this region's VMs.
    n_azs, racks_per_az:
        Failure-domain shape of the region: availability-zone count and
        racks per AZ.  The default ``1 x 1`` (flat) topology puts every
        VM of the region on one rack, which is bit-identical to the
        pre-topology behaviour.
    """

    name: str
    instance_type: str
    n_vms: int
    target_active: int
    clients: int
    rttf_threshold_s: float = 240.0
    rejuvenation_time_s: float = 120.0
    n_azs: int = 1
    racks_per_az: int = 1

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise ValueError(f"{self.name}: n_vms must be >= 1")
        if not 1 <= self.target_active <= self.n_vms:
            raise ValueError(
                f"{self.name}: target_active must be in [1, n_vms]"
            )
        if self.clients < 1:
            raise ValueError(f"{self.name}: clients must be >= 1")
        if self.n_azs < 1 or self.racks_per_az < 1:
            raise ValueError(
                f"{self.name}: n_azs and racks_per_az must be >= 1"
            )


@dataclass
class AcmManager:
    """Builds and drives a full ACM deployment.

    Parameters
    ----------
    regions:
        Region specs (at least one).
    policy:
        Policy instance or registry name
        (``"sensible-routing"``, ``"available-resources"``,
        ``"exploration"``, ``"uniform"``, ``"static-weights"``).
    seed:
        Root seed; every stochastic component derives a named stream.
    predictor:
        RTTF predictor shared by all VMCs; defaults to the mean-field
        oracle.  Pass a :class:`~repro.pcam.predictor.TrainedRttfPredictor`
        for the full ML-in-the-loop configuration.
    mix:
        TPC-W mix driving the request classes.
    era_s, beta:
        Control-loop period and Eq. (1) weight.
    leak_probability, thread_probability:
        Anomaly-injection probabilities (paper: 0.10 / 0.05).
    autoscale:
        Enable Sec. V pool resizing.
    overlay_latency_ms:
        Uniform full-mesh latency between region controllers; pass an
        :class:`~repro.overlay.network.OverlayNetwork` via ``overlay`` for
        a custom topology.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade threaded
        through the loop and every VMC.  Disabled (the default) the whole
        deployment runs bit-identically to an un-instrumented one.
    online:
        Optional :class:`~repro.ml.online.lifecycle.OnlineLifecycleConfig`
        enabling the online model lifecycle: streaming label collection,
        drift tracking with the conservative-margin fallback, and (when
        ``retrain_interval_eras > 0``) periodic retraining that hot-swaps
        the deployed model.  ``None`` (the default) leaves every control
        path untouched.  The built lifecycle is exposed as
        ``manager.online_lifecycle``.
    spread_k:
        Anti-affinity rejuvenation cap threaded into every VMC (see
        ``VmcConfig.spread_k``); 0 (the default) disables it.

    The deployment's failure-domain hierarchy (built from each spec's
    ``n_azs``/``racks_per_az``) is exposed as ``manager.domains``; each
    VM is assigned its rack at creation, round-robin across the region's
    racks.
    """

    regions: list[RegionSpec]
    policy: Policy | str = "available-resources"
    seed: int = 0
    predictor: RttfPredictor | None = None
    mix: RequestMix = MIX_SHOPPING
    era_s: float = 30.0
    beta: float = 0.5
    leak_probability: float = DEFAULT_LEAK_PROBABILITY
    thread_probability: float = DEFAULT_THREAD_PROBABILITY
    autoscale: bool = False
    autoscale_config: AutoscaleConfig | None = None
    overlay: OverlayNetwork | None = None
    overlay_latency_ms: float = 20.0
    stochastic_arrivals: bool = True
    sla_response_time_s: float = 1.0
    telemetry: Telemetry | None = None
    online: "OnlineLifecycleConfig | None" = None
    spread_k: int = 0
    #: Optional learned policy head driven at the Plan phase: a
    #: :class:`~repro.policy.runtime.PolicyHeadRuntime`, or a bare
    #: :class:`~repro.policy.heads.PolicyHead` (wrapped in a runtime
    #: with the default reward weights and a reward guard).  ``None``
    #: (the default) takes the exact static code path.
    policy_head: object | None = None
    #: Optional SLO configuration: an :class:`~repro.slo.SloConfig`, or a
    #: compact spec string (``"p95:0.5+dwell:120"``, see
    #: :func:`~repro.slo.parse_slo_spec`).  Builds a
    #: :class:`~repro.slo.SloController` driving the loop's degradation
    #: signal; ``None`` (the default) takes no SLO code path at all.
    slo: object | None = None
    #: Inter-region egress price fed into the cost model ($/forwarded
    #: request); region $/req prices come from the instance catalog.
    egress_usd_per_req: float = 0.0
    loop: AcmControlLoop = field(init=False)
    rngs: RngRegistry = field(init=False)
    domains: FailureDomainTree = field(init=False)
    #: Always-on deployment bill (hourly + per-request + egress); pure
    #: accounting with no RNG/trace footprint, exposed as ``manager.cost``.
    cost: "CostTracker" = field(init=False)
    #: The built SLO controller (``None`` without an ``slo`` config).
    slo_controller: object | None = field(init=False, default=None)
    online_lifecycle: "OnlineLifecycle | None" = field(
        init=False, default=None
    )
    #: The built head runtime (``None`` without a ``policy_head``).
    policy_runtime: object | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("need at least one region spec")
        names = [spec.name for spec in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names in {names}")
        if self.spread_k < 0:
            raise ValueError("spread_k must be >= 0")
        self.rngs = RngRegistry(seed=self.seed)
        self.domains = FailureDomainTree.from_specs(self.regions)
        policy = (
            self.policy
            if isinstance(self.policy, Policy)
            else get_policy(self.policy)
        )
        if isinstance(policy, CostAwarePolicy) and policy.needs_costs:
            # the cost-aware policy weighs regions by the deployment's
            # effective $/req; configuring it here (the one place every
            # path builds its deployment) means sim, serve, and policy
            # heads all see the same price signal
            policy.configure_costs(
                [
                    effective_usd_per_req(get_instance_type(s.instance_type))
                    # the loop orders regions by sorted name; match it
                    for s in sorted(self.regions, key=lambda s: s.name)
                ]
            )
        predictor = self.predictor or OracleRttfPredictor(
            mean_demand=self.mix.mean_service_demand()
        )
        if self.online is not None:
            self.online_lifecycle = OnlineLifecycle(
                self.online, seed=self.seed, telemetry=self.telemetry
            )
            self.online_lifecycle.bind(predictor)

        vmcs: dict[str, VirtualMachineController] = {}
        populations: dict[str, BrowserPopulation] = {}
        for spec in self.regions:
            vmcs[spec.name] = self._build_vmc(spec, predictor)
            populations[spec.name] = BrowserPopulation(
                n_clients=spec.clients,
                mix=self.mix,
                name=f"clients@{spec.name}",
            )

        head_runtime = None
        if self.policy_head is not None:
            # imported lazily: repro.policy depends on repro.core, so a
            # top-level import here would be circular
            from repro.policy.guard import RewardGuard
            from repro.policy.heads import PolicyHead
            from repro.policy.runtime import PolicyHeadRuntime, RewardConfig

            if isinstance(self.policy_head, PolicyHead):
                head_runtime = PolicyHeadRuntime(
                    self.policy_head,
                    reward=RewardConfig(sla_s=self.sla_response_time_s),
                    guard=RewardGuard(),
                )
            elif isinstance(self.policy_head, PolicyHeadRuntime):
                head_runtime = self.policy_head
            else:
                raise TypeError(
                    "policy_head must be a PolicyHead or PolicyHeadRuntime, "
                    f"got {type(self.policy_head).__name__}"
                )
        self.policy_runtime = head_runtime

        if self.slo is not None:
            # imported lazily to keep the manager importable before the
            # slo package on partial checkouts; repro.slo itself depends
            # on nothing from repro.core
            from repro.slo import SloConfig, SloController, parse_slo_spec

            slo_config = (
                parse_slo_spec(self.slo)
                if isinstance(self.slo, str)
                else self.slo
            )
            if not isinstance(slo_config, SloConfig):
                raise TypeError(
                    "slo must be an SloConfig or a spec string, got "
                    f"{type(self.slo).__name__}"
                )
            self.slo_controller = SloController(
                sorted(names), slo_config, telemetry=self.telemetry
            )
        self.cost = CostTracker(
            model=cost_model_for(
                self.regions, egress_usd_per_req=self.egress_usd_per_req
            )
        )

        overlay = self.overlay or self._build_overlay(names)
        self.loop = AcmControlLoop(
            vmcs=vmcs,
            populations=populations,
            policy=policy,
            rngs=self.rngs,
            overlay=overlay,
            config=ControlLoopConfig(
                era_s=self.era_s,
                beta=self.beta,
                stochastic_arrivals=self.stochastic_arrivals,
                autoscale=self.autoscale,
            ),
            autoscaler=(
                Autoscaler(self.autoscale_config) if self.autoscale else None
            ),
            telemetry=self.telemetry,
            lifecycle=self.online_lifecycle,
            policy_head=head_runtime,
            slo=self.slo_controller,
            cost=self.cost,
        )

    # ------------------------------------------------------------------ #

    def _build_vmc(
        self, spec: RegionSpec, predictor: RttfPredictor
    ) -> VirtualMachineController:
        itype = get_instance_type(spec.instance_type)
        region_rngs = self.rngs.child(spec.name)
        failure_policy = FailurePolicy(
            sla_response_time_s=self.sla_response_time_s
        )
        vms = [
            VirtualMachine(
                name=f"{spec.name}/vm{i}",
                itype=itype,
                injector=AnomalyInjector(
                    region_rngs.stream(f"anomalies/vm{i}"),
                    leak_probability=self.leak_probability,
                    thread_probability=self.thread_probability,
                ),
                failure_policy=failure_policy,
                rejuvenation_time_s=spec.rejuvenation_time_s,
                rack_id=self.domains.assign(spec.name, i),
            )
            for i in range(spec.n_vms)
        ]
        return VirtualMachineController(
            region_name=spec.name,
            vms=vms,
            predictor=predictor,
            config=VmcConfig(
                rttf_threshold_s=spec.rttf_threshold_s,
                target_active=spec.target_active,
                mean_demand=self.mix.mean_service_demand(),
                spread_k=self.spread_k,
            ),
            telemetry=self.telemetry,
            lifecycle=self.online_lifecycle,
        )

    def _build_overlay(self, names: list[str]) -> OverlayNetwork:
        net = OverlayNetwork()
        for n in names:
            net.add_node(n)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                net.add_link(a, b, self.overlay_latency_ms)
        return net

    # ------------------------------------------------------------------ #

    def run(self, eras: int) -> list[EraSummary]:
        """Run ``eras`` control cycles; returns their summaries."""
        return self.loop.run(eras)

    @property
    def traces(self) -> TraceRecorder:
        """All time series recorded so far (RMTTF, fractions, ...)."""
        return self.loop.traces

    def region_names(self) -> list[str]:
        """Region order used by every vector in the loop."""
        return list(self.loop.regions)
