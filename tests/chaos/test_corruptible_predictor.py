"""Batch-path and eviction behaviour of the corruptible predictor."""

import numpy as np

from repro.chaos.predictor import CorruptiblePredictor
from repro.pcam.predictor import OracleRttfPredictor
from repro.pcam.vm import VirtualMachine
from repro.sim import PRIVATE_SMALL, RngRegistry
from repro.workload import AnomalyInjector


def make_vms(n=3, seed=17):
    rngs = RngRegistry(seed=seed)
    vms = []
    for i in range(n):
        name = f"vm{i}"
        vm = VirtualMachine(
            name,
            PRIVATE_SMALL,
            AnomalyInjector(rngs.child(name).stream("anomalies")),
        )
        vm.activate()
        vm.apply_load(60, 30.0)
        vms.append(vm)
    return vms


class TestCorruptibleBatch:
    def test_off_mode_batch_matches_inner_and_caches(self):
        vms = make_vms()
        pred = CorruptiblePredictor(OracleRttfPredictor())
        batch = pred.predict_rttf_batch(vms)
        np.testing.assert_allclose(
            batch, OracleRttfPredictor().predict_rttf_batch(vms)
        )
        # healthy batch predictions seed the stale cache, same as scalars
        pred.set_mode("stale")
        np.testing.assert_allclose(pred.predict_rttf_batch(vms), batch)

    def test_nan_and_zero_modes_corrupt_the_batch(self):
        vms = make_vms()
        pred = CorruptiblePredictor(OracleRttfPredictor(), mode="nan")
        assert np.isnan(pred.predict_rttf_batch(vms)).all()
        pred.set_mode("zero")
        np.testing.assert_array_equal(
            pred.predict_rttf_batch(vms), np.zeros(len(vms))
        )

    def test_evict_clears_stale_cache_and_delegates(self):
        vms = make_vms()
        pred = CorruptiblePredictor(OracleRttfPredictor())
        pred.predict_rttf_batch(vms)
        assert vms[0].name in pred._last
        pred.evict(vms[0].name)
        assert vms[0].name not in pred._last
        # a never-cached VM in stale mode falls through to the inner oracle
        pred.set_mode("stale")
        value = pred.predict_rttf(vms[0])
        assert np.isfinite(value)
