"""Tests for TPC-W interactions and mixes."""

import numpy as np
import pytest

from repro.workload import (
    MIX_BROWSING,
    MIX_ORDERING,
    MIX_SHOPPING,
    RequestMix,
    RequestType,
    TPCW_INTERACTIONS,
)
from repro.workload.tpcw import BROWSE_CLASS


def test_all_14_interactions_defined():
    assert len(RequestType) == 14
    assert set(TPCW_INTERACTIONS) == set(RequestType)


def test_standard_mix_browse_fractions():
    assert MIX_BROWSING.browse_fraction() == pytest.approx(0.95)
    assert MIX_SHOPPING.browse_fraction() == pytest.approx(0.80)
    assert MIX_ORDERING.browse_fraction() == pytest.approx(0.50)


def test_mix_weights_normalised():
    for mix in (MIX_BROWSING, MIX_SHOPPING, MIX_ORDERING):
        assert sum(mix.weights.values()) == pytest.approx(1.0)


def test_order_heavy_mix_has_higher_service_demand():
    # Buy Confirm / Admin Confirm are expensive, so the ordering mix costs
    # more per request on average than browsing.
    assert (
        MIX_ORDERING.mean_service_demand()
        > MIX_SHOPPING.mean_service_demand()
        > MIX_BROWSING.mean_service_demand()
    )


def test_sample_respects_distribution():
    rng = np.random.default_rng(0)
    samples = MIX_ORDERING.sample(rng, 20_000)
    browse = sum(1 for s in samples if s in BROWSE_CLASS)
    assert browse / 20_000 == pytest.approx(0.50, abs=0.02)


def test_sample_demands_vectorised_matches_catalog():
    rng = np.random.default_rng(1)
    demands = MIX_SHOPPING.sample_demands(rng, 1000)
    valid = set(TPCW_INTERACTIONS.values())
    assert set(np.unique(demands)) <= valid


def test_sample_size_zero():
    rng = np.random.default_rng(0)
    assert MIX_SHOPPING.sample(rng, 0) == []
    assert MIX_SHOPPING.sample_demands(rng, 0).size == 0


def test_sample_negative_size_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        MIX_SHOPPING.sample(rng, -1)


def test_custom_mix_normalises():
    mix = RequestMix("custom", {RequestType.HOME: 2.0, RequestType.BUY_CONFIRM: 2.0})
    assert mix.weights[RequestType.HOME] == pytest.approx(0.5)


def test_custom_mix_validation():
    with pytest.raises(ValueError):
        RequestMix("bad", {RequestType.HOME: 0.0})
    with pytest.raises(ValueError):
        RequestMix("bad", {RequestType.HOME: -1.0, RequestType.BUY_REQUEST: 2.0})


def test_types_and_probabilities_aligned():
    mix = MIX_SHOPPING
    p = mix.probabilities()
    assert len(p) == len(mix.types)
    assert p.sum() == pytest.approx(1.0)
