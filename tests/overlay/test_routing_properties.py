"""Property-based tests for routing on random overlay topologies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay import NoRouteError, OverlayNetwork, Router


@st.composite
def random_overlay(draw):
    """A random connected-ish overlay of 3..7 nodes."""
    n = draw(st.integers(3, 7))
    names = [f"n{i}" for i in range(n)]
    net = OverlayNetwork()
    for name in names:
        net.add_node(name)
    # spanning chain guarantees base connectivity
    for a, b in zip(names, names[1:]):
        lat = draw(st.floats(1.0, 100.0))
        net.add_link(a, b, lat)
    # random extra edges
    extra = draw(st.integers(0, n * 2))
    for _ in range(extra):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i != j and not net.link_is_up(names[i], names[j]):
            try:
                net.link_latency(names[i], names[j])
            except KeyError:
                net.add_link(
                    names[i], names[j], draw(st.floats(1.0, 100.0))
                )
    return net, names


@settings(max_examples=50, deadline=None)
@given(data=random_overlay())
def test_route_never_worse_than_direct_link(data):
    net, names = data
    router = Router(net)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            try:
                direct = net.link_latency(a, b)
            except KeyError:
                continue
            assert router.latency(a, b) <= direct + 1e-9


@settings(max_examples=50, deadline=None)
@given(data=random_overlay())
def test_route_endpoints_and_path_validity(data):
    net, names = data
    router = Router(net)
    for a in names:
        for b in names:
            path, latency = router.route(a, b)
            assert path[0] == a and path[-1] == b
            assert latency >= 0
            # every hop is an up link
            for u, v in zip(path, path[1:]):
                assert net.link_is_up(u, v)
            # latency is the sum of hop latencies
            total = sum(
                net.link_latency(u, v) for u, v in zip(path, path[1:])
            )
            assert latency == pytest.approx(total)


@settings(max_examples=50, deadline=None)
@given(data=random_overlay())
def test_route_symmetric(data):
    net, names = data
    router = Router(net)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            assert router.latency(a, b) == pytest.approx(
                router.latency(b, a)
            )


@settings(max_examples=30, deadline=None)
@given(data=random_overlay(), kill=st.integers(0, 6))
def test_failed_node_never_appears_in_paths(data, kill):
    net, names = data
    victim = names[kill % len(names)]
    net.fail_node(victim)
    router = Router(net)
    survivors = [n for n in names if n != victim]
    for a in survivors:
        for b in survivors:
            try:
                path, _ = router.route(a, b)
            except NoRouteError:
                continue  # partitioned: acceptable
            assert victim not in path
