"""Acceptance: killed sweeps resume without re-executing finished jobs.

The store-hit counter is the observable: a re-invoked sweep must satisfy
every already-completed job from the store (``store_hits``) and execute
only the remainder (``executed``).
"""

from repro.fleet.executor import FleetExecutor
from repro.fleet.jobs import JobSpec
from repro.fleet.spec import SweepSpec
from repro.fleet.store import ResultStore


def fast_jobs(n: int = 6) -> list[JobSpec]:
    return [
        JobSpec(
            kind="synthetic",
            scenario="sleep",
            policy="",
            load=0.0,
            seed=1000 + i,
            replicate=i,
            eras=10,
        )
        for i in range(n)
    ]


class TestResume:
    def test_full_resume_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = fast_jobs()
        first = FleetExecutor(workers=2, store=store).run(jobs)
        assert first.store_hits == 0
        assert first.executed == len(jobs)

        second = FleetExecutor(workers=2, store=store).run(jobs)
        assert second.store_hits == len(jobs)
        assert second.executed == 0
        assert second.payloads == first.payloads

    def test_partial_resume_after_simulated_kill(self, tmp_path):
        """Interrupting a sweep mid-run leaves a partial store; the next
        invocation completes exactly the missing jobs."""
        store = ResultStore(tmp_path)
        jobs = fast_jobs()
        FleetExecutor(workers=1, store=store).run(jobs)
        # simulate a kill after 4 of 6 jobs: drop the last two entries
        for job in jobs[4:]:
            store.path_for(job.digest).unlink()

        resumed = FleetExecutor(workers=2, store=store).run(jobs)
        assert resumed.store_hits == 4
        assert resumed.executed == 2
        assert all(p is not None for p in resumed.payloads)

    def test_resume_false_ignores_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = fast_jobs(3)
        FleetExecutor(workers=1, store=store).run(jobs)
        fresh = FleetExecutor(workers=1, store=store, resume=False).run(jobs)
        assert fresh.store_hits == 0
        assert fresh.executed == 3

    def test_edited_spec_recomputes_only_changed_cells(self, tmp_path):
        """Changing one axis value leaves every untouched cell cached:
        the content digest, not the grid position, keys the store."""
        store = ResultStore(tmp_path)
        base = SweepSpec(
            scenarios=("two-region",),
            policies=("uniform",),
            loads=(0.25,),
            replicates=2,
            root_seed=5,
            eras=12,
        )
        FleetExecutor(workers=2, store=store).run(base.expand())

        edited = SweepSpec(
            scenarios=("two-region",),
            policies=("uniform", "available-resources"),
            loads=(0.25,),
            replicates=2,
            root_seed=5,
            eras=12,
        )
        outcome = FleetExecutor(workers=2, store=store).run(edited.expand())
        assert outcome.store_hits == 2  # the original uniform cell
        assert outcome.executed == 2  # only the new policy's jobs

    def test_corrupt_entry_is_recomputed_not_trusted(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = fast_jobs(2)
        FleetExecutor(workers=1, store=store).run(jobs)
        store.path_for(jobs[0].digest).write_text("{broken", "utf-8")

        resumed = FleetExecutor(workers=1, store=store).run(jobs)
        assert resumed.store_hits == 1
        assert resumed.executed == 1
        assert resumed.ok
