"""Run manifests: make every exported artifact replayable from itself.

An artifact without its seed and configuration is a screenshot; with
them it is a reproduction recipe.  :class:`RunManifest` pins the three
things needed to regenerate a result -- the RNG seed, a digest of the
effective configuration, and the package version that produced it --
plus free-form extras (scenario name, era count).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any


def config_digest(config: Any) -> str:
    """Short stable digest of an arbitrary JSON-able configuration.

    Keys are sorted and non-JSON values fall back to ``str``, so two
    runs with the same effective settings digest identically regardless
    of dict ordering or dataclass identity.
    """
    payload = json.dumps(config, sort_keys=True, default=str)
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(slots=True)
class RunManifest:
    """Seed + config digest + package version for one run."""

    seed: int
    config_digest: str
    version: str
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(cls, seed: int, config: Any, **extra: Any) -> "RunManifest":
        from repro import __version__

        return cls(
            seed=int(seed),
            config_digest=config_digest(config),
            version=__version__,
            extra=extra,
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "config_digest": self.config_digest,
            "version": self.version,
            "extra": dict(self.extra),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        return cls(
            seed=int(data["seed"]),
            config_digest=str(data["config_digest"]),
            version=str(data["version"]),
            extra=dict(data.get("extra", {})),
        )
