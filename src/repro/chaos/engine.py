"""Seeded, clock-driven fault injection for resilience campaigns.

:class:`ChaosEngine` composes campaigns out of fault *primitives* --
link flaps and partitions (overlay), probabilistic message loss and
latency jitter (:class:`~repro.chaos.lossy.LossyBus`), VM crash-storms
and region blackouts (PCAM layer), predictor corruption
(:class:`~repro.chaos.predictor.CorruptiblePredictor`), and correlated
failure-domain faults -- rack power loss, AZ partitions, cooling
failures, spot-eviction storms -- scoped by the deployment's
:class:`~repro.topology.domains.FailureDomainTree`.  Primitives can
fire immediately, at scheduled simulator times (:meth:`at`), on a fixed
cadence (:meth:`link_flap_every`), or at seeded Poisson arrivals
(:meth:`poisson_link_flaps`).

Two invariants make campaigns replayable:

* every random decision (which VMs a storm kills, when a Poisson flap
  arrives) is drawn from the engine's own named RNG stream, in an order
  fixed by the campaign script -- never from wall-clock or global state;
* every applied primitive appends a :class:`FaultEvent` to :attr:`log`
  stamped with the simulator clock, so two same-seed runs can assert
  bit-identical fault schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.chaos.predictor import CorruptiblePredictor

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.topology.health import DomainHealthTracker
    from repro.workload.browsers import BrowserPopulation
from repro.overlay.network import OverlayNetwork
from repro.overlay.routing import Router
from repro.pcam.vm import VirtualMachine, VmState
from repro.pcam.vmc import VirtualMachineController
from repro.topology.domains import FailureDomainTree
from repro.workload.anomalies import AnomalyInjector


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One applied fault primitive (an entry of the campaign's fault log)."""

    time: float
    kind: str
    target: str
    detail: tuple = ()


class ChaosEngine:
    """Fault injector bound to the failure surfaces of one deployment.

    Every surface is optional: an engine built with only ``overlay`` can
    still flap links, one with only ``vmcs`` can still run crash-storms.
    Using a primitive whose surface is missing raises ``RuntimeError``.

    Parameters
    ----------
    sim:
        The simulator whose clock drives scheduled faults.
    rng:
        Seeded stream for the engine's own decisions (victim choice,
        Poisson gaps) -- use a dedicated registry stream such as
        ``rngs.stream("chaos")``.
    overlay / router:
        The controller overlay and its router (invalidated after every
        topology mutation, which is what triggers rerouting).
    vmcs:
        Per-region :class:`VirtualMachineController` map for VM-level
        faults.
    bus:
        A :class:`~repro.chaos.lossy.LossyBus` for message-loss/jitter
        primitives.
    predictors:
        Per-region :class:`CorruptiblePredictor` map for prediction
        faults.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade.  Every
        applied fault is mirrored as a ``chaos.<kind>`` flight event and
        a ``chaos_faults_total{kind=...}`` counter, in addition to the
        authoritative :attr:`log`.
    domains:
        The deployment's :class:`~repro.topology.domains.FailureDomainTree`;
        required by the domain-scoped primitives (``rack_power_loss``,
        ``az_partition``, ``cooling_failure``, ``eviction_storm``, and
        the ``domain=`` selectors).
    health:
        Optional :class:`~repro.topology.health.DomainHealthTracker`.
        When present, correlated primitives mark their domain degraded
        (and heals clear it), which drives the ``fd_*`` telemetry and
        the domain-aware balancer/scheduler.
    populations:
        Per-region :class:`~repro.workload.browsers.BrowserPopulation`
        map for the ``flash_crowd`` workload primitive.
    """

    def __init__(
        self,
        sim,
        rng: np.random.Generator,
        overlay: OverlayNetwork | None = None,
        router: Router | None = None,
        vmcs: dict[str, VirtualMachineController] | None = None,
        bus=None,
        predictors: dict[str, CorruptiblePredictor] | None = None,
        telemetry: "Telemetry | None" = None,
        domains: FailureDomainTree | None = None,
        health: "DomainHealthTracker | None" = None,
        populations: "dict[str, BrowserPopulation] | None" = None,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.overlay = overlay
        self.router = router
        self.vmcs = vmcs or {}
        self.bus = bus
        self.predictors = predictors or {}
        self.domains = domains
        self.health = health
        self.populations = populations
        self.log: list[FaultEvent] = []
        # regions blacked out while no overlay tracks node liveness --
        # keeps region_heal idempotent in VMC-only engines
        self._dark: set[str] = set()
        # cooling faults in force: domain -> saved injector probabilities
        self._cooling: dict[
            str, list[tuple[AnomalyInjector, float, float]]
        ] = {}
        # flash crowds in force: region -> original client count
        self._crowd_base: dict[str, int] = {}
        self._obs = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, target: str, detail: tuple = ()) -> None:
        self.log.append(
            FaultEvent(
                time=self.sim.now, kind=kind, target=target, detail=detail
            )
        )
        if self._obs is not None:
            self._obs.counter("chaos_faults_total", kind=kind).inc()
            self._obs.event(
                f"chaos.{kind}", target=target, detail=list(detail)
            )

    def _reroute(self) -> None:
        if self.router is not None:
            self.router.invalidate()

    def _require_overlay(self) -> OverlayNetwork:
        if self.overlay is None:
            raise RuntimeError("this primitive needs an overlay network")
        return self.overlay

    def _require_vmc(self, region: str) -> VirtualMachineController:
        vmc = self.vmcs.get(region)
        if vmc is None:
            raise RuntimeError(f"no VMC registered for region {region!r}")
        return vmc

    def _require_domains(self) -> FailureDomainTree:
        if self.domains is None:
            raise RuntimeError(
                "this primitive needs a FailureDomainTree (domains=...)"
            )
        return self.domains

    def _domain_vms(
        self, domain: str, state: VmState | None = None
    ) -> list[VirtualMachine]:
        """The domain's VMs (optionally filtered by state), sorted by name.

        A domain path always lives inside one region, so the pool comes
        from that region's VMC; the sort fixes victim-selection order for
        bit-replayability.
        """
        tree = self._require_domains()
        racks = set(tree.racks_in(domain))
        vmc = self._require_vmc(tree.region_of_domain(domain))
        vms = vmc.vms if state is None else vmc.vms_in(state)
        return sorted(
            (vm for vm in vms if vm.rack_id in racks),
            key=lambda vm: vm.name,
        )

    def _mark_fault(self, domain: str, kind: str) -> None:
        if self.health is None:
            return
        try:
            self.health.record_fault(domain, kind)
        except KeyError:
            # the health tracker's tree may not cover this target (e.g.
            # an engine wired to a partial deployment); the fault log
            # stays authoritative either way
            pass

    def _clear_fault(self, domain: str) -> None:
        if self.health is not None:
            self.health.clear_fault(domain)

    # ------------------------------------------------------------------ #
    # overlay primitives
    # ------------------------------------------------------------------ #

    def fail_link(self, a: str, b: str) -> None:
        """Take an overlay link down."""
        self._require_overlay().fail_link(a, b)
        self._reroute()
        self._record("fail_link", f"{a}--{b}")

    def restore_link(self, a: str, b: str) -> None:
        """Bring an overlay link back up."""
        self._require_overlay().restore_link(a, b)
        self._reroute()
        self._record("restore_link", f"{a}--{b}")

    def crash_node(self, name: str) -> None:
        """Crash a controller node (e.g. kill the leader)."""
        self._require_overlay().fail_node(name)
        self._reroute()
        self._record("crash_node", name)

    def restore_node(self, name: str) -> None:
        """Recover a crashed controller node.

        Idempotent: restoring a node that is already alive is a no-op
        (no fault-log entry), so campaign scripts can heal defensively
        without polluting the replayable log.
        """
        net = self._require_overlay()
        if net.is_alive(name):
            return
        net.restore_node(name)
        self._reroute()
        self._record("restore_node", name)

    def partition(self, group: Iterable[str]) -> list[tuple[str, str]]:
        """Cut every link crossing between ``group`` and the rest.

        Returns the cut links so :meth:`heal_partition` can undo exactly
        this partition.
        """
        net = self._require_overlay()
        inside = set(group)
        cut = [
            (a, b)
            for a, b in net.links()
            if (a in inside) != (b in inside)
        ]
        for a, b in cut:
            net.fail_link(a, b)
        self._reroute()
        self._record("partition", ",".join(sorted(inside)), tuple(cut))
        return cut

    def heal_partition(self, cut: Sequence[tuple[str, str]]) -> None:
        """Restore the links returned by :meth:`partition`."""
        net = self._require_overlay()
        for a, b in cut:
            net.restore_link(a, b)
        self._reroute()
        self._record("heal_partition", "*", tuple(cut))

    # ------------------------------------------------------------------ #
    # PCAM-layer primitives
    # ------------------------------------------------------------------ #

    def vm_crash_storm(
        self, region: str, fraction: float, domain: str | None = None
    ) -> list[str]:
        """Hard-crash a random ``fraction`` of the region's ACTIVE VMs.

        Victims are chosen from the engine's RNG stream over the sorted
        ACTIVE pool, so the storm is identical across same-seed replays.
        ``fraction`` must lie in ``[0, 1]``; a zero fraction is a
        recorded no-op that consumes no randomness.  ``domain``
        optionally restricts the victim pool to one failure domain of
        the region (an AZ or rack path).  Returns the crashed VM names.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        vmc = self._require_vmc(region)
        active = sorted(
            vmc.vms_in(VmState.ACTIVE), key=lambda vm: vm.name
        )
        target = region
        if domain is not None:
            tree = self._require_domains()
            if tree.region_of_domain(domain) != region:
                raise ValueError(
                    f"domain {domain!r} is not in region {region!r}"
                )
            racks = set(tree.racks_in(domain))
            active = [vm for vm in active if vm.rack_id in racks]
            target = domain
        if fraction == 0.0 or not active:
            self._record("vm_crash_storm", target, ())
            return []
        n = max(1, int(round(fraction * len(active))))
        picks = self.rng.choice(len(active), size=n, replace=False)
        victims = [active[i] for i in sorted(int(i) for i in picks)]
        for vm in victims:
            vm.fail()
        names = tuple(vm.name for vm in victims)
        self._record("vm_crash_storm", target, names)
        return list(names)

    def region_blackout(
        self, region: str, domain: str | None = None
    ) -> None:
        """Take a whole region dark: controller down, ACTIVE VMs crashed.

        With ``domain`` the blackout is scoped to one failure domain of
        the region: only its ACTIVE VMs crash, and the region's
        controller stays on the mesh (unless the domain *is* the whole
        region).
        """
        vmc = self._require_vmc(region)
        pool = vmc.vms_in(VmState.ACTIVE)
        target = region
        whole_region = True
        if domain is not None:
            tree = self._require_domains()
            if tree.region_of_domain(domain) != region:
                raise ValueError(
                    f"domain {domain!r} is not in region {region!r}"
                )
            racks = set(tree.racks_in(domain))
            pool = [vm for vm in pool if vm.rack_id in racks]
            target = domain
            whole_region = domain == region
        crashed = []
        for vm in pool:
            vm.fail()
            crashed.append(vm.name)
        if whole_region:
            if self.overlay is not None and region in self.overlay.nodes():
                self.overlay.fail_node(region)
                self._reroute()
            self._dark.add(region)
        self._mark_fault(target, "region_blackout")
        self._record("region_blackout", target, tuple(crashed))

    def region_heal(self, region: str) -> None:
        """Bring a blacked-out region back (controller up; its crashed
        VMs recover through the VMC's normal reactive-rejuvenation path).

        Idempotent: healing a region that is not dark is a no-op with no
        fault-log entry.
        """
        self._require_vmc(region)
        node_dead = (
            self.overlay is not None
            and region in self.overlay.nodes()
            and not self.overlay.is_alive(region)
        )
        if not node_dead and region not in self._dark:
            return
        if node_dead:
            self.overlay.restore_node(region)
            self._reroute()
        self._dark.discard(region)
        self._clear_fault(region)
        self._record("region_heal", region)

    # ------------------------------------------------------------------ #
    # correlated failure-domain primitives
    # ------------------------------------------------------------------ #

    def rack_power_loss(self, rack: str) -> list[str]:
        """Power-fail one rack: every ACTIVE VM on it crashes at once.

        ``rack`` is a rack-level domain path (``region/azN/rackM``).  The
        rack is marked degraded in the health tracker until
        :meth:`domain_heal` clears it; the VMs themselves recover through
        the VMC's reactive-rejuvenation path.  Returns the crashed names.
        """
        tree = self._require_domains()
        if len(tree.racks_in(rack)) != 1:
            raise ValueError(
                f"rack_power_loss needs a rack-level path, got {rack!r}"
            )
        victims = self._domain_vms(rack, VmState.ACTIVE)
        for vm in victims:
            vm.fail()
        names = tuple(vm.name for vm in victims)
        self._mark_fault(rack, "rack_power_loss")
        self._record("rack_power_loss", rack, names)
        return list(names)

    def az_partition(self, az: str) -> list[tuple[str, str]]:
        """Partition one availability zone off the deployment.

        Every ACTIVE VM in the AZ crashes (unreachable replicas serve
        nothing; they rejoin via reactive rejuvenation).  When the AZ is
        the region's *controller AZ* (``az0`` by convention), the
        region's overlay node is additionally cut from the mesh exactly
        like :meth:`partition` -- heal with :meth:`az_heal`, passing the
        returned cut.
        """
        tree = self._require_domains()
        region = tree.region_of_domain(az)
        victims = self._domain_vms(az, VmState.ACTIVE)
        for vm in victims:
            vm.fail()
        cut: list[tuple[str, str]] = []
        if (
            az == tree.controller_az(region)
            and self.overlay is not None
            and region in self.overlay.nodes()
        ):
            net = self.overlay
            cut = [
                (a, b)
                for a, b in net.links()
                if (a == region) != (b == region)
            ]
            for a, b in cut:
                net.fail_link(a, b)
            self._reroute()
        self._mark_fault(az, "az_partition")
        self._record(
            "az_partition",
            az,
            (tuple(vm.name for vm in victims), tuple(cut)),
        )
        return cut

    def az_heal(
        self, az: str, cut: Sequence[tuple[str, str]] = ()
    ) -> None:
        """Heal an AZ partition: restore the cut links, clear the mark.

        Idempotent: with no links to restore and no degraded mark to
        clear, nothing happens and nothing is logged.
        """
        tree = self._require_domains()
        tree.racks_in(az)  # validate the path
        healed = False
        if self.overlay is not None and cut:
            for a, b in cut:
                self.overlay.restore_link(a, b)
            self._reroute()
            healed = True
        if self.health is not None:
            healed = self.health.clear_fault(az) or healed
        if not healed:
            return
        self._record("az_heal", az, tuple(cut))

    def domain_heal(self, domain: str) -> None:
        """Clear a domain's degraded mark (rack power restored, etc.).

        Idempotent: a no-op (not logged) when the domain is not marked.
        """
        self._require_domains().racks_in(domain)  # validate the path
        if self.health is None or not self.health.clear_fault(domain):
            return
        self._record("domain_heal", domain)

    def cooling_failure(self, domain: str, factor: float = 4.0) -> int:
        """Correlated hazard-rate multiplier across one failure domain.

        Models a cooling/thermal event: every VM in the domain (any
        state -- the hardware is hot, not the software) has its anomaly
        probabilities multiplied by ``factor`` (clamped to 1.0) until
        :meth:`cooling_restore`.  Consumes no randomness itself; the
        raised hazard flows through each VM's own injector stream, so
        replays stay bit-identical.  Returns the number of VMs affected.
        Idempotent while in force: a second call on the same domain is a
        no-op.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        if domain in self._cooling:
            return 0
        vms = self._domain_vms(domain)
        saved: list[tuple[AnomalyInjector, float, float]] = []
        for vm in vms:
            inj = vm.injector
            saved.append(
                (inj, inj.leak_probability, inj.thread_probability)
            )
            inj.leak_probability = min(1.0, inj.leak_probability * factor)
            inj.thread_probability = min(
                1.0, inj.thread_probability * factor
            )
        self._cooling[domain] = saved
        self._mark_fault(domain, "cooling_failure")
        self._record("cooling_failure", domain, (float(factor), len(vms)))
        return len(vms)

    def cooling_restore(self, domain: str) -> None:
        """End a cooling failure: restore the saved injector probabilities.

        Idempotent: a no-op (not logged) when no cooling fault is in
        force on the domain.
        """
        saved = self._cooling.pop(domain, None)
        if saved is None:
            return
        for inj, leak, thread in saved:
            inj.leak_probability = leak
            inj.thread_probability = thread
        self._clear_fault(domain)
        self._record("cooling_restore", domain)

    def eviction_storm(self, domain: str, fraction: float) -> list[str]:
        """Spot-instance eviction wave inside one failure domain.

        A random ``fraction`` of the domain's ACTIVE VMs is reclaimed
        (crashed), chosen from the engine's RNG over the name-sorted
        pool -- same replay contract as :meth:`vm_crash_storm`.  A zero
        fraction or empty pool is a recorded no-op consuming no
        randomness.  Returns the evicted VM names.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        pool = self._domain_vms(domain, VmState.ACTIVE)
        if fraction == 0.0 or not pool:
            self._record("eviction_storm", domain, ())
            return []
        n = max(1, int(round(fraction * len(pool))))
        picks = self.rng.choice(len(pool), size=n, replace=False)
        victims = [pool[i] for i in sorted(int(i) for i in picks)]
        for vm in victims:
            vm.fail()
        names = tuple(vm.name for vm in victims)
        self._record("eviction_storm", domain, names)
        return list(names)

    # ------------------------------------------------------------------ #
    # workload primitives
    # ------------------------------------------------------------------ #

    def flash_crowd(self, region: str, factor: float) -> int:
        """Multiply a region's browser population by ``factor``.

        The original client count is remembered, so repeated calls scale
        from the *base*, not compound, and :meth:`flash_crowd_end`
        restores it exactly.  Returns the new client count.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        if self.populations is None or region not in self.populations:
            raise RuntimeError(
                f"no browser population registered for region {region!r}"
            )
        pop = self.populations[region]
        base = self._crowd_base.setdefault(region, pop.n_clients)
        pop.n_clients = max(1, int(round(base * factor)))
        self._record("flash_crowd", region, (float(factor), pop.n_clients))
        return pop.n_clients

    def flash_crowd_end(self, region: str) -> None:
        """Restore a region's original client count.

        Idempotent: a no-op (not logged) when no flash crowd is active.
        """
        base = self._crowd_base.pop(region, None)
        if base is None:
            return
        assert self.populations is not None
        self.populations[region].n_clients = base
        self._record("flash_crowd_end", region, (base,))

    # ------------------------------------------------------------------ #
    # transport primitives
    # ------------------------------------------------------------------ #

    def set_message_loss(self, probability: float) -> None:
        """Set the bus-wide probability of silent message loss."""
        if not 0.0 <= probability < 1.0:
            raise ValueError(
                f"probability must be in [0, 1), got {probability}"
            )
        if self.bus is None or not hasattr(self.bus, "loss_probability"):
            raise RuntimeError("message-loss primitive needs a LossyBus")
        self.bus.loss_probability = float(probability)
        self._record("message_loss", "*", (float(probability),))

    def set_latency_jitter(self, jitter_ms: float) -> None:
        """Set the bus-wide uniform extra-latency bound (milliseconds)."""
        if jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {jitter_ms}")
        if self.bus is None or not hasattr(self.bus, "jitter_ms"):
            raise RuntimeError("latency-jitter primitive needs a LossyBus")
        self.bus.jitter_ms = float(jitter_ms)
        self._record("latency_jitter", "*", (float(jitter_ms),))

    # ------------------------------------------------------------------ #
    # predictor primitives
    # ------------------------------------------------------------------ #

    def corrupt_predictor(self, mode: str, region: str | None = None) -> None:
        """Switch predictor corruption (``nan``/``stale``/``zero``/``off``).

        Applies to one region, or to every registered predictor when
        ``region`` is None.
        """
        if not self.predictors:
            raise RuntimeError(
                "predictor primitive needs CorruptiblePredictor instances"
            )
        targets = (
            sorted(self.predictors) if region is None else [region]
        )
        for name in targets:
            pred = self.predictors.get(name)
            if pred is None:
                raise RuntimeError(
                    f"no corruptible predictor for region {name!r}"
                )
            pred.set_mode(mode)
        self._record("corrupt_predictor", ",".join(targets), (mode,))

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def at(self, time: float, primitive: Callable, *args, **kwargs):
        """Apply a primitive at absolute simulator time ``time``."""
        return self.sim.schedule_at(
            time,
            lambda: primitive(*args, **kwargs),
            label=f"chaos:{getattr(primitive, '__name__', 'fault')}",
        )

    def link_flap_every(
        self,
        a: str,
        b: str,
        period_s: float,
        down_s: float,
        start: float | None = None,
        until_s: float | None = None,
    ) -> Callable[[], None]:
        """Flap a link on a fixed cadence: down for ``down_s`` out of
        every ``period_s``.  Returns the stop function."""
        if down_s <= 0 or down_s >= period_s:
            raise ValueError("need 0 < down_s < period_s")

        def flap() -> None:
            self.fail_link(a, b)
            self.sim.schedule_after(
                down_s,
                lambda: self.restore_link(a, b),
                label="chaos:flap-heal",
            )

        stop = self.sim.schedule_periodic(
            period_s, flap, start=start, label="chaos:flap"
        )
        if until_s is not None:
            self.sim.schedule_at(until_s, stop, label="chaos:flap-stop")
        return stop

    def poisson_link_flaps(
        self,
        pairs: Sequence[tuple[str, str]],
        rate_hz: float,
        down_s: float,
        until_s: float,
    ) -> int:
        """Schedule seeded Poisson-arrival flaps on each link in ``pairs``.

        Each link independently flaps at exponential inter-arrival gaps of
        mean ``1/rate_hz`` until ``until_s``; every flap keeps the link
        down for ``down_s``.  The whole schedule is drawn up-front from
        the engine RNG (fixed pair order, fixed draw order), so it is a
        pure function of the seed.  Returns the number of flaps scheduled.
        """
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if down_s <= 0:
            raise ValueError("down_s must be positive")
        scheduled = 0
        for a, b in pairs:
            t = self.sim.now
            while True:
                t += float(self.rng.exponential(1.0 / rate_hz))
                if t >= until_s:
                    break
                self.at(t, self.fail_link, a, b)
                self.at(t + down_s, self.restore_link, a, b)
                scheduled += 1
        return scheduled
