"""Datasets labelled with Remaining Time To Failure.

F2PM turns raw monitoring traces into supervised-learning datasets: every
feature sample taken at time ``t`` during a run that fails at time ``T`` is
labelled with the RTTF ``T - t``.  A *failure* is the user-defined failure
point -- an actual crash or an SLA violation (Sec. III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import as_1d_float, as_2d_float, check_consistent
from repro.ml.features import FEATURE_NAMES


@dataclass
class Dataset:
    """A supervised dataset ``(X, y)`` with named columns.

    Attributes
    ----------
    X:
        ``(n_samples, n_features)`` design matrix.
    y:
        ``(n_samples,)`` target vector (RTTF in seconds for F2PM datasets).
    feature_names:
        Column names; defaults to the F2PM schema.
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        self.X = as_2d_float(self.X)
        self.y = as_1d_float(self.y)
        check_consistent(self.X, self.y)
        self.feature_names = tuple(self.feature_names)
        if len(self.feature_names) != self.X.shape[1]:
            raise ValueError(
                f"{len(self.feature_names)} feature names for "
                f"{self.X.shape[1]} columns"
            )

    def __len__(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    def select_features(self, names: list[str] | tuple[str, ...]) -> "Dataset":
        """Project onto the named feature columns (Lasso selection output)."""
        missing = [n for n in names if n not in self.feature_names]
        if missing:
            raise KeyError(f"features not in dataset: {missing}")
        idx = [self.feature_names.index(n) for n in names]
        return Dataset(self.X[:, idx], self.y.copy(), tuple(names))

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Row subset by integer index array."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(self.X[indices], self.y[indices], self.feature_names)

    def concat(self, other: "Dataset") -> "Dataset":
        """Stack two datasets with identical schemas."""
        if self.feature_names != other.feature_names:
            raise ValueError("cannot concat datasets with different schemas")
        return Dataset(
            np.vstack([self.X, other.X]),
            np.concatenate([self.y, other.y]),
            self.feature_names,
        )

    @classmethod
    def from_run_traces(
        cls,
        runs: list[tuple[np.ndarray, np.ndarray, float]],
        feature_names: tuple[str, ...] = FEATURE_NAMES,
    ) -> "Dataset":
        """Build an RTTF dataset from profiling runs.

        Parameters
        ----------
        runs:
            Each element is ``(sample_times, features, failure_time)`` for one
            run-to-failure: ``sample_times`` is ``(k,)``, ``features`` is
            ``(k, n_features)`` and ``failure_time`` is when the failure point
            was reached.  Samples taken after the failure are discarded.
        """
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        for times, feats, failure_time in runs:
            times = as_1d_float(np.asarray(times), "sample_times")
            feats = as_2d_float(np.asarray(feats), "features")
            if times.shape[0] != feats.shape[0]:
                raise ValueError("sample_times and features length mismatch")
            mask = times <= failure_time
            xs.append(feats[mask])
            ys.append(failure_time - times[mask])
        if not xs:
            raise ValueError("no profiling runs supplied")
        X = np.vstack(xs)
        y = np.concatenate(ys)
        if X.shape[0] == 0:
            raise ValueError("all samples fell after the failure point")
        return cls(X, y, feature_names)


def train_test_split(
    dataset: Dataset,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[Dataset, Dataset]:
    """Random split into train and test subsets.

    Parameters
    ----------
    test_fraction:
        Fraction of samples in the test set, strictly inside (0, 1).
    rng:
        Generator (a named stream from :class:`repro.sim.RngRegistry`).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0,1), got {test_fraction}")
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1)
    return dataset.subset(perm[n_test:]), dataset.subset(perm[:n_test])
