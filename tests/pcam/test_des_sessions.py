"""Tests for session-driven demands in the DES region."""

import numpy as np
import pytest

from repro.pcam import DesRegion, VirtualMachine
from repro.sim import M3_MEDIUM, RngRegistry, Simulator
from repro.workload import AnomalyInjector, BrowserPopulation, SessionChain
from repro.workload.tpcw import BROWSE_CLASS, RequestType


def make_session_region(browse_fraction=0.80, clients=40, seed=3):
    rngs = RngRegistry(seed=seed)
    vms = []
    for i in range(6):
        vm = VirtualMachine(
            f"sess/vm{i}",
            M3_MEDIUM,
            AnomalyInjector(rngs.child(f"vm{i}").stream("a")),
        )
        vm.activate()
        vms.append(vm)
    chain = SessionChain.for_mix("test", browse_fraction)
    sim = Simulator()
    region = DesRegion(
        sim,
        vms,
        BrowserPopulation(n_clients=clients),
        rngs.stream("des"),
        session_chain=chain,
    )
    return region


class TestSessionDrivenDes:
    def test_interactions_recorded(self):
        region = make_session_region()
        stats = region.run(600.0)
        assert stats.completed > 0
        issued = sum(region.interaction_counts.values())
        # counted at issue time: completions lag by at most the in-flight
        # population (one request per browser)
        assert stats.completed <= issued <= stats.completed + 40

    def test_interaction_mix_matches_chain(self):
        region = make_session_region(browse_fraction=0.80)
        region.run(3000.0)
        counts = region.interaction_counts
        total = sum(counts.values())
        browse = sum(
            c
            for name, c in counts.items()
            if RequestType(name) in BROWSE_CLASS
        )
        # browsers start at HOME so the early mix skews browse; wide band
        assert browse / total == pytest.approx(0.80, abs=0.06)

    def test_ordering_mix_slower_than_browsing_mix(self):
        """Order-heavy sessions carry heavier service demands."""
        browsing = make_session_region(browse_fraction=0.95, seed=5)
        ordering = make_session_region(browse_fraction=0.50, seed=5)
        rt_browse = browsing.run(1500.0).mean_response_time()
        rt_order = ordering.run(1500.0).mean_response_time()
        assert rt_order > rt_browse

    def test_without_chain_no_interaction_counts(self):
        rngs = RngRegistry(seed=9)
        vm = VirtualMachine(
            "plain/vm0", M3_MEDIUM, AnomalyInjector(rngs.stream("a"))
        )
        vm.activate()
        region = DesRegion(
            Simulator(),
            [vm],
            BrowserPopulation(n_clients=5),
            rngs.stream("des"),
        )
        region.run(300.0)
        assert region.interaction_counts == {}

    def test_deterministic_with_sessions(self):
        r1 = make_session_region(seed=11)
        r2 = make_session_region(seed=11)
        s1, s2 = r1.run(300.0), r2.run(300.0)
        assert s1.completed == s2.completed
        assert r1.interaction_counts == r2.interaction_counts
