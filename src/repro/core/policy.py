"""The ``POLICY()`` interface of Algorithm 2, and the policy registry.

Each policy computes, from the previous fractions and the current RMTTF
vector, "the fraction f_i of global incoming requests to be forwarded to a
cloud region i to ensure that the different values of the current RMTTF of
all regions converge (fast) to the same value" (Sec. IV).

All policies return a point on the probability simplex; the shared
:func:`normalize_fractions` enforces that invariant (which is also
property-tested).  A small ``min_fraction`` floor keeps every region
observable: multiplicative policies would otherwise pin a region at exactly
zero forever (no requests -> no RMTTF signal -> no recovery), a failure
mode the real system avoids because monitoring traffic never fully stops.
"""

from __future__ import annotations

import abc

import numpy as np

#: Default observability floor on each region's fraction.
DEFAULT_MIN_FRACTION = 1e-3


def normalize_fractions(
    raw: np.ndarray, min_fraction: float = DEFAULT_MIN_FRACTION
) -> np.ndarray:
    """Project raw non-negative scores onto the simplex with a floor.

    * negative inputs are clipped to 0 (policies can transiently produce
      tiny negatives from floating-point cancellation);
    * an all-zero vector falls back to uniform (no information = spread);
    * every coordinate ends at >= ``min_fraction`` (see module docstring)
      and the result sums to exactly 1.
    """
    raw = np.asarray(raw, dtype=float)
    if raw.ndim != 1 or raw.size == 0:
        raise ValueError("fractions must be a non-empty 1-D vector")
    if not np.all(np.isfinite(raw)):
        raise ValueError("fractions contain non-finite values")
    if min_fraction < 0 or min_fraction * raw.size >= 1.0:
        raise ValueError(
            f"min_fraction {min_fraction} infeasible for {raw.size} regions"
        )
    clipped = np.maximum(raw, 0.0)
    total = clipped.sum()
    if total <= 0:
        f = np.full(raw.size, 1.0 / raw.size)
    else:
        f = clipped / total
    if min_fraction > 0:
        # Raise the floor, then renormalise the slack above the floor.
        f = np.maximum(f, min_fraction)
        excess = f.sum() - 1.0
        above = f - min_fraction
        scale = above.sum()
        if scale > 0:
            f = f - excess * above / scale
        else:
            f = np.full(raw.size, 1.0 / raw.size)
    return f / f.sum()


def compute_fractions(
    policy: "Policy",
    prev_fractions: np.ndarray,
    rmttf: np.ndarray,
    global_rate: float,
    mode: str = "normal",
    capacities: np.ndarray | None = None,
) -> np.ndarray:
    """The single Plan-phase entry point shared by every control loop.

    The fluid loop, the DES loop, and the wall-clock serve path all run
    the same three-rung ladder at the Plan step; this function is that
    ladder, so a policy head (or a new loop) wraps exactly one seam:

    * ``"normal"`` -- ``POLICY(f^{t-1}, RMTTF_1..RMTTF_n)`` (Algorithm 2);
    * ``"hold"``   -- quorum lost: keep the last-known-good fractions;
    * ``"fallback"`` -- reports missing too long: static split from the
      deployment's healthy capacities (requires ``capacities``).

    Every branch is float-op-identical to the inlined ladders it
    replaced, so golden traces are preserved.
    """
    if mode == "normal":
        return policy.compute(prev_fractions, rmttf, global_rate)
    if mode == "hold":
        return np.asarray(prev_fractions, dtype=float)
    if mode == "fallback":
        if capacities is None:
            raise ValueError("fallback mode requires healthy capacities")
        return normalize_fractions(capacities, policy.min_fraction)
    raise ValueError(f"unknown plan mode {mode!r}")


def renormalize_live(
    fractions: np.ndarray, alive: np.ndarray
) -> np.ndarray | None:
    """Zero dead regions out of a plan and renormalise over the live ones.

    The serve path has always done this (a dead region must not be
    planned traffic, whatever the policy said); policy heads must do it
    identically, so both call this one helper:

    * every region alive -> the plan is returned unchanged (a simplex
      point stays one, preserving frozen-head bit-identity);
    * no region alive -> ``None`` (there is nothing to install);
    * otherwise dead coordinates are zeroed and the survivors
      renormalised -- uniform over the live set if the policy had put
      all its mass on dead regions.
    """
    fractions = np.asarray(fractions, dtype=float)
    alive = np.asarray(alive, dtype=bool)
    if fractions.shape != alive.shape:
        raise ValueError(
            f"fractions {fractions.shape} and alive {alive.shape} "
            "must have the same shape"
        )
    if alive.all():
        return fractions
    if not alive.any():
        return None
    planned = np.where(alive, fractions, 0.0)
    total = planned.sum()
    if total <= 0:
        return alive.astype(float) / alive.sum()
    return planned / total


class Policy(abc.ABC):
    """Base class for workload-fraction policies.

    Subclasses implement :meth:`_compute`; the base validates inputs and
    guarantees the simplex invariant on the way out.
    """

    #: Registry key; subclasses set this.
    name: str = ""

    def __init__(self, min_fraction: float = DEFAULT_MIN_FRACTION) -> None:
        self.min_fraction = float(min_fraction)

    def compute(
        self,
        prev_fractions: np.ndarray,
        rmttf: np.ndarray,
        global_rate: float,
    ) -> np.ndarray:
        """The ``POLICY(f^{t-1}, RMTTF_1..RMTTF_n)`` call of Algorithm 2.

        Parameters
        ----------
        prev_fractions:
            ``f^{t-1}``, a simplex point.
        rmttf:
            Current per-region RMTTF values (Eq. 1 output), same order.
        global_rate:
            The global incoming request rate ``lambda`` (used by Policy 2).

        Returns the new simplex point ``f^t``.
        """
        prev_fractions = np.asarray(prev_fractions, dtype=float)
        rmttf = np.asarray(rmttf, dtype=float)
        if prev_fractions.shape != rmttf.shape:
            raise ValueError(
                f"fractions {prev_fractions.shape} and rmttf {rmttf.shape} "
                "must have the same shape"
            )
        if prev_fractions.ndim != 1 or prev_fractions.size == 0:
            raise ValueError("need a non-empty 1-D region vector")
        if np.any(rmttf < 0):
            raise ValueError("rmttf values must be >= 0")
        if global_rate < 0:
            raise ValueError("global_rate must be >= 0")
        if not np.isclose(prev_fractions.sum(), 1.0, atol=1e-6):
            raise ValueError(
                f"prev_fractions must sum to 1, got {prev_fractions.sum()}"
            )
        raw = self._compute(prev_fractions, rmttf, global_rate)
        return normalize_fractions(raw, self.min_fraction)

    @abc.abstractmethod
    def _compute(
        self,
        prev_fractions: np.ndarray,
        rmttf: np.ndarray,
        global_rate: float,
    ) -> np.ndarray:
        """Policy-specific raw scores (validated and normalised by base)."""

    def initial_fractions(self, n_regions: int) -> np.ndarray:
        """Starting point ``f^0``: uniform, as nothing is known yet."""
        if n_regions < 1:
            raise ValueError("need at least one region")
        return np.full(n_regions, 1.0 / n_regions)


#: name -> policy class; populated by the concrete policy modules.
POLICY_REGISTRY: dict[str, type[Policy]] = {}


def register_policy(cls: type[Policy]) -> type[Policy]:
    """Class decorator adding a policy to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a registry name")
    if cls.name in POLICY_REGISTRY:
        raise ValueError(f"duplicate policy name {cls.name!r}")
    POLICY_REGISTRY[cls.name] = cls
    return cls


def get_policy(name: str, **kwargs) -> Policy:
    """Instantiate a registered policy by name.

    The registry keys are ``"sensible-routing"`` (Policy 1),
    ``"available-resources"`` (Policy 2), ``"exploration"`` (Policy 3),
    ``"cost-aware"`` (Policy 2 weighted by 1/relative-$), ``"uniform"``
    and ``"static-weights"`` (baselines).
    """
    # Importing the concrete modules fills the registry lazily.
    from repro.core import (  # noqa: F401
        baselines,
        costaware,
        exploration,
        resources,
        sensible,
    )

    try:
        cls = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    return cls(**kwargs)
